//! Verify the paper's full protocol suite (§VI): MSI, MESI, MOSI,
//! MSI+Upgrade, MSI for unordered networks, and TSO-CC — each in stalling
//! and non-stalling configurations.
//!
//! ```sh
//! cargo run --release --example verify_suite -- 3   # the paper's bound
//! ```

use protogen::gen::{generate, GenConfig};
use protogen::mc::{McConfig, ModelChecker, PropertySet};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    println!(
        "{:<14} {:<13} {:>6} {:>6} {:>10} {:>9} {:>8}",
        "protocol", "config", "cache", "dir", "explored", "result", "time"
    );
    let mut all_ok = true;
    for ssp in protogen::protocols::all() {
        for (label, cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let g = generate(&ssp, &cfg).expect("generation succeeds");
            let mut mc_cfg = McConfig::with_caches(n);
            mc_cfg.ordered = ssp.network_ordered;
            // Check the contract each protocol declares (§VI-D): SC gets
            // SWMR + data-value, TSO gets single-writer, weak gets
            // deadlock freedom only.
            mc_cfg.properties = PropertySet::promised(ssp.consistency);
            let r = ModelChecker::new(&g.cache, &g.directory, mc_cfg).run();
            all_ok &= r.passed();
            println!(
                "{:<14} {:<13} {:>6} {:>6} {:>10} {:>9} {:>7.2}s",
                ssp.name,
                label,
                g.cache.state_count(),
                g.directory.state_count(),
                r.states,
                if r.passed() { "PASSED" } else { "FAILED" },
                r.seconds
            );
            if let Some(v) = r.violation {
                println!("  violation: {}", v.kind);
                for line in v.trace.iter().take(20) {
                    println!("    {line}");
                }
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
