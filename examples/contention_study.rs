//! The §VI-B performance argument, measured: stalling vs non-stalling
//! protocols under increasing write contention (experiment E10).
//!
//! ```sh
//! cargo run --release --example contention_study
//! ```

use protogen::gen::{generate, GenConfig};
use protogen::sim::{simulate, SimConfig, Workload};

fn main() {
    let ssp = protogen::protocols::msi();
    let stalling = generate(&ssp, &GenConfig::stalling()).unwrap();
    let non_stalling = generate(&ssp, &GenConfig::non_stalling()).unwrap();

    println!("MSI, 4 cores, one contended block, 200 accesses/core");
    println!(
        "{:>9} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9} | {:>7}",
        "store %",
        "stall cyc",
        "stall-stall",
        "lat",
        "nstall cyc",
        "nstall-stall",
        "lat",
        "speedup"
    );
    for store_pct in [0u8, 10, 25, 50, 75, 100] {
        // n_addrs = 1: every access races on the same block.
        let cfg = SimConfig {
            workload: Workload::Uniform { store_pct },
            n_addrs: 1,
            ..SimConfig::default()
        };
        let a = simulate(&stalling.cache, &stalling.directory, &cfg).unwrap();
        let b = simulate(&non_stalling.cache, &non_stalling.directory, &cfg).unwrap();
        println!(
            "{:>9} | {:>12} {:>12} {:>9.1} | {:>12} {:>12} {:>9.1} | {:>6.3}x",
            store_pct,
            a.cycles,
            a.stall_cycles,
            a.avg_miss_latency,
            b.cycles,
            b.stall_cycles,
            b.avg_miss_latency,
            a.cycles as f64 / b.cycles as f64
        );
    }

    println!("\nsharing patterns (50%-store uniform shown above):");
    for (name, w) in [
        ("producer-consumer", Workload::ProducerConsumer),
        ("migratory", Workload::Migratory),
        ("false-sharing", Workload::FalseSharing),
        ("private", Workload::Private),
    ] {
        let cfg = SimConfig { workload: w, ..SimConfig::default() };
        let a = simulate(&stalling.cache, &stalling.directory, &cfg).unwrap();
        let b = simulate(&non_stalling.cache, &non_stalling.directory, &cfg).unwrap();
        println!(
            "{:>18}: stalling {:>8} cycles, non-stalling {:>8} cycles ({:.3}x)",
            name,
            a.cycles,
            b.cycles,
            a.cycles as f64 / b.cycles as f64
        );
    }
}
