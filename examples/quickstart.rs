//! Quickstart: from an atomic specification to a verified concurrent
//! protocol in three steps.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use protogen::backend::{render_ssp_table, render_table, TableOptions};
use protogen::gen::{generate, GenConfig};
use protogen::mc::{McConfig, ModelChecker};
use protogen::spec::MachineKind;

fn main() {
    // 1. The input: an atomic stable-state MSI protocol — just Tables I
    //    and II of the paper, nothing more.
    let ssp = protogen::protocols::msi();
    println!("== Input: atomic MSI cache specification (Table I) ==\n");
    println!("{}", render_ssp_table(&ssp, MachineKind::Cache));

    // 2. Generate the complete concurrent protocol with every transient
    //    state (non-stalling, deferred data responses).
    let generated = generate(&ssp, &GenConfig::non_stalling()).expect("generation succeeds");
    println!("== Generation report ==\n");
    println!("{}", generated.report);
    println!("== Output: concurrent MSI cache controller (Table VI) ==\n");
    println!("{}", render_table(&generated.cache, &TableOptions::default()));

    // 3. Verify: exhaustive exploration with 2 caches (use the bench
    //    harness for the paper's 3-cache runs).
    let mc = ModelChecker::new(&generated.cache, &generated.directory, McConfig::with_caches(2));
    let result = mc.run();
    println!(
        "== Verification: {} ({} states, {} transitions, {:.2}s) ==",
        if result.passed() { "PASSED" } else { "FAILED" },
        result.states,
        result.transitions,
        result.seconds
    );
    if let Some(v) = result.violation {
        println!("violation: {}", v.kind);
        for line in v.trace {
            println!("  {line}");
        }
        std::process::exit(1);
    }
}
