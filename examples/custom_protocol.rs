//! Author a brand-new protocol in the DSL and push it through the whole
//! pipeline: parse → generate → verify → render.
//!
//! The protocol here is a two-state Valid/Invalid write-through design —
//! deliberately *not* one of the built-ins — showing what a downstream
//! user does with the toolchain.
//!
//! ```sh
//! cargo run --example custom_protocol
//! ```

use protogen::backend::{render_table, TableOptions};
use protogen::gen::{generate, GenConfig};
use protogen::mc::{McConfig, ModelChecker};

const VI_PROTOCOL: &str = r#"
    // A minimal VI (Valid/Invalid) protocol: every store fetches an
    // exclusive copy; there is no shared state at all.
    protocol VI;
    network ordered;

    message Get : request;
    message Put : request { data };
    message Fwd_Get : forward;
    message Data : response { data, acks };
    message Put_Ack : response on forward_net;

    cache {
        state I;
        state V readwrite;
    }
    directory {
        state I;
        state V;
    }

    architecture cache {
        process(I, load) {
            reset_acks;
            send Get to dir;
            await D { when Data: copy_data; perform; -> V; }
        }
        process(I, store) {
            reset_acks;
            send Get to dir;
            await D { when Data: copy_data; perform; -> V; }
        }
        process(V, load) { perform; }
        process(V, store) { perform; }
        process(V, replacement) {
            reset_acks;
            send Put(data) to dir;
            await A { when Put_Ack: perform; -> I; }
        }
        process(V, Fwd_Get) { send Data(data) to req; -> I; }
    }

    architecture directory {
        process(I, Get) { send Data(data) to req; set_owner; -> V; }
        process(V, Get) { send Fwd_Get to owner; set_owner; }
        process(V, Put) if owner { copy_data; send Put_Ack to req; clear_owner; -> I; }
    }
"#;

fn main() {
    let ssp = protogen::dsl::parse_protocol(VI_PROTOCOL).expect("VI protocol parses");
    let g = generate(&ssp, &GenConfig::non_stalling()).expect("VI protocol generates");
    println!("{}", g.report);
    println!("{}", render_table(&g.cache, &TableOptions::default()));
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(3)).run();
    println!(
        "verification with 3 caches: {} ({} states explored in {:.2}s)",
        if r.passed() { "PASSED" } else { "FAILED" },
        r.states,
        r.seconds
    );
    if let Some(v) = r.violation {
        println!("violation: {}", v.kind);
        for line in v.trace {
            println!("  {line}");
        }
        std::process::exit(1);
    }
}
