//! Simulator ↔ model-checker conformance.
//!
//! The simulator and the checker execute the same generated FSMs through
//! the same runtime, so a simulated run under an ordered network must
//! never dispatch on a `(machine, state, event)` pair the exhaustive
//! checker did not visit at the same cache count. A pair outside the
//! checked set would mean the simulator drives the controllers through
//! unverified behaviour — exactly the drift this test exists to catch.

use protogen::gen::{generate, GenConfig};
use protogen::mc::{McConfig, ModelChecker};
use protogen::sim::{simulate, SimConfig, Workload};

#[test]
fn ordered_sim_only_dispatches_on_model_checked_pairs() {
    for name in ["msi", "mesi"] {
        let ssp = protogen::protocols::by_name(name).unwrap();
        for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &gc).unwrap();
            let mut mc_cfg = McConfig::with_caches(2);
            mc_cfg.ordered = ssp.network_ordered;
            mc_cfg.collect_pair_coverage = true;
            let checked = ModelChecker::new(&g.cache, &g.directory, mc_cfg).run();
            assert!(checked.passed(), "{name}: {:?}", checked.violation);
            let checked_pairs = checked.coverage.expect("coverage requested");
            assert!(!checked_pairs.is_empty());

            for workload in Workload::synthetic() {
                let sim_cfg = SimConfig {
                    n_caches: 2,
                    n_addrs: 2,
                    accesses_per_core: 60,
                    workload: workload.clone(),
                    collect_coverage: true,
                    ..SimConfig::default()
                };
                let r = simulate(&g.cache, &g.directory, &sim_cfg)
                    .unwrap_or_else(|e| panic!("{name} under {workload}: {e}"));
                let observed = r.coverage.expect("coverage requested");
                let unchecked: Vec<_> = observed.difference(&checked_pairs).collect();
                assert!(
                    unchecked.is_empty(),
                    "{name} ({:?}) under {workload}: simulator dispatched on pairs the \
                     model checker never visited: {unchecked:?}",
                    gc.concurrency
                );
            }
        }
    }
}
