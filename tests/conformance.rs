//! Cross-protocol conformance matrix.
//!
//! Every bundled protocol — from the programmatic builders *and* from the
//! bundled DSL sources — must, in both concurrency configurations,
//! generate successfully and pass the model checker at 2 caches for the
//! full invariant set: SWMR, the data-value invariant, deadlock freedom,
//! and completeness. TSO-CC trades physical SWMR and data-value freshness
//! by design (§VI-D), so its row checks the invariants TSO-CC actually
//! promises (single writer at the directory's owner, deadlock freedom,
//! completeness) and separately asserts the traded invariants *do* fail —
//! a conformance matrix that silently relaxed checks would be worthless.

use protogen::gen::{generate, Concurrency, GenConfig};
use protogen::mc::{McConfig, ModelChecker, PropertySet};
use protogen::spec::Ssp;

fn config_label(cfg: &GenConfig) -> &'static str {
    match cfg.concurrency {
        Concurrency::Stalling => "stalling",
        Concurrency::NonStalling => "non-stalling",
    }
}

fn mc_config_for(ssp: &Ssp) -> McConfig {
    let mut mc = McConfig::with_caches(2);
    mc.ordered = ssp.network_ordered;
    // Each protocol is held to the contract its spec declares: SC
    // protocols get the full SWMR + data-value set, TSO-CC gets
    // single-writer, SI/SD gets deadlock freedom only.
    mc.properties = PropertySet::promised(ssp.consistency);
    mc
}

fn assert_conformance(ssp: &Ssp, origin: &str) {
    for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
        let g = generate(ssp, &cfg)
            .unwrap_or_else(|e| panic!("{} [{origin}] ({}): {e}", ssp.name, config_label(&cfg)));
        let r = ModelChecker::new(&g.cache, &g.directory, mc_config_for(ssp)).run();
        assert!(r.passed(), "{} [{origin}] ({}): {:?}", ssp.name, config_label(&cfg), r.violation);
        assert!(r.states > 0, "{} [{origin}]: checker explored no states", ssp.name);
    }
}

/// The builder matrix: every `protogen::protocols::all()` entry × both
/// concurrency configurations generates and verifies at 2 caches.
#[test]
fn all_builder_protocols_conform() {
    let protocols = protogen::protocols::all();
    assert_eq!(protocols.len(), 7, "the bundled protocol suite grew or shrank");
    for ssp in &protocols {
        assert_conformance(ssp, "builder");
    }
}

/// The DSL matrix: every bundled `.pgen` source parses, generates, and
/// verifies at 2 caches in both configurations — the full §IV-A input
/// path, not just the three protocols the equivalence tests cover.
#[test]
fn all_dsl_protocols_conform() {
    for (name, src) in [
        ("MSI", protogen::dsl::MSI_PGEN),
        ("MESI", protogen::dsl::MESI_PGEN),
        ("MOSI", protogen::dsl::MOSI_PGEN),
        ("MSI_Upgrade", protogen::dsl::MSI_UPGRADE_PGEN),
        ("MSI_unordered", protogen::dsl::MSI_UNORDERED_PGEN),
        ("TSO_CC", protogen::dsl::TSO_CC_PGEN),
        ("SI_SD", protogen::dsl::SI_SD_PGEN),
    ] {
        let ssp = protogen::dsl::parse_protocol(src)
            .unwrap_or_else(|e| panic!("bundled {name} source: {e}"));
        assert_eq!(ssp.name, name, "bundled source name drifted");
        assert_conformance(&ssp, "dsl");
    }
}

/// Builder and DSL front-ends agree for *every* bundled protocol: same
/// generated state and transition counts for both machines in both
/// configurations.
#[test]
fn dsl_and_builder_agree_for_every_protocol() {
    for (built, src) in [
        (protogen::protocols::msi(), protogen::dsl::MSI_PGEN),
        (protogen::protocols::mesi(), protogen::dsl::MESI_PGEN),
        (protogen::protocols::mosi(), protogen::dsl::MOSI_PGEN),
        (protogen::protocols::msi_upgrade(), protogen::dsl::MSI_UPGRADE_PGEN),
        (protogen::protocols::msi_unordered(), protogen::dsl::MSI_UNORDERED_PGEN),
        (protogen::protocols::tso_cc(), protogen::dsl::TSO_CC_PGEN),
        (protogen::protocols::si_sd(), protogen::dsl::SI_SD_PGEN),
    ] {
        let from_dsl = protogen::dsl::parse_protocol(src).unwrap();
        for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g1 = generate(&from_dsl, &cfg).unwrap();
            let g2 = generate(&built, &cfg).unwrap();
            for (m1, m2, which) in
                [(&g1.cache, &g2.cache, "cache"), (&g1.directory, &g2.directory, "directory")]
            {
                assert_eq!(
                    m1.state_count(),
                    m2.state_count(),
                    "{} ({}) {which} states",
                    built.name,
                    config_label(&cfg)
                );
                assert_eq!(
                    m1.transition_count(),
                    m2.transition_count(),
                    "{} ({}) {which} transitions",
                    built.name,
                    config_label(&cfg)
                );
            }
        }
    }
}

/// Minimization is behaviour-preserving: for every bundled protocol in
/// both concurrency configurations, the model-check *verdict* at 2 caches
/// is identical with minimization on and off, and re-minimizing the raw
/// machines reproduces the minimized machines' explored state and
/// transition counts exactly — the IMAS = SMAS merge logic of
/// `crates/core/src/minimize.rs` may only fold states whose behaviour is
/// indistinguishable, never change what the protocol does. (The raw run
/// itself legitimately visits *more* system states: controller-state
/// identity enters the checker's encoding, so two bisimilar-but-unmerged
/// controller states split one orbit in two.)
#[test]
fn minimization_preserves_model_checked_behaviour() {
    use protogen::gen::minimize;
    for ssp in protogen::protocols::all() {
        for base in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let minimized = generate(&ssp, &base).unwrap();
            let mut raw_cfg = base.clone();
            raw_cfg.minimize = false;
            let raw = generate(&ssp, &raw_cfg).unwrap();
            let label = format!("{} ({})", ssp.name, config_label(&base));
            assert!(
                raw.cache.state_count() >= minimized.cache.state_count()
                    && raw.directory.state_count() >= minimized.directory.state_count(),
                "{label}: minimization grew a machine"
            );
            let rm = ModelChecker::new(&minimized.cache, &minimized.directory, mc_config_for(&ssp))
                .run();
            let rr = ModelChecker::new(&raw.cache, &raw.directory, mc_config_for(&ssp)).run();
            assert_eq!(
                rm.violation.as_ref().map(|v| &v.kind),
                rr.violation.as_ref().map(|v| &v.kind),
                "{label}: verdict differs with minimization off"
            );
            assert!(rr.states >= rm.states, "{label}: raw run explored fewer states");
            // The quotient is exact: folding the raw machines yields the
            // same explored behaviour as generating with minimization on.
            let (qc, _) = minimize(&raw.cache);
            let (qd, _) = minimize(&raw.directory);
            assert_eq!(qc.state_count(), minimized.cache.state_count(), "{label}: cache quotient");
            assert_eq!(
                qd.state_count(),
                minimized.directory.state_count(),
                "{label}: directory quotient"
            );
            let rq = ModelChecker::new(&qc, &qd, mc_config_for(&ssp)).run();
            assert_eq!(rq.states, rm.states, "{label}: quotient state count differs");
            assert_eq!(rq.transitions, rm.transitions, "{label}: quotient transitions differ");
            assert_eq!(
                rq.violation.as_ref().map(|v| &v.kind),
                rm.violation.as_ref().map(|v| &v.kind),
                "{label}: quotient verdict differs"
            );
        }
    }
}

/// The traded invariants really are traded: running the *full* invariant
/// set against TSO-CC must find a violation (otherwise the relaxed rows
/// in the matrix above would be vacuous).
#[test]
fn tso_cc_relaxation_is_load_bearing() {
    let ssp = protogen::protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
    assert!(
        r.violation.is_some(),
        "TSO-CC passed full SWMR + data-value checks; the conformance relaxation is stale"
    );
}

/// The property system selects what each protocol promises (ISSUE 8's
/// acceptance check): TSO-CC *fails* SWMR under the SC contract and
/// *passes* under its own TSO contract — same machines, different
/// [`PropertySet`].
#[test]
fn property_sets_select_what_each_protocol_promises() {
    use protogen::mc::ViolationKind;
    let ssp = protogen::protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let run = |properties: PropertySet| {
        let mut mc = McConfig::with_caches(2);
        mc.properties = properties;
        ModelChecker::new(&g.cache, &g.directory, mc).run()
    };
    let sc = run(PropertySet::sc());
    assert!(
        matches!(
            sc.violation.as_ref().map(|v| &v.kind),
            Some(ViolationKind::Swmr(_) | ViolationKind::DataValue(_))
        ),
        "TSO-CC under the SC contract should fail SWMR/data-value, got {:?}",
        sc.violation
    );
    let tso = run(PropertySet::tso());
    assert!(tso.passed(), "TSO-CC under its own contract failed: {:?}", tso.violation);
    // The promised-set resolution is what the conformance matrix uses.
    assert_eq!(PropertySet::promised(ssp.consistency), PropertySet::tso());
}

/// Custom closure properties attach to a checker and surface as
/// `ViolationKind::Property` with the predicate's name — the per-litmus
/// assertion hook.
#[test]
fn custom_predicate_properties_report_violations() {
    use protogen::mc::{Predicate, ViolationKind};
    let ssp = protogen::protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let mut mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2));
    // A deliberately false invariant: MSI certainly reaches a writer.
    mc.add_property(Box::new(Predicate::new("no-writer-ever", |cx, state| {
        state
            .caches
            .iter()
            .any(|c| cx.cache_fsm.state(c.state).perm == protogen::spec::Perm::ReadWrite)
            .then(|| "a cache reached write permission".to_string())
    })));
    let r = mc.run();
    match r.violation.map(|v| v.kind) {
        Some(ViolationKind::Property { property, detail }) => {
            assert_eq!(property, "no-writer-ever");
            assert!(detail.contains("write permission"), "{detail}");
        }
        other => panic!("expected the custom property to fire, got {other:?}"),
    }
}

/// The sharded explorer is thread-count-invariant: for every bundled
/// protocol (both generator configurations) at 2 caches, a 1-worker run
/// and a 4-worker run report identical `states`/`transitions` counts and
/// the same outcome — including the TSO-CC negative control, where both
/// must select the *same* violation kind.
#[test]
fn parallel_and_single_threaded_runs_agree() {
    for ssp in protogen::protocols::all() {
        for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &cfg).unwrap();
            let run = |threads: usize| {
                let mut mc = mc_config_for(&ssp);
                mc.threads = threads;
                ModelChecker::new(&g.cache, &g.directory, mc).run()
            };
            let (r1, r4) = (run(1), run(4));
            let label = format!("{} ({})", ssp.name, config_label(&cfg));
            assert_eq!(r1.states, r4.states, "{label}: states diverge across thread counts");
            assert_eq!(r1.transitions, r4.transitions, "{label}: transitions diverge");
            assert_eq!(
                r1.violation.as_ref().map(|v| &v.kind),
                r4.violation.as_ref().map(|v| &v.kind),
                "{label}: violation kind diverges"
            );
            assert_eq!(r1.hit_state_limit, r4.hit_state_limit, "{label}: limit flag diverges");
        }
    }
    // The negative control: TSO-CC under the *full* invariant set fails
    // identically at any thread count.
    let ssp = protogen::protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let run = |threads: usize| {
        let mut mc = McConfig::with_caches(2);
        mc.threads = threads;
        ModelChecker::new(&g.cache, &g.directory, mc).run()
    };
    let (r1, r4) = (run(1), run(4));
    let v1 = r1.violation.expect("TSO-CC control must fail");
    let v4 = r4.violation.expect("TSO-CC control must fail");
    assert_eq!(v1.kind, v4.kind, "negative control selects different violations");
    assert_eq!(r1.states, r4.states, "negative control: states diverge");
    assert_eq!(r1.transitions, r4.transitions, "negative control: transitions diverge");
}

/// The tiered store is result-invariant (ISSUE 6): for every bundled
/// protocol, verify results are byte-identical across store modes
/// (full / delta / fp-only), across thread counts, and across memory
/// budgets — including a budget tiny enough to force the spill tier on
/// every epoch. Spilling must actually have happened in the forced run,
/// or the "spill-on equals spill-off" half of the claim is vacuous.
#[test]
fn store_tiers_and_memory_budgets_preserve_results() {
    use protogen::mc::StoreMode;
    for ssp in protogen::protocols::all() {
        let cfg = GenConfig::non_stalling();
        let g = generate(&ssp, &cfg).unwrap();
        let run = |threads: usize, store: StoreMode, budget: usize| {
            let mut mc = mc_config_for(&ssp);
            mc.threads = threads;
            mc.store = store;
            mc.mem_budget_bytes = budget;
            mc.spill_chunk_bytes = 1; // clamps up to one page
            ModelChecker::new(&g.cache, &g.directory, mc).run()
        };
        let reference = run(1, StoreMode::Full, 0);
        assert!(reference.passed(), "{}: reference run failed", ssp.name);
        for (threads, store, budget) in [
            (1, StoreMode::Delta, 0),
            (1, StoreMode::FpOnly, 0),
            (4, StoreMode::Delta, 0),
            (1, StoreMode::Full, 1),
            (1, StoreMode::Delta, 1),
            (4, StoreMode::Delta, 1),
            (4, StoreMode::FpOnly, 1),
        ] {
            let r = run(threads, store, budget);
            let label = format!("{} ({threads}t, {store:?}, budget {budget})", ssp.name);
            assert_eq!(reference.states, r.states, "{label}: states diverge");
            assert_eq!(reference.transitions, r.transitions, "{label}: transitions diverge");
            assert_eq!(reference.hit_state_limit, r.hit_state_limit, "{label}: limit diverges");
            assert!(r.passed(), "{label}: verdict diverges");
            // Fp-only keeps no records and these 2-cache frontiers stay
            // under one spill chunk, so only the record-keeping modes are
            // guaranteed to spill under a forced budget.
            if budget == 1 && store != StoreMode::FpOnly && cfg!(unix) {
                assert!(r.spill_bytes > 0, "{label}: forced budget never spilled");
            }
            if budget == 0 {
                assert_eq!(r.spill_bytes, 0, "{label}: spilled without a budget");
            }
        }
    }
}

/// Counterexample traces survive the store tiers: the TSO-CC negative
/// control selects the identical violation and byte-identical trace with
/// delta compression on and with a budget forcing visited records to
/// spill (trace reconstruction then reads the spill tier). Fp-only keeps
/// the violation kind but explicitly reports that no trace exists.
#[test]
fn counterexample_traces_survive_store_tiers() {
    use protogen::mc::StoreMode;
    let ssp = protogen::protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let run = |store: StoreMode, budget: usize| {
        let mut mc = McConfig::with_caches(2);
        mc.threads = 4;
        mc.store = store;
        mc.mem_budget_bytes = budget;
        mc.spill_chunk_bytes = 1;
        ModelChecker::new(&g.cache, &g.directory, mc).run().violation.expect("control fails")
    };
    let reference = run(StoreMode::Full, 0);
    for (store, budget) in [(StoreMode::Delta, 0), (StoreMode::Full, 1), (StoreMode::Delta, 1)] {
        let v = run(store, budget);
        assert_eq!(v.kind, reference.kind, "({store:?}, budget {budget}): kind diverges");
        assert_eq!(v.trace, reference.trace, "({store:?}, budget {budget}): trace diverges");
    }
    let fp = run(StoreMode::FpOnly, 0);
    assert_eq!(fp.kind, reference.kind, "fp-only: violation kind diverges");
    assert_eq!(fp.trace.len(), 1, "fp-only: expected the no-trace notice");
    assert!(fp.trace[0].contains("no counterexample trace"), "{:?}", fp.trace);
}

/// Counterexample traces are byte-identical run to run at any thread
/// count: the end-of-level minimum-selection of violations and the
/// deterministic parent-edge resolution make the trace a pure function of
/// the protocol, not of scheduling.
#[test]
fn counterexample_traces_are_deterministic() {
    let ssp = protogen::protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let run = |threads: usize| {
        let mut mc = McConfig::with_caches(2);
        mc.threads = threads;
        ModelChecker::new(&g.cache, &g.directory, mc).run().violation.expect("control fails")
    };
    let reference = run(4);
    for attempt in 0..3 {
        let v = run(4);
        assert_eq!(v.kind, reference.kind, "violation kind drifted on attempt {attempt}");
        assert_eq!(v.trace, reference.trace, "trace bytes drifted on attempt {attempt}");
    }
    let single = run(1);
    assert_eq!(single.kind, reference.kind, "violation kind differs at 1 thread");
    assert_eq!(single.trace, reference.trace, "trace bytes differ at 1 thread");
    assert!(!reference.trace.is_empty(), "violation carries no trace");
}

/// Litmus verdicts follow the same sweep discipline as sim and fuzz:
/// the full classification report — outcome sets included — is
/// byte-identical for any worker count and any exploration seed.
/// Enumeration is exhaustive, so neither shard scheduling nor successor
/// ordering may ever change what a protocol can observably do. The
/// subset here is the weak-memory pair on the tests that separate the
/// models (the full matrix is PR CI's litmus job).
#[test]
fn litmus_verdicts_are_thread_count_and_seed_invariant() {
    use protogen::litmus::{bundled, run_suite, Limits, Verdict};
    let ssps = vec![protogen::protocols::tso_cc(), protogen::protocols::si_sd()];
    let tests: Vec<_> =
        bundled().into_iter().filter(|t| matches!(t.name.as_str(), "SB" | "MP")).collect();
    assert_eq!(tests.len(), 2, "the bundled litmus suite lost SB or MP");
    let reference = run_suite(&ssps, &tests, &Limits::default(), 1).unwrap();
    for (workers, seed) in [(3, 0u64), (1, 99), (4, 1 << 40)] {
        let limits = Limits { seed, ..Limits::default() };
        let r = run_suite(&ssps, &tests, &limits, workers).unwrap();
        assert_eq!(reference, r, "litmus report diverged at workers={workers}, seed={seed}");
    }
    // The subset is not vacuous: TSO-CC shows store buffering on SB and
    // SI/SD breaks message passing.
    assert_eq!(reference.protocols[0].verdict(), Verdict::Tso);
    assert_eq!(reference.protocols[1].verdict(), Verdict::Weak);
}

/// `ModelChecker::steps` enumerates scheduling decisions in a canonical
/// order — deliveries by `(src, dst, idx)` before accesses by `(cache,
/// access)` — that depends only on the state, never on thread
/// interleaving.
#[test]
fn step_enumeration_order_is_canonical() {
    use protogen::mc::Step;
    let ssp = protogen::protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(3));
    let mut state = protogen::mc::SysState::initial(3);
    // Seed a few in-flight messages out of enumeration order.
    for (src, dst) in [(2u8, 3u8), (0, 3), (3, 1)] {
        state.send(protogen::runtime::Msg {
            mtype: protogen::spec::MsgId(0),
            src: protogen::runtime::NodeId(src),
            dst: protogen::runtime::NodeId(dst),
            req: protogen::runtime::NodeId(src),
            ack_count: None,
            data: None,
        });
    }
    let steps = mc.steps(&state);
    assert_eq!(steps, mc.steps(&state), "steps() is not stable");
    let mut sorted = steps.clone();
    sorted.sort();
    assert_eq!(steps, sorted, "steps() is not in canonical sorted order");
    let first_access = steps.iter().position(|s| matches!(s, Step::IssueAccess { .. }));
    let last_delivery = steps.iter().rposition(|s| matches!(s, Step::Deliver { .. }));
    if let (Some(a), Some(d)) = (first_access, last_delivery) {
        assert!(d < a, "a delivery was enumerated after an access");
    }
    // 3 deliveries + 3 caches × 3 accesses.
    assert_eq!(steps.len(), 3 + 9);
}
