//! Integration tests reproducing every table and figure of the paper.
//! One test per experiment of DESIGN.md's index (E1–E14); EXPERIMENTS.md
//! records paper-vs-measured for each.

use protogen::backend::{diff, render_ssp_table, render_table, TableOptions};
use protogen::gen::{generate, Concurrency, GenConfig};
use protogen::mc::{McConfig, ModelChecker, PropertySet};
use protogen::spec::{Event, MachineKind};

fn non_stalling_msi() -> protogen::gen::Generated {
    generate(&protogen::protocols::msi(), &GenConfig::non_stalling()).unwrap()
}

/// E1/E2 — Tables I and II: the atomic MSI specification renders with the
/// paper's rows and columns.
#[test]
fn e1_e2_atomic_msi_tables() {
    let ssp = protogen::protocols::msi();
    let t1 = render_ssp_table(&ssp, MachineKind::Cache);
    for state in ["I", "S", "M"] {
        assert!(t1.lines().any(|l| l.starts_with(state)), "missing row {state}:\n{t1}");
    }
    for col in ["load", "store", "replacement", "Fwd_GetS", "Fwd_GetM", "Inv"] {
        assert!(t1.lines().next().unwrap().contains(col), "missing column {col}");
    }
    let t2 = render_ssp_table(&ssp, MachineKind::Directory);
    for col in ["GetS", "GetM", "PutS", "PutM"] {
        assert!(t2.lines().next().unwrap().contains(col), "missing column {col}");
    }
    // Directory M+GetS blocks for the owner's writeback (the `..` marks a
    // transaction in the renderer).
    let m_row = t2.lines().find(|l| l.starts_with("M ")).unwrap();
    assert!(m_row.contains("Fwd_GetS"));
}

/// E3 — Tables III/IV: preprocessing renames MOSI's second Fwd_GetS.
#[test]
fn e3_mosi_preprocessing_renames() {
    let ssp = protogen::protocols::mosi();
    let (out, renames) = protogen::gen::preprocess(&ssp).unwrap();
    let fwd_gets: Vec<_> = renames.iter().filter(|r| r.original == "Fwd_GetS").collect();
    assert_eq!(fwd_gets.len(), 1);
    assert_eq!(fwd_gets[0].renamed, "O_Fwd_GetS");
    assert_eq!(fwd_gets[0].state, "O");
    assert!(out.msg_by_name("O_Fwd_GetS").is_some());
    // M keeps the original name (the paper's Table IV).
    let m = out.cache.state_by_name("M").unwrap();
    let orig = out.msg_by_name("Fwd_GetS").unwrap();
    assert!(out.cache.handles(m, protogen::spec::Trigger::Msg(orig)));
}

/// E4 — Table V: Step 2 creates IM_AD and IM_A for the I→M transaction,
/// with the store performed on the completing response.
#[test]
fn e4_step2_transient_states() {
    let g = non_stalling_msi();
    let imad = g.cache.state_by_name("IM_AD").expect("IM_AD exists");
    let ima = g.cache.state_by_name("IM_A").expect("IM_A exists");
    let data = g.cache.msg_by_name("Data").unwrap();
    let inv_ack = g.cache.msg_by_name("Inv_Ack").unwrap();
    let m = g.cache.state_by_name("M").unwrap();
    // Table V row IMAD: DataNoAcks → M; Data+#Acks → IMA.
    let arcs = g.cache.arcs_for(imad, Event::Msg(data));
    assert!(arcs.iter().any(|a| a.to == m));
    assert!(arcs.iter().any(|a| a.to == ima));
    // Table V row IMA: Last Ack → M.
    let arcs = g.cache.arcs_for(ima, Event::Msg(inv_ack));
    assert!(arcs.iter().any(|a| a.to == m));
}

/// E5 — Table VI: the non-stalling MSI cache controller has the paper's
/// states, extra non-stalling states, and merges.
#[test]
fn e5_table_vi_nonstalling_msi() {
    let g = non_stalling_msi();
    // 18–20 states (§VI-B). The paper's table lists 19; our minimizer
    // additionally proves SI_A bisimilar to II_A (one fewer).
    assert!((18..=20).contains(&g.cache.state_count()), "state count {}", g.cache.state_count());
    // Count transitions the way the paper does: real protocol actions,
    // excluding synthesized defensive acknowledgments of stale forwards.
    let core_transitions = g
        .cache
        .arcs
        .iter()
        .filter(|a| {
            a.kind == protogen::spec::ArcKind::Normal
                && a.note != protogen::spec::ArcNote::Defensive
        })
        .count();
    assert!((46..=70).contains(&core_transitions), "transition count {core_transitions}");
    // The additional non-stalling transient states the paper highlights.
    for name in ["IM_AD_S", "IM_AD_I", "IM_AD_SI", "SM_AD_S"] {
        assert!(g.cache.state_by_name(name).is_some(), "missing {name}");
    }
    // The merges of §VI-B: IMAS=SMAS, IMASI=SMASI, IMAI=SMAI.
    for (kept, merged) in [("IM_A_S", "SM_A_S"), ("IM_A_SI", "SM_A_SI"), ("IM_A_I", "SM_A_I")] {
        let m = g
            .report
            .cache_merges
            .iter()
            .find(|m| m.kept == kept)
            .unwrap_or_else(|| panic!("{kept} not merged"));
        assert!(m.merged.iter().any(|x| x == merged), "{kept} != {merged}");
    }
    // Access-permission spot checks straight from Table VI.
    let table = render_table(&g.cache, &TableOptions::default());
    let row = |name: &str| {
        table
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("row {name} missing"))
            .to_string()
    };
    assert!(row("SM_AD ").contains("hit"), "SMAD allows load hits");
    assert!(row("SM_AD_S ").contains("hit"), "SMADS allows load hits");
    assert!(!row("IM_A_S=").contains("hit"), "IMAS stalls loads");
}

/// E6 — Figure 1: an Invalidation in SM_AD is acknowledged immediately and
/// the transaction logically restarts from IM_AD.
#[test]
fn e6_figure1_case1_restart() {
    let g = non_stalling_msi();
    let smad = g.cache.state_by_name("SM_AD").unwrap();
    let inv = g.cache.msg_by_name("Inv").unwrap();
    let imad = g.cache.state_by_name("IM_AD").unwrap();
    let arcs = g.cache.arcs_for(smad, Event::Msg(inv));
    assert_eq!(arcs.len(), 1);
    assert_eq!(arcs[0].to, imad);
    let inv_ack = g.cache.msg_by_name("Inv_Ack").unwrap();
    assert!(arcs[0]
        .actions
        .iter()
        .any(|a| matches!(a, protogen::spec::Action::Send(sp) if sp.msg == inv_ack)));
    // The same restart exists in the *stalling* protocol: stalling a Case 1
    // forward would deadlock (§V-D1).
    let st = generate(&protogen::protocols::msi(), &GenConfig::stalling()).unwrap();
    let smad = st.cache.state_by_name("SM_AD").unwrap();
    let arcs = st.cache.arcs_for(smad, Event::Msg(inv));
    assert_eq!(arcs[0].kind, protogen::spec::ArcKind::Normal);
}

/// E7 — Figure 2: an Invalidation in IS_D produces IS_D_I with an
/// immediate Inv-Ack; the data response then serves one load (the livelock
/// fix) and the block ends Invalid.
#[test]
fn e7_figure2_isd_inv() {
    let g = non_stalling_msi();
    let isd = g.cache.state_by_name("IS_D").unwrap();
    let inv = g.cache.msg_by_name("Inv").unwrap();
    let isdi = g.cache.state_by_name("IS_D_I").expect("IS_D_I exists");
    let arcs = g.cache.arcs_for(isd, Event::Msg(inv));
    assert_eq!(arcs[0].to, isdi);
    // Completion: Data performs the pending load, then the block is I.
    let data = g.cache.msg_by_name("Data").unwrap();
    let i = g.cache.state_by_name("I").unwrap();
    let arcs = g.cache.arcs_for(isdi, Event::Msg(data));
    assert_eq!(arcs[0].to, i);
    assert!(arcs[0].actions.iter().any(|a| matches!(a, protogen::spec::Action::PerformAccess)));
}

/// E8 — §VI-A: stalling MSI/MESI/MOSI verify for SWMR, data value,
/// deadlock freedom and completeness (2 caches here; 3-cache runs live in
/// the benchmark harness).
#[test]
fn e8_stalling_protocols_verify() {
    for ssp in
        [protogen::protocols::msi(), protogen::protocols::mesi(), protogen::protocols::mosi()]
    {
        let g = generate(&ssp, &GenConfig::stalling()).unwrap();
        let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "{}: {:?}", ssp.name, r.violation);
    }
}

/// E9 — §VI-B: non-stalling MSI/MESI/MOSI verify; state counts fall in the
/// paper's 18–20 band for MSI/MESI-class protocols.
#[test]
fn e9_nonstalling_protocols_verify() {
    for ssp in
        [protogen::protocols::msi(), protogen::protocols::mesi(), protogen::protocols::mosi()]
    {
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        assert!(g.cache.state_count() >= 18, "{}: {}", ssp.name, g.cache.state_count());
        let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "{}: {:?}", ssp.name, r.violation);
    }
}

/// E9 (shape) — the non-stalling protocol acts exactly where the stalling
/// one stalls.
#[test]
fn e9_nonstalling_stalls_less() {
    let ssp = protogen::protocols::msi();
    let st = generate(&ssp, &GenConfig::stalling()).unwrap();
    let ns = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let d = diff(&st.cache, &ns.cache);
    let less: Vec<_> = d.stall_differences.iter().filter(|s| s.contains("left stalls")).collect();
    assert!(!less.is_empty(), "non-stalling must stall strictly less");
    // And never the other way around.
    assert!(d.stall_differences.iter().all(|s| !s.contains("right stalls")), "{d:?}");
}

/// E11 — §VI-C: the handshake MSI verifies on genuinely unordered
/// channels.
#[test]
fn e11_unordered_msi_verifies() {
    let ssp = protogen::protocols::msi_unordered();
    assert!(!ssp.network_ordered);
    for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
        let g = generate(&ssp, &cfg).unwrap();
        let mut mc = McConfig::with_caches(2);
        mc.ordered = false;
        let r = ModelChecker::new(&g.cache, &g.directory, mc).run();
        assert!(r.passed(), "{:?}: {:?}", cfg.concurrency, r.violation);
    }
    // The *ordered-network* MSI is NOT safe on an unordered network: the
    // checker finds the race the handshakes exist to close.
    let plain = generate(&protogen::protocols::msi(), &GenConfig::non_stalling()).unwrap();
    let mut mc = McConfig::with_caches(2);
    mc.ordered = false;
    let r = ModelChecker::new(&plain.cache, &plain.directory, mc).run();
    assert!(r.violation.is_some(), "ordered MSI must fail on unordered channels");
}

/// E12 — §VI-D: TSO-CC generates and verifies its weaker invariant set
/// (single writer, deadlock freedom, completeness).
#[test]
fn e12_tso_cc_verifies() {
    let ssp = protogen::protocols::tso_cc();
    for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
        let g = generate(&ssp, &cfg).unwrap();
        let mut mc = McConfig::with_caches(2);
        // Physical SWMR and data-value freshness are broken by design;
        // single-writer and deadlock freedom are what TSO-CC promises.
        mc.properties = PropertySet::promised(ssp.consistency);
        let r = ModelChecker::new(&g.cache, &g.directory, mc).run();
        assert!(r.passed(), "{:?}: {:?}", cfg.concurrency, r.violation);
    }
    // And the full-SWMR check *does* fail — TSO-CC genuinely trades it.
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
    assert!(r.violation.is_some(), "TSO-CC intentionally breaks physical SWMR");
}

/// E14 — §V-D1: the directory reinterprets an Upgrade from a non-sharer as
/// a GetM, and the protocol verifies.
#[test]
fn e14_upgrade_reinterpretation() {
    let ssp = protogen::protocols::msi_upgrade();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    assert!(
        g.report
            .reinterpretations
            .iter()
            .any(|r| r.original == "Upgrade" && r.treated_as == "GetM"),
        "{:?}",
        g.report.reinterpretations
    );
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
    assert!(r.passed(), "{:?}", r.violation);
}

/// The DSL front-end and the programmatic builder produce equivalent
/// protocols: same generated state space, same verification result.
#[test]
fn dsl_and_builder_msi_are_equivalent() {
    let from_dsl = protogen::dsl::parse_protocol(protogen::dsl::MSI_PGEN).unwrap();
    let built = protogen::protocols::msi();
    let g1 = generate(&from_dsl, &GenConfig::non_stalling()).unwrap();
    let g2 = generate(&built, &GenConfig::non_stalling()).unwrap();
    assert_eq!(g1.cache.state_count(), g2.cache.state_count());
    assert_eq!(g1.cache.transition_count(), g2.cache.transition_count());
    let names = |f: &protogen::spec::Fsm| {
        let mut v: Vec<String> = f.states.iter().map(|s| s.full_name()).collect();
        v.sort();
        v
    };
    assert_eq!(names(&g1.cache), names(&g2.cache));
    let r = ModelChecker::new(&g1.cache, &g1.directory, McConfig::with_caches(2)).run();
    assert!(r.passed(), "{:?}", r.violation);
}

/// Every protocol × both concurrency configs verifies at 2 caches — the
/// full §VI sweep (3-cache runs are in the bench harness; they pass too).
#[test]
fn full_sweep_all_protocols_verify() {
    for ssp in protogen::protocols::all() {
        for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &cfg).unwrap();
            let mut mc = McConfig::with_caches(2);
            mc.ordered = ssp.network_ordered;
            mc.properties = PropertySet::promised(ssp.consistency);
            let r = ModelChecker::new(&g.cache, &g.directory, mc).run();
            assert!(
                r.passed(),
                "{} ({}): {:?}",
                ssp.name,
                match cfg.concurrency {
                    Concurrency::Stalling => "stalling",
                    Concurrency::NonStalling => "non-stalling",
                },
                r.violation
            );
        }
    }
}

/// Design-note N6: on *unordered* networks, stale invalidations reach
/// caches whose epoch already ended; without defensive handlers the
/// checker finds the resulting incompleteness. (On fully point-to-point
/// ordered networks the race cannot occur, and the same test passes.)
#[test]
fn defensive_handlers_are_load_bearing_when_unordered() {
    let mut cfg = GenConfig::non_stalling();
    cfg.defensive_stable_handlers = false;
    let g = generate(&protogen::protocols::msi_unordered(), &cfg).unwrap();
    let mut mc = McConfig::with_caches(2);
    mc.ordered = false;
    let r = ModelChecker::new(&g.cache, &g.directory, mc).run();
    assert!(r.violation.is_some(), "expected a stale-Inv race without defensive handlers");
    // On an ordered network the plain MSI protocol needs none of them.
    let mut cfg = GenConfig::non_stalling();
    cfg.defensive_stable_handlers = false;
    let g = generate(&protogen::protocols::msi(), &cfg).unwrap();
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
    assert!(r.passed(), "{:?}", r.violation);
}

/// The Murϕ backend emits a model per §IV-B.
#[test]
fn murphi_backend_emits_model() {
    let g = non_stalling_msi();
    let text = protogen::backend::to_murphi(&g.cache, &g.directory, 3);
    assert!(text.contains("scalarset"));
    assert!(text.contains("invariant \"SWMR\""));
    assert!(text.matches("rule \"").count() > 40);
}

/// The DSL versions of MESI and MOSI generate the same machines as the
/// programmatic builders and verify — full front-end coverage of the
/// protocol suite (the paper's input path, §IV-A).
#[test]
fn dsl_mesi_and_mosi_are_equivalent() {
    for (src, built) in [
        (protogen::dsl::MESI_PGEN, protogen::protocols::mesi()),
        (protogen::dsl::MOSI_PGEN, protogen::protocols::mosi()),
    ] {
        let from_dsl = protogen::dsl::parse_protocol(src).unwrap();
        let g1 = generate(&from_dsl, &GenConfig::non_stalling()).unwrap();
        let g2 = generate(&built, &GenConfig::non_stalling()).unwrap();
        assert_eq!(g1.cache.state_count(), g2.cache.state_count(), "{}", built.name);
        assert_eq!(g1.directory.state_count(), g2.directory.state_count(), "{}", built.name);
        let r = ModelChecker::new(&g1.cache, &g1.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "{}: {:?}", built.name, r.violation);
    }
}

/// The Conservative transient-access policy (stall everything, §V-E's
/// safe baseline) still verifies and merges at least as much as the
/// paper-rule policy.
#[test]
fn conservative_access_policy_verifies() {
    let mut cfg = GenConfig::non_stalling();
    cfg.transient_access = protogen::gen::TransientAccessPolicy::Conservative;
    let g = generate(&protogen::protocols::msi(), &cfg).unwrap();
    let paper = non_stalling_msi();
    assert!(g.cache.state_count() <= paper.cache.state_count());
    let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
    assert!(r.passed(), "{:?}", r.violation);
}

/// §V-D2's "Immediate Transition and Responses" policy generates and
/// verifies. For the MOESI-family protocols the data-bearing responses of
/// racing transactions always hinge on a pending *store*, which immediate
/// mode must still defer, so the generated machines remain SWMR-safe.
#[test]
fn immediate_response_policy_verifies() {
    for ssp in [protogen::protocols::msi(), protogen::protocols::mesi()] {
        let mut cfg = GenConfig::non_stalling();
        cfg.response_policy = protogen::gen::ResponsePolicy::Immediate;
        let g = generate(&ssp, &cfg).unwrap();
        let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "{}: {:?}", ssp.name, r.violation);
    }
}

/// Pending-transaction-limit sweep (§V-D2's parameter L): every bound
/// generates a verifiable protocol; smaller bounds mean more stalling but
/// never incorrectness.
#[test]
fn pending_limit_sweep_verifies() {
    for limit in [1usize, 2, 3, 4] {
        let mut cfg = GenConfig::non_stalling();
        cfg.pending_limit = limit;
        let g = generate(&protogen::protocols::msi(), &cfg).unwrap();
        let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "L={limit}: {:?}", r.violation);
    }
}

/// Without stale-Put sharer cleanup (the paper says cleanup is optional)
/// the protocols still verify: the defensive acknowledgments absorb the
/// stale invalidations that result.
#[test]
fn no_cleanup_still_verifies() {
    let mut cfg = GenConfig::non_stalling();
    cfg.dir_stale_put_cleanup = false;
    for ssp in [protogen::protocols::msi(), protogen::protocols::mosi()] {
        let g = generate(&ssp, &cfg).unwrap();
        let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
        assert!(r.passed(), "{}: {:?}", ssp.name, r.violation);
    }
}
