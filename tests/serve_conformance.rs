//! Live service ↔ model-checker conformance (the ISSUE 7 acceptance
//! property).
//!
//! The service runs the generated FSMs under *real* thread interleavings
//! — the one runtime in the workspace that is not lockstep-deterministic
//! — so this is the strongest form of the conformance contract: every
//! `(machine, state, event)` pair a live multi-threaded run dispatches on
//! must appear in the exhaustive checker's coverage set at the same cache
//! count. The subset argument (DESIGN.md §10) reduces each block's live
//! history to an interleaving of atomic FSM steps over ordered channels,
//! which is an execution the checker explored; an escape therefore means
//! the service left the verified envelope and must hard-fail.

use protogen::gen::{generate, GenConfig};
use protogen::mc::McConfig;
use protogen::serve::{checked_envelope, pair_label, serve, ServeConfig};
use protogen::sim::Workload;

#[test]
fn live_service_stays_inside_the_model_checked_envelope() {
    for name in ["msi", "mesi"] {
        let ssp = protogen::protocols::by_name(name).unwrap();
        for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &gc).unwrap();
            let mut mc_cfg = McConfig::with_caches(2);
            mc_cfg.ordered = ssp.network_ordered;
            let checked = checked_envelope(&g.cache, &g.directory, mc_cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!checked.is_empty());

            let mut live_union = protogen::runtime::PairSet::new();
            for workload in
                [Workload::Uniform { store_pct: 50 }, Workload::Migratory, Workload::Private]
            {
                let mut cfg = ServeConfig::new(2);
                cfg.dir_shards = 2;
                cfg.n_addrs = 4;
                cfg.total_ops = 10_000;
                cfg.workload = workload.clone();
                cfg.seed = 7;
                let report = serve(&g.cache, &g.directory, &cfg)
                    .unwrap_or_else(|e| panic!("{name} under {}: {e}", workload.label()));
                assert_eq!(report.ops, 10_000, "{name}: every op must complete");
                let escapes = report.escapes(&checked);
                assert!(
                    escapes.is_empty(),
                    "{name} ({:?}) under {}: live run dispatched on pairs the model \
                     checker never visited: {:?}",
                    gc.concurrency,
                    workload.label(),
                    escapes
                        .iter()
                        .map(|p| pair_label(&g.cache, &g.directory, p))
                        .collect::<Vec<_>>()
                );
                live_union.extend(report.coverage.iter().copied());
            }
            // The live sets are not just subsets but meaningful ones: a
            // service that never dispatched anything would also pass the
            // subset check. (Per-workload floors would be host-dependent —
            // a single-core box interleaves far less than CI runners.)
            assert!(live_union.len() > 15, "{name}: suspiciously sparse live coverage");
        }
    }
}
