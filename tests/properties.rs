//! Property-based tests on generator and runtime invariants.

use proptest::prelude::*;
use protogen::gen::{generate, minimize, preprocess, GenConfig};
use protogen::mc::{permutations, SysState};
use protogen::sim::{simulate, NetworkConfig, SimConfig, Workload};
use protogen_runtime::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_gen_config() -> impl Strategy<Value = GenConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 1usize..=4).prop_map(
        |(stalling, conservative, cleanup, limit)| {
            let mut cfg = if stalling { GenConfig::stalling() } else { GenConfig::non_stalling() };
            cfg.transient_access = if conservative {
                protogen::gen::TransientAccessPolicy::Conservative
            } else {
                protogen::gen::TransientAccessPolicy::Paper
            };
            cfg.dir_stale_put_cleanup = cleanup;
            cfg.pending_limit = limit;
            cfg
        },
    )
}

fn protocol_index() -> impl Strategy<Value = usize> {
    0usize..protogen::protocols::all().len()
}

fn any_workload() -> impl Strategy<Value = Workload> {
    (0usize..6, 0u8..=100).prop_map(|(kind, store_pct)| match kind {
        0 => Workload::Uniform { store_pct },
        1 => Workload::Zipfian { store_pct },
        2 => Workload::ProducerConsumer,
        3 => Workload::Migratory,
        4 => Workload::FalseSharing,
        _ => Workload::Private,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation never panics or errors over the whole configuration
    /// space, and always yields well-formed machines: state 0 stable,
    /// every arc in range, every stall a self-loop.
    #[test]
    fn generation_is_total_and_wellformed(cfg in any_gen_config(), pi in protocol_index()) {
        let ssp = &protogen::protocols::all()[pi];
        let g = generate(ssp, &cfg).expect("generation succeeds");
        for fsm in [&g.cache, &g.directory] {
            prop_assert!(fsm.state(protogen::spec::FsmStateId(0)).is_stable());
            for a in &fsm.arcs {
                prop_assert!(a.from.as_usize() < fsm.state_count());
                prop_assert!(a.to.as_usize() < fsm.state_count());
                if a.kind == protogen::spec::ArcKind::Stall {
                    prop_assert_eq!(a.from, a.to);
                    prop_assert!(a.actions.is_empty());
                }
            }
        }
    }

    /// Preprocessing is idempotent: the renamed protocol needs no further
    /// renames.
    #[test]
    fn preprocessing_is_idempotent(pi in protocol_index()) {
        let ssp = &protogen::protocols::all()[pi];
        let (once, _) = preprocess(ssp).expect("preprocess");
        let (twice, renames) = preprocess(&once).expect("preprocess again");
        prop_assert!(renames.is_empty());
        prop_assert_eq!(once, twice);
    }

    /// Minimization is idempotent and never grows the machine.
    #[test]
    fn minimization_is_idempotent(cfg in any_gen_config(), pi in protocol_index()) {
        let ssp = &protogen::protocols::all()[pi];
        let g = generate(ssp, &cfg).expect("generation succeeds");
        for fsm in [&g.cache, &g.directory] {
            let (again, merges) = minimize(fsm);
            prop_assert!(merges.is_empty(), "{:?}", merges);
            prop_assert_eq!(again.state_count(), fsm.state_count());
        }
    }

    /// Symmetry canonicalization: permuting cache identities never changes
    /// the canonical encoding (the Murϕ scalarset property).
    #[test]
    fn canonical_encoding_is_permutation_invariant(
        owner in 0u8..3,
        sharers in 0u8..8,
        ghost in 0u8..2,
        perm_idx in 0usize..6,
    ) {
        let perms = permutations(3);
        let mut s = SysState::initial(3);
        s.dir.owner = Some(NodeId(owner));
        s.dir.sharers = sharers;
        s.ghost = ghost;
        let permuted = s.permuted(&perms[perm_idx]);
        prop_assert_eq!(
            s.canonical_encoding(&perms),
            permuted.canonical_encoding(&perms)
        );
    }

    /// Every verified protocol completes every workload in simulation —
    /// no livelock, no lost accesses — under random parameters.
    #[test]
    fn simulation_always_completes(
        pi in protocol_index(),
        stalling in any::<bool>(),
        seed in any::<u64>(),
        workload in any_workload(),
        latency in 1u64..20,
    ) {
        let ssp = &protogen::protocols::all()[pi];
        let cfg = if stalling { GenConfig::stalling() } else { GenConfig::non_stalling() };
        let g = generate(ssp, &cfg).expect("generation succeeds");
        let sim_cfg = SimConfig {
            n_caches: 3,
            n_addrs: 3,
            accesses_per_core: 30,
            workload,
            seed,
            network: NetworkConfig::ordered(latency),
            ..SimConfig::default()
        };
        let r = simulate(&g.cache, &g.directory, &sim_cfg).expect("simulation completes");
        prop_assert_eq!(r.completed, 90);
    }

    /// Every bundled DSL source — the SI/SD and TSO-CC weak-memory specs
    /// included — round-trips through parse → render → reparse → lower:
    /// the AST survives rendering unchanged, the lowered SSPs are
    /// identical, and randomly injected comment lines (formatting noise)
    /// are invisible to the front-end.
    #[test]
    fn dsl_sources_round_trip_through_parse_lower_render(
        pi in 0usize..7,
        noise in proptest::collection::vec((any::<u16>(), any::<u64>()), 0..8),
    ) {
        let src = [
            protogen::dsl::MSI_PGEN,
            protogen::dsl::MESI_PGEN,
            protogen::dsl::MOSI_PGEN,
            protogen::dsl::MSI_UPGRADE_PGEN,
            protogen::dsl::MSI_UNORDERED_PGEN,
            protogen::dsl::TSO_CC_PGEN,
            protogen::dsl::SI_SD_PGEN,
        ][pi];
        let ast = protogen::dsl::parse(src).expect("bundled source parses");
        let rendered = protogen::dsl::render(&ast);
        let mut lines: Vec<String> = rendered.lines().map(str::to_string).collect();
        for (pos, text) in &noise {
            let at = (*pos as usize) % (lines.len() + 1);
            lines.insert(at, format!("// noise {text:016x}"));
        }
        let noisy = lines.join("\n");
        let again = protogen::dsl::parse(&noisy)
            .expect("rendered source reparses under comment noise");
        prop_assert_eq!(&ast, &again, "render/reparse changed the AST");
        let direct = protogen::dsl::lower(&ast).expect("bundled source lowers");
        let round = protogen::dsl::lower(&again).expect("round-tripped source lowers");
        prop_assert_eq!(direct, round);
    }

    /// Every synthetic workload generator emits only operations that are
    /// valid for the configured system — addresses within `n_addrs`, one
    /// schedule per core of exactly the requested length — and expansion
    /// is a pure function of the seed.
    #[test]
    fn workload_generators_emit_only_valid_ops(
        workload in any_workload(),
        n_caches in 1usize..=8,
        n_addrs in 1usize..=16,
        accesses in 0usize..=60,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedules = workload
            .schedules(n_caches, n_addrs, accesses, &mut rng)
            .expect("synthetic workloads expand for any non-empty system");
        prop_assert_eq!(schedules.len(), n_caches);
        for ops in &schedules {
            prop_assert_eq!(ops.len(), accesses);
            for op in ops {
                prop_assert!(
                    (op.addr as usize) < n_addrs,
                    "{} emitted address {} with n_addrs {}",
                    workload.label(),
                    op.addr,
                    n_addrs
                );
            }
        }
        let mut rng2 = StdRng::seed_from_u64(seed);
        let replay = workload.schedules(n_caches, n_addrs, accesses, &mut rng2).unwrap();
        prop_assert_eq!(schedules, replay);
    }
}
