//! **protogen** — automatically generate concurrent directory cache
//! coherence protocols from atomic (stable-state) specifications.
//!
//! A reproduction of *ProtoGen: Automatically Generating Directory Cache
//! Coherence Protocols from Atomic Specifications* (Oswald, Nagarajan &
//! Sorin, ISCA 2018). This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`spec`] | `protogen-spec` | Protocol IR: SSPs and generated FSMs |
//! | [`dsl`] | `protogen-dsl` | The specification language front-end |
//! | [`gen`] | `protogen-core` | The ProtoGen generation algorithm |
//! | [`runtime`] | `protogen-runtime` | Executable FSM semantics |
//! | [`mc`] | `protogen-mc` | Explicit-state model checker (Murϕ substrate) |
//! | [`sim`] | `protogen-sim` | Simulation subsystem: networks, workloads, sweeps |
//! | [`serve`] | `protogen-serve` | Live multi-threaded cache service inside the verified envelope |
//! | [`protocols`] | `protogen-protocols` | MSI, MESI, MOSI, Upgrade, unordered, TSO-CC, SI/SD |
//! | [`litmus`] | `protogen-litmus` | Litmus harness: SC/TSO/weak classification |
//! | [`fuzz`] | `protogen-fuzz` | Mutation-based fuzzing of the generate→check pipeline |
//! | [`backend`] | `protogen-backend` | Tables, DOT, Murϕ text, diffing |
//!
//! # Quickstart
//!
//! ```
//! use protogen::gen::{generate, GenConfig};
//! use protogen::mc::{McConfig, ModelChecker};
//!
//! // 1. Take an atomic specification (Tables I/II of the paper)…
//! let ssp = protogen::protocols::msi();
//! // 2. …generate the complete concurrent protocol…
//! let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
//! assert_eq!(g.cache.state_count(), 18); // Table VI's transient states
//! // 3. …and verify it for SWMR and deadlock freedom.
//! let r = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2)).run();
//! assert!(r.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use protogen_backend as backend;
pub use protogen_core as gen;
pub use protogen_dsl as dsl;
pub use protogen_fuzz as fuzz;
pub use protogen_litmus as litmus;
pub use protogen_mc as mc;
pub use protogen_protocols as protocols;
pub use protogen_runtime as runtime;
pub use protogen_serve as serve;
pub use protogen_sim as sim;
pub use protogen_spec as spec;
