//! Cache controller generation: Steps 1–4 of §V.

use crate::analysis::Analysis;
use crate::config::{Concurrency, GenConfig, TransientAccessPolicy};
use crate::error::GenError;
use crate::report::Reinterpretation;
use protogen_spec::{
    Access, AckSrc, Action, Arc, ArcKind, ArcNote, ChainLink, Dst, Effect, EntryNote, Event, Fsm,
    FsmState, FsmStateId, FsmStateKind, MachineKind, MsgId, Perm, ReqField, Ssp, StableId,
    TransientMeta, Trigger, WaitTo,
};
use std::collections::{HashMap, VecDeque};

/// One processed forward in a deferral chain, with its (already rewritten)
/// deferred completion sends.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Elem {
    pub fwd: MsgId,
    pub logical_to: StableId,
    /// Deferred sends, rewritten to address `Dst::ChainReq(slot)`.
    pub deferred: Vec<Action>,
}

/// Identity of a generated cache state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Stable(StableId),
    /// Await point `w` of transaction `txn` with a deferral chain.
    Wait {
        txn: usize,
        w: usize,
        chain: Vec<Elem>,
    },
    /// The own transaction became moot (Case 1 with no restart); drain the
    /// outstanding response and land in `logical`.
    Zombie {
        txn: usize,
        w: usize,
        logical: StableId,
    },
}

pub(crate) struct CacheGen<'a> {
    ssp: &'a Ssp,
    cfg: &'a GenConfig,
    an: &'a Analysis,
    states: Vec<(Key, String)>,
    index: HashMap<Key, FsmStateId>,
    names: HashMap<String, Key>,
    arcs: Vec<Arc>,
    work: VecDeque<FsmStateId>,
    pub(crate) reinterpretations: Vec<Reinterpretation>,
    pub(crate) warnings: Vec<String>,
}

impl<'a> CacheGen<'a> {
    pub(crate) fn new(ssp: &'a Ssp, cfg: &'a GenConfig, an: &'a Analysis) -> Self {
        CacheGen {
            ssp,
            cfg,
            an,
            states: Vec::new(),
            index: HashMap::new(),
            names: HashMap::new(),
            arcs: Vec::new(),
            work: VecDeque::new(),
            reinterpretations: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Runs generation and produces the cache controller FSM.
    pub(crate) fn run(mut self) -> Result<(Fsm, Vec<Reinterpretation>, Vec<String>), GenError> {
        // Step 1: State Sets start as the stable states themselves; we
        // intern every stable state first so ids line up with the SSP and
        // the initial state is id 0.
        for s in self.ssp.cache.state_ids() {
            self.intern(Key::Stable(s));
        }
        while let Some(id) = self.work.pop_front() {
            self.emit(id)?;
        }
        if self.cfg.defensive_stable_handlers {
            self.emit_defensive()?;
        }
        let fsm = self.build_fsm();
        Ok((fsm, self.reinterpretations, self.warnings))
    }

    fn intern(&mut self, key: Key) -> FsmStateId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let mut name = self.name_of(&key);
        while let Some(existing) = self.names.get(&name) {
            if *existing != key {
                name.push('+');
            } else {
                break;
            }
        }
        let id = FsmStateId::from_usize(self.states.len());
        self.names.insert(name.clone(), key.clone());
        self.index.insert(key.clone(), id);
        self.states.push((key, name));
        self.work.push_back(id);
        id
    }

    fn sname(&self, s: StableId) -> &str {
        &self.ssp.cache.state(s).name
    }

    fn name_of(&self, key: &Key) -> String {
        match key {
            Key::Stable(s) => self.sname(*s).to_string(),
            Key::Wait { txn, w, chain } => {
                let t = &self.an.txns[*txn];
                let tag = &t.chain.nodes[*w].tag;
                let mut n = format!("{}{}_{}", self.sname(t.from), self.sname(t.finals[0]), tag);
                if !chain.is_empty() {
                    n.push('_');
                    for e in chain {
                        n.push_str(self.sname(e.logical_to));
                    }
                }
                n
            }
            Key::Zombie { txn, w, logical } => {
                let t = &self.an.txns[*txn];
                let tag = &t.chain.nodes[*w].tag;
                format!("{}{}_{}", self.sname(*logical), self.sname(*logical), tag)
            }
        }
    }

    fn emit(&mut self, id: FsmStateId) -> Result<(), GenError> {
        let key = self.states[id.as_usize()].0.clone();
        match key {
            Key::Stable(s) => self.emit_stable(id, s),
            Key::Wait { txn, w, chain } => self.emit_wait(id, txn, w, &chain),
            Key::Zombie { txn, w, logical } => self.emit_zombie(id, txn, w, logical),
        }
    }

    // ----- stable states --------------------------------------------------

    fn emit_stable(&mut self, id: FsmStateId, s: StableId) -> Result<(), GenError> {
        // Accesses: hits, silent transitions, and transaction issues,
        // straight from the SSP.
        for access in Access::ALL {
            let entries = self.ssp.cache.entries_for(s, Trigger::Access(access));
            let Some(e) = entries.first() else { continue };
            // SI/SD provenance survives generation so memory-model tooling
            // (the litmus harness) can find the spontaneous sync arcs in
            // the concurrent FSM.
            let note = match e.note {
                EntryNote::Demand => ArcNote::Ssp,
                EntryNote::SelfInvalidate => ArcNote::SelfInv,
                EntryNote::SelfDowngrade => ArcNote::SelfDown,
            };
            match &e.effect {
                Effect::Local { actions, next } => {
                    let to = next.map_or(id, |n| self.intern(Key::Stable(n)));
                    self.push(id, Event::Access(access), vec![], actions.clone(), to, note);
                }
                Effect::Issue { request, .. } => {
                    let txn = self.an.txn_by_trigger[&(s, access)];
                    let to = self.intern(Key::Wait { txn, w: 0, chain: vec![] });
                    self.push(id, Event::Access(access), vec![], request.clone(), to, note);
                }
            }
        }
        // Forwards arriving in this stable state, straight from the SSP.
        for &f in &self.an.fwds_at[s.as_usize()].clone() {
            let (actions, next) = self.reaction(s, f)?;
            let to = next.map_or(id, |n| self.intern(Key::Stable(n)));
            self.push(id, Event::Msg(f), vec![], actions, to, ArcNote::Ssp);
        }
        Ok(())
    }

    /// The (single, unguarded) SSP reaction to forward `f` in stable state
    /// `s`.
    fn reaction(&self, s: StableId, f: MsgId) -> Result<(Vec<Action>, Option<StableId>), GenError> {
        let entries = self.ssp.cache.entries_for(s, Trigger::Msg(f));
        let e = entries.first().ok_or_else(|| {
            GenError::Internal(format!(
                "no reaction for `{}` at {}",
                self.ssp.msg(f).name,
                self.sname(s)
            ))
        })?;
        match &e.effect {
            Effect::Local { actions, next } => Ok((actions.clone(), *next)),
            Effect::Issue { .. } => Err(GenError::Unsupported(format!(
                "forward `{}` triggers a transaction at {}; cache forwards must react locally",
                self.ssp.msg(f).name,
                self.sname(s)
            ))),
        }
    }

    /// Defensive stale-forward handlers (design note N6).
    ///
    /// A forwarded request can arrive after the epoch it belongs to has
    /// ended: a racing replacement's Put is acknowledged on the response
    /// network while the forward is still in flight on the forward network.
    /// Any state with no arc for such a forward can only be reached after
    /// the forward's epoch ended, so the correct reaction is to send the
    /// acknowledgment the forward demands (unblocking its requestor) and
    /// stay. Only forwards whose reaction is data-free qualify; data-bearing
    /// forwards (owner forwards) are provably consumed by the owner states
    /// that hold the data.
    fn emit_defensive(&mut self) -> Result<(), GenError> {
        for (&f, assoc_states) in &self.an.fwd_assoc.clone() {
            // All associated states must demand the same data-free response
            // for a context-free defensive handler to exist.
            let mut acks: Option<Vec<Action>> = None;
            let mut ok = true;
            for &assoc in assoc_states {
                let (actions, _next) = self.reaction(assoc, f)?;
                if actions.iter().any(|a| matches!(a, Action::Send(sp) if sp.data.is_some())) {
                    ok = false;
                    break;
                }
                let these: Vec<Action> =
                    actions.iter().filter(|a| matches!(a, Action::Send(_))).cloned().collect();
                if let Some(prev) = &acks {
                    if *prev != these {
                        ok = false;
                        break;
                    }
                } else {
                    acks = Some(these);
                }
            }
            let Some(acks) = acks else { continue };
            if !ok {
                continue;
            }
            for i in 0..self.states.len() {
                let id = FsmStateId::from_usize(i);
                let has_arc = self.arcs.iter().any(|a| a.from == id && a.event == Event::Msg(f));
                if !has_arc {
                    self.push(id, Event::Msg(f), vec![], acks.clone(), id, ArcNote::Defensive);
                }
            }
        }
        Ok(())
    }

    // ----- transient states ------------------------------------------------

    fn emit_wait(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        chain: &[Elem],
    ) -> Result<(), GenError> {
        self.emit_wait_accesses(id, txn, w, chain);
        self.emit_wait_own_arcs(id, txn, w, chain);
        self.emit_wait_forwards(id, txn, w, chain)?;
        Ok(())
    }

    /// Step 4: access permissions in transient states.
    fn emit_wait_accesses(&mut self, id: FsmStateId, txn: usize, w: usize, chain: &[Elem]) {
        let t = &self.an.txns[txn];
        for access in Access::ALL {
            let allowed = match (access, self.cfg.transient_access) {
                (Access::Replacement, _) => false, // never evict mid-transaction
                (_, TransientAccessPolicy::Conservative) => false,
                (_, TransientAccessPolicy::Paper) => {
                    let perm_ok = |s: StableId| self.ssp.cache.state(s).perm.allows(access);
                    perm_ok(t.from)
                        && t.finals.iter().all(|&f| perm_ok(f))
                        && chain.iter().all(|e| perm_ok(e.logical_to))
                        && (chain.is_empty() || t.retains_data[w])
                }
            };
            if allowed {
                self.push(
                    id,
                    Event::Access(access),
                    vec![],
                    vec![Action::PerformAccess],
                    id,
                    ArcNote::Step2,
                );
            } else {
                self.stall(id, Event::Access(access), ArcNote::Step2);
            }
        }
    }

    /// Step 2: the transaction's own response arcs, extended with deferred
    /// responses when a chain is present.
    fn emit_wait_own_arcs(&mut self, id: FsmStateId, txn: usize, w: usize, chain: &[Elem]) {
        let node = self.an.txns[txn].chain.nodes[w].clone();
        for arc in &node.arcs {
            match arc.to {
                WaitTo::Wait(w2) => {
                    let to = self.intern(Key::Wait { txn, w: w2, chain: chain.to_vec() });
                    self.push(
                        id,
                        Event::Msg(arc.msg),
                        arc.guards.clone(),
                        arc.actions.clone(),
                        to,
                        ArcNote::Step2,
                    );
                }
                WaitTo::Done(s) => {
                    if chain.is_empty() {
                        let to = self.intern(Key::Stable(s));
                        self.push(
                            id,
                            Event::Msg(arc.msg),
                            arc.guards.clone(),
                            arc.actions.clone(),
                            to,
                            ArcNote::Step2,
                        );
                    } else {
                        // Complete the own transaction (which may perform
                        // the pending access — for a chain ending without
                        // permission this is the single access after
                        // invalidation, the livelock fix of §VI-B), then
                        // send every deferred response in chain order, then
                        // land in the chain's final state.
                        let final_state = chain.last().expect("chain non-empty").logical_to;
                        let mut actions = arc.actions.clone();
                        for e in chain {
                            actions.extend(e.deferred.iter().cloned());
                        }
                        let to = self.intern(Key::Stable(final_state));
                        self.push(
                            id,
                            Event::Msg(arc.msg),
                            arc.guards.clone(),
                            actions,
                            to,
                            ArcNote::Completion,
                        );
                    }
                }
            }
        }
    }

    /// Step 3: forwards racing with the own transaction.
    fn emit_wait_forwards(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        chain: &[Elem],
    ) -> Result<(), GenError> {
        let t = self.an.txns[txn].clone();
        if chain.is_empty() {
            // Case 1 candidates: forwards associated with the initial stable
            // state can only arrive while the directory may not yet have
            // serialized the own request — that is, before any response has
            // moved the transaction past its entry await point.
            if w == 0 {
                for &f in self.an.fwds_at[t.from.as_usize()].clone().iter() {
                    self.case1(id, txn, f)?;
                }
            }
            // Case 2 candidates: forwards associated with any final state.
            // A forward associated with *both* the initial and a final state
            // would make the serialization order undecidable at the cache —
            // preprocessing must have renamed it (§V-A).
            let mut seen = Vec::new();
            for &fin in &t.finals {
                for &f in self.an.fwds_at[fin.as_usize()].clone().iter() {
                    if seen.contains(&f) {
                        continue;
                    }
                    let assoc = &self.an.fwd_assoc[&f];
                    if assoc.contains(&t.from) && w == 0 {
                        return Err(GenError::Ambiguous(format!(
                            "forward `{}` can arrive in both the initial state {} and a                              final state {} of the same transaction; it needs renaming",
                            self.ssp.msg(f).name,
                            self.sname(t.from),
                            self.sname(fin)
                        )));
                    }
                    seen.push(f);
                    self.case2(id, txn, w, chain, f, fin)?;
                }
            }
        } else {
            // With a non-empty chain the own request is known to be
            // serialized and every earlier racing transaction has been
            // observed; only forwards associated with the chain's current
            // logical state can arrive.
            let logical = chain.last().expect("non-empty").logical_to;
            for &f in self.an.fwds_at[logical.as_usize()].clone().iter() {
                self.case2(id, txn, w, chain, f, logical)?;
            }
        }
        // Late Case 1: a forward associated with the *initial* state is
        // ordered earlier at the directory even when it arrives after the
        // serialization proof — responses travel a different virtual
        // network and can overtake it (MOSI: AckCount overtakes
        // O_Fwd_GetS). Respond immediately and continue; possible only
        // while the reaction leaves the initial state's view unchanged and
        // the block still holds the initial data.
        if w > 0 || !chain.is_empty() {
            let t2 = self.an.txns[txn].clone();
            for &f in self.an.fwds_at[t2.from.as_usize()].clone().iter() {
                let covered = self.arcs.iter().any(|a| a.from == id && a.event == Event::Msg(f));
                if covered {
                    continue;
                }
                let (actions, next) = self.reaction(t2.from, f)?;
                if next.unwrap_or(t2.from) != t2.from {
                    continue; // epoch-ending; unreachable here, let MC judge
                }
                let needs_data =
                    actions.iter().any(|a| matches!(a, Action::Send(sp) if sp.data.is_some()));
                if needs_data && !t2.retains_data[w] {
                    self.warnings.push(format!(
                        "late forward `{}` at {} would need data the block no longer holds",
                        self.ssp.msg(f).name,
                        self.states[id.as_usize()].1
                    ));
                    continue;
                }
                self.push(id, Event::Msg(f), vec![], actions, id, ArcNote::Case1);
            }
        }
        Ok(())
    }

    /// Case 1 (§V-D1): the other transaction was ordered earlier at the
    /// directory. Respond immediately (stalling would deadlock), then
    /// logically restart the own transaction from the reaction's target
    /// state.
    fn case1(&mut self, id: FsmStateId, txn: usize, f: MsgId) -> Result<(), GenError> {
        let t = self.an.txns[txn].clone();
        let (mut resp, next) = self.reaction(t.from, f)?;
        let s_l = next.unwrap_or(t.from);
        let restart = self.ssp.cache.entries_for(s_l, Trigger::Access(t.access));
        let to = match restart.first().map(|e| &e.effect) {
            None => {
                // The restarted access is moot (a replacement from a state
                // with no replacement behaviour): drain the outstanding
                // response of the already-issued request. The directory's
                // stale-Put rule guarantees that response arrives.
                self.intern(Key::Zombie { txn, w: 0, logical: s_l })
            }
            Some(Effect::Issue { .. }) => {
                let txn2 = self.an.txn_by_trigger[&(s_l, t.access)];
                let t2 = &self.an.txns[txn2];
                if t2.request_msg != t.request_msg {
                    // The same access issues a different request from the
                    // restarted state (Upgrade vs GetM): the earlier request
                    // cannot be rescinded, so the directory must reinterpret
                    // it (§V-D1). Recorded here; synthesized in dirgen.
                    let orig = t.request_msg.map(|m| self.ssp.msg(m).name.clone());
                    let new = t2.request_msg.map(|m| self.ssp.msg(m).name.clone());
                    if let (Some(original), Some(treated_as)) = (orig, new) {
                        let rec = Reinterpretation {
                            original,
                            treated_as,
                            dir_state: String::new(), // filled in by dirgen
                        };
                        if !self.reinterpretations.contains(&rec) {
                            self.reinterpretations.push(rec);
                        }
                    }
                }
                // Do NOT re-execute the request actions: the original
                // request is still in flight and the acknowledgment
                // counters must survive the restart.
                self.intern(Key::Wait { txn: txn2, w: 0, chain: vec![] })
            }
            Some(Effect::Local { actions, next }) => {
                // The restarted access is satisfiable locally (a silent
                // eviction from the reaction's target state, TSO-CC style):
                // perform it now and drain the outstanding response of the
                // already-issued request.
                let logical = next.unwrap_or(s_l);
                resp.extend(actions.iter().cloned());
                self.intern(Key::Zombie { txn, w: 0, logical })
            }
        };
        self.push(id, Event::Msg(f), vec![], resp, to, ArcNote::Case1);
        Ok(())
    }

    /// Case 2 (§V-D2): the other transaction was ordered later. Stall, or
    /// transition immediately with (possibly deferred) responses.
    fn case2(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        chain: &[Elem],
        f: MsgId,
        logical_from: StableId,
    ) -> Result<(), GenError> {
        let (actions, next) = self.reaction(logical_from, f)?;
        if self.cfg.concurrency == Concurrency::Stalling {
            let dataless =
                !actions.iter().any(|a| matches!(a, Action::Send(sp) if sp.data.is_some()));
            // On an ordered network every Case 2 stall is safe. Without
            // ordering, a *stale* forward (one serialized before the own
            // request, whose epoch-ending acknowledgment overtook it) can
            // appear here, and stalling its data-free acknowledgment can
            // close a dependency cycle (the supplier of the own response
            // waits for exactly that acknowledgment). Process data-free
            // forwards; stall only data-bearing ones (harmless when
            // channels do not block).
            if self.ssp.network_ordered || !dataless {
                self.stall(id, Event::Msg(f), ArcNote::Case2);
                return Ok(());
            }
        }
        let logical_to = next.unwrap_or(logical_from);

        let slot = chain.iter().filter(|e| !e.deferred.is_empty()).count();
        let mut immediate = Vec::new();
        let mut deferred = Vec::new();
        for a in actions {
            match a {
                Action::Send(mut sp) if sp.data.is_some() && self.defers_data(txn, w) => {
                    if sp.dst == Dst::Req {
                        sp.dst = Dst::ChainReq(slot);
                    }
                    if sp.req == ReqField::FromMsg {
                        sp.req = ReqField::Chain(slot);
                    }
                    if matches!(
                        sp.ack_count,
                        Some(AckSrc::SharersExceptReqCount) | Some(AckSrc::FromMsg)
                    ) {
                        // Both the sharer count and a piggybacked count are
                        // serialization-time values; the slot captured them
                        // when the request was processed.
                        sp.ack_count = Some(AckSrc::Captured);
                    }
                    if deferred.is_empty() {
                        // Capture the forward's requestor in the deferred
                        // send's original position.
                        immediate.push(Action::RecordChainReq);
                    }
                    deferred.push(Action::Send(sp));
                }
                other => immediate.push(other),
            }
        }

        if logical_to == logical_from && deferred.is_empty() {
            // No logical movement and nothing owed: a pure self-loop
            // (O + O_Fwd_GetS in MOSI). Keeps the chain — and the state
            // space — finite.
            self.push(id, Event::Msg(f), vec![], immediate, id, ArcNote::Case2);
            return Ok(());
        }
        if chain.len() >= self.cfg.pending_limit {
            // Pending transaction limit L reached (§V-D2): stall.
            self.stall(id, Event::Msg(f), ArcNote::Case2);
            return Ok(());
        }
        let mut new_chain = chain.to_vec();
        new_chain.push(Elem { fwd: f, logical_to, deferred });
        let to = self.intern(Key::Wait { txn, w, chain: new_chain });
        self.push(id, Event::Msg(f), vec![], immediate, to, ArcNote::Case2);
        Ok(())
    }

    /// Whether a data-bearing response processed at await point `w` must be
    /// deferred until the own transaction completes.
    fn defers_data(&self, txn: usize, w: usize) -> bool {
        match self.cfg.response_policy {
            // Deferring every data response preserves SWMR in physical time.
            crate::config::ResponsePolicy::DeferData => true,
            // Immediate mode sends data as soon as it is present — but a
            // pending *store* must still complete first or readers would
            // observe pre-store data from a logically earlier epoch.
            crate::config::ResponsePolicy::Immediate => {
                let t = &self.an.txns[txn];
                t.access == Access::Store || !t.data_present[w]
            }
        }
    }

    // ----- zombie states ---------------------------------------------------

    fn emit_zombie(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        logical: StableId,
    ) -> Result<(), GenError> {
        for access in Access::ALL {
            self.stall(id, Event::Access(access), ArcNote::Case1);
        }
        // Drain the original transaction's responses; the pending access is
        // completed trivially (the replacement's work was done by the
        // earlier-ordered transaction).
        let node = self.an.txns[txn].chain.nodes[w].clone();
        for arc in &node.arcs {
            let keep: Vec<Action> = arc
                .actions
                .iter()
                .filter(|a| matches!(a, Action::PerformAccess))
                .cloned()
                .collect();
            match arc.to {
                WaitTo::Wait(w2) => {
                    let to = self.intern(Key::Zombie { txn, w: w2, logical });
                    self.push(
                        id,
                        Event::Msg(arc.msg),
                        arc.guards.clone(),
                        keep,
                        to,
                        ArcNote::Case1,
                    );
                }
                WaitTo::Done(_) => {
                    let to = self.intern(Key::Stable(logical));
                    self.push(
                        id,
                        Event::Msg(arc.msg),
                        arc.guards.clone(),
                        keep,
                        to,
                        ArcNote::Case1,
                    );
                }
            }
        }
        // Forwards can still arrive for the logical state.
        for &f in self.an.fwds_at[logical.as_usize()].clone().iter() {
            let (actions, next) = self.reaction(logical, f)?;
            let needs_data =
                actions.iter().any(|a| matches!(a, Action::Send(sp) if sp.data.is_some()));
            if needs_data && !self.ssp.cache.state(logical).data_valid {
                return Err(GenError::Unsupported(format!(
                    "forward `{}` at drained state {} needs data the cache no longer holds",
                    self.ssp.msg(f).name,
                    self.sname(logical)
                )));
            }
            let logical2 = next.unwrap_or(logical);
            let to = if logical2 == logical {
                id
            } else {
                self.intern(Key::Zombie { txn, w, logical: logical2 })
            };
            self.push(id, Event::Msg(f), vec![], actions, to, ArcNote::Case2);
        }
        Ok(())
    }

    // ----- plumbing ---------------------------------------------------------

    fn push(
        &mut self,
        from: FsmStateId,
        event: Event,
        guards: Vec<protogen_spec::Guard>,
        actions: Vec<Action>,
        to: FsmStateId,
        note: ArcNote,
    ) {
        self.arcs.push(Arc { from, event, guards, actions, to, kind: ArcKind::Normal, note });
    }

    fn stall(&mut self, from: FsmStateId, event: Event, note: ArcNote) {
        self.arcs.push(Arc {
            from,
            event,
            guards: vec![],
            actions: vec![],
            to: from,
            kind: ArcKind::Stall,
            note,
        });
    }

    fn build_fsm(&self) -> Fsm {
        let mut states = Vec::with_capacity(self.states.len());
        for (i, (key, name)) in self.states.iter().enumerate() {
            let id = FsmStateId::from_usize(i);
            let (kind, state_sets) = match key {
                Key::Stable(s) => (FsmStateKind::Stable(*s), vec![*s]),
                Key::Wait { txn, w, chain } => {
                    let t = &self.an.txns[*txn];
                    let links = chain
                        .iter()
                        .map(|e| ChainLink {
                            forward: e.fwd,
                            logical_to: e.logical_to,
                            has_deferred_response: !e.deferred.is_empty(),
                        })
                        .collect();
                    let meta = TransientMeta {
                        own_from: t.from,
                        own_to: t.finals[0],
                        wait_tag: t.chain.nodes[*w].tag.clone(),
                        chain: links,
                    };
                    let sets = if chain.is_empty() {
                        let mut v = if *w == 0 { vec![t.from] } else { vec![] };
                        v.extend(t.finals.iter().copied());
                        v.sort();
                        v.dedup();
                        v
                    } else {
                        vec![chain.last().expect("non-empty").logical_to]
                    };
                    (FsmStateKind::Transient(meta), sets)
                }
                Key::Zombie { txn, w, logical } => {
                    let t = &self.an.txns[*txn];
                    let meta = TransientMeta {
                        own_from: *logical,
                        own_to: *logical,
                        wait_tag: t.chain.nodes[*w].tag.clone(),
                        chain: vec![],
                    };
                    (FsmStateKind::Transient(meta), vec![*logical])
                }
            };
            // Step 4 output: the permission a state grants, derived from its
            // generated access arcs.
            let perm = match key {
                Key::Stable(s) => self.ssp.cache.state(*s).perm,
                _ => {
                    let hit = |a: Access| {
                        self.arcs.iter().any(|x| {
                            x.from == id && x.event == Event::Access(a) && x.kind == ArcKind::Normal
                        })
                    };
                    if hit(Access::Store) {
                        Perm::ReadWrite
                    } else if hit(Access::Load) {
                        Perm::Read
                    } else {
                        Perm::None
                    }
                }
            };
            let data_valid = match key {
                Key::Stable(s) => self.ssp.cache.state(*s).data_valid,
                _ => false,
            };
            states.push(FsmState {
                name: name.clone(),
                kind,
                state_sets,
                perm,
                data_valid,
                merged_names: vec![],
            });
        }
        Fsm {
            protocol: self.ssp.name.clone(),
            machine: MachineKind::Cache,
            messages: self.ssp.messages.clone(),
            states,
            arcs: self.arcs.clone(),
        }
    }
}
