//! Preprocessing: make every forwarded request arrive at exactly one stable
//! state (§V-A, Tables III and IV of the paper).

use crate::error::GenError;
use crate::report::Rename;
use protogen_spec::{Action, Effect, MsgClass, MsgDecl, MsgId, Ssp, StableId, Trigger};
use std::collections::BTreeMap;

/// Ensures the invariant that a given forwarded request can arrive at
/// exactly one cache stable state.
///
/// When an input SSP lets the same forward arrive at two stable states
/// (MOSI's `Fwd_GetS` at both M and O), the forward keeps its name for the
/// highest-permission state and is cloned under a new name
/// (`O_Fwd_GetS`) for each other state. Directory send sites are rewritten
/// according to the directory state they send from: a directory in state O
/// believes the owner's block is in cache state O, so its sends become
/// `O_Fwd_GetS`. Directory states are paired with cache states by name.
///
/// Returns the rewritten SSP and the renames performed.
///
/// # Errors
///
/// Returns [`GenError::Ambiguous`] when a directory send site cannot be
/// paired with a cache state by name.
pub fn preprocess(ssp: &Ssp) -> Result<(Ssp, Vec<Rename>), GenError> {
    let mut out = ssp.clone();
    let mut renames = Vec::new();

    for m in ssp.msg_ids() {
        if ssp.msg(m).class != MsgClass::Forward {
            continue;
        }
        let mut arrivals: Vec<StableId> =
            ssp.cache.state_ids().filter(|&s| ssp.cache.handles(s, Trigger::Msg(m))).collect();
        if arrivals.len() <= 1 {
            continue;
        }
        // Renaming requires the directory to *know* which arrival state the
        // target cache is in when it sends the forward. We pair directory
        // send sites with cache states by name; when any send site has no
        // same-named cache state (MESI's "EM" directory state cannot tell E
        // from M after silent upgrades), the forward keeps one name and the
        // generator resolves the association per context instead.
        let mappable =
            ssp.directory.entries.iter().filter(|e| entry_sends(&e.effect, m)).all(|e| {
                let dir_name = &ssp.directory.states[e.state.as_usize()].name;
                ssp.cache.state_by_name(dir_name).is_some()
            });
        if !mappable {
            continue;
        }
        // Highest permission keeps the original name (the paper keeps
        // `Fwd_GetS` for M and renames O's copy).
        arrivals.sort_by_key(|&s| {
            let d = ssp.cache.state(s);
            (std::cmp::Reverse(d.perm), s.as_usize())
        });
        let mut clone_for: BTreeMap<StableId, MsgId> = BTreeMap::new();
        for &state in arrivals.iter().skip(1) {
            let orig = ssp.msg(m);
            let new_name = format!("{}_{}", ssp.cache.state(state).name, orig.name);
            let new_id = MsgId::from_usize(out.messages.len());
            out.messages.push(MsgDecl { name: new_name.clone(), ..orig.clone() });
            clone_for.insert(state, new_id);
            renames.push(Rename {
                original: orig.name.clone(),
                renamed: new_name,
                state: ssp.cache.state(state).name.clone(),
            });
        }

        // Rewrite the cache reactions at the renamed states.
        for e in &mut out.cache.entries {
            if e.trigger == Trigger::Msg(m) {
                if let Some(&new_id) = clone_for.get(&e.state) {
                    e.trigger = Trigger::Msg(new_id);
                }
            }
        }

        // Rewrite directory send sites: the believed cache state is the
        // cache state with the same name as the directory state the entry
        // fires in.
        for e in &mut out.directory.entries {
            let dir_name = &ssp.directory.states[e.state.as_usize()].name;
            let believed = ssp.cache.state_by_name(dir_name);
            let sends_m = entry_sends(&e.effect, m);
            if !sends_m {
                continue;
            }
            let Some(cstate) = believed else {
                return Err(GenError::Ambiguous(format!(
                    "directory state `{dir_name}` sends forward `{}` but has no \
                     same-named cache state to pair with for renaming",
                    ssp.msg(m).name
                )));
            };
            if let Some(&new_id) = clone_for.get(&cstate) {
                rewrite_entry(&mut e.effect, m, new_id);
            }
        }
    }

    Ok((out, renames))
}

fn entry_sends(effect: &Effect, m: MsgId) -> bool {
    let in_actions =
        |acts: &[Action]| acts.iter().any(|a| matches!(a, Action::Send(s) if s.msg == m));
    match effect {
        Effect::Local { actions, .. } => in_actions(actions),
        Effect::Issue { request, chain } => {
            in_actions(request)
                || chain.nodes.iter().flat_map(|n| n.arcs.iter()).any(|a| in_actions(&a.actions))
        }
    }
}

fn rewrite_entry(effect: &mut Effect, from: MsgId, to: MsgId) {
    let rewrite = |acts: &mut Vec<Action>| {
        for a in acts {
            if let Action::Send(s) = a {
                if s.msg == from {
                    s.msg = to;
                }
            }
        }
    };
    match effect {
        Effect::Local { actions, .. } => rewrite(actions),
        Effect::Issue { request, chain } => {
            rewrite(request);
            for node in &mut chain.nodes {
                for arc in &mut node.arcs {
                    rewrite(&mut arc.actions);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{Access, MsgClass, Perm, SspBuilder};

    /// A MOSI fragment reproducing Tables III/IV: Fwd_GetS arrives at both
    /// M and O.
    fn mosi_fragment() -> Ssp {
        let mut b = SspBuilder::new("mosi-fragment");
        let get_s = b.message("GetS", MsgClass::Request);
        let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
        let data = b.data_message("Data", MsgClass::Response);
        let i = b.cache_state("I", Perm::None);
        let _s = b.cache_state("S", Perm::Read);
        let o = b.cache_state_full("O", Perm::Read, true);
        let m = b.cache_state("M", Perm::ReadWrite);
        let di = b.dir_state("I");
        let _ds = b.dir_state("S");
        let do_ = b.dir_state("O");
        let dm = b.dir_state("M");
        // M + Fwd_GetS: send data, downgrade to O.
        let d = b.send_data_to_req(data);
        b.cache_react(m, fwd_get_s, vec![d], Some(o));
        // O + Fwd_GetS: send data, stay O.
        let d = b.send_data_to_req(data);
        b.cache_react(o, fwd_get_s, vec![d], None);
        // Cache I + load so the protocol has at least one transaction.
        let req = b.send_req(get_s);
        let chain = b.await_data(data, i);
        b.cache_issue(i, Access::Load, req, chain);
        // Directory: M + GetS and O + GetS both forward.
        let f = b.fwd_to_owner(fwd_get_s);
        b.dir_react(dm, get_s, vec![f, Action::AddReqToSharers], Some(do_));
        let f = b.fwd_to_owner(fwd_get_s);
        b.dir_react(do_, get_s, vec![f, Action::AddReqToSharers], None);
        let d = b.send_data_to_req(data);
        b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], None);
        b.build().expect("fragment is valid")
    }

    #[test]
    fn renames_forward_at_lower_permission_state() {
        let ssp = mosi_fragment();
        let (out, renames) = preprocess(&ssp).unwrap();
        // Exactly one rename: O's copy of Fwd_GetS.
        assert_eq!(renames.len(), 1);
        assert_eq!(renames[0].original, "Fwd_GetS");
        assert_eq!(renames[0].renamed, "O_Fwd_GetS");
        assert_eq!(renames[0].state, "O");
        // The new message exists and is a forward.
        let new_id = out.msg_by_name("O_Fwd_GetS").unwrap();
        assert_eq!(out.msg(new_id).class, MsgClass::Forward);
        // The cache reaction at O now listens for the new name.
        let o = out.cache.state_by_name("O").unwrap();
        assert!(out.cache.handles(o, Trigger::Msg(new_id)));
        let old_id = out.msg_by_name("Fwd_GetS").unwrap();
        assert!(!out.cache.handles(o, Trigger::Msg(old_id)));
        // M still listens for the original.
        let m = out.cache.state_by_name("M").unwrap();
        assert!(out.cache.handles(m, Trigger::Msg(old_id)));
    }

    #[test]
    fn rewrites_directory_send_site_by_state_name() {
        let ssp = mosi_fragment();
        let (out, _) = preprocess(&ssp).unwrap();
        let new_id = out.msg_by_name("O_Fwd_GetS").unwrap();
        let old_id = out.msg_by_name("Fwd_GetS").unwrap();
        let do_ = out.directory.state_by_name("O").unwrap();
        let dm = out.directory.state_by_name("M").unwrap();
        // Directory O sends the renamed forward; directory M the original.
        let sends = |state, id| {
            out.directory
                .entries
                .iter()
                .filter(|e| e.state == state)
                .any(|e| entry_sends(&e.effect, id))
        };
        assert!(sends(do_, new_id));
        assert!(!sends(do_, old_id));
        assert!(sends(dm, old_id));
        assert!(!sends(dm, new_id));
    }

    #[test]
    fn unique_forwards_untouched() {
        let ssp = mosi_fragment();
        let (once, _) = preprocess(&ssp).unwrap();
        let (twice, renames) = preprocess(&once).unwrap();
        assert!(renames.is_empty(), "preprocessing is idempotent");
        assert_eq!(once, twice);
    }
}
