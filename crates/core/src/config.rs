//! Generation configuration (the ProtoGen input parameters of §IV-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether generated controllers stall on racing transactions or process
/// them with additional transient states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Concurrency {
    /// Stall on potentially racing requests (at the cost of performance,
    /// while still preventing deadlocks). Forwards belonging to transactions
    /// ordered *earlier* at the directory are still processed immediately —
    /// stalling those would deadlock (§V-D1).
    Stalling,
    /// Avoid stalling whenever possible at the expense of more transient
    /// states (§IV-A).
    #[default]
    NonStalling,
}

impl fmt::Display for Concurrency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Concurrency::Stalling => f.write_str("stalling"),
            Concurrency::NonStalling => f.write_str("non-stalling"),
        }
    }
}

/// How responses owed to later-ordered transactions are sent (§V-D2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ResponsePolicy {
    /// "Immediate Transition, Deferred Responses": data-bearing responses
    /// are deferred until the own transaction completes, preserving SWMR in
    /// physical time. Data-free acknowledgments are sent immediately.
    #[default]
    DeferData,
    /// "Immediate Transition and Responses": responses are sent as soon as
    /// their content is available. Preserves per-location sequential
    /// consistency but not physical-time SWMR.
    Immediate,
}

impl fmt::Display for ResponsePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponsePolicy::DeferData => f.write_str("deferred-data"),
            ResponsePolicy::Immediate => f.write_str("immediate"),
        }
    }
}

/// Which accesses are permitted in transient states (Step 4, §V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TransientAccessPolicy {
    /// The paper's rule: an access is permitted in a transient state when
    /// the transaction's initial stable state, every final stable state, and
    /// every post-forward logical state of the deferral chain grant it — and,
    /// for states with a non-empty chain, only while the block still holds
    /// the data copy it had in the initial stable state. This reproduces
    /// every access cell of Table VI.
    #[default]
    Paper,
    /// Stall every access in every transient state. More merges, more
    /// stalling, trivially safe.
    Conservative,
}

impl fmt::Display for TransientAccessPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientAccessPolicy::Paper => f.write_str("paper"),
            TransientAccessPolicy::Conservative => f.write_str("conservative"),
        }
    }
}

/// Full generation configuration.
///
/// The defaults generate the paper's headline configuration: non-stalling
/// controllers with deferred data responses, the Step-4 access rule, a
/// pending-transaction limit of 3, and primer-style stale-Put cleanup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Stalling or non-stalling controllers.
    pub concurrency: Concurrency,
    /// Deferred or immediate responses for later-ordered transactions.
    pub response_policy: ResponsePolicy,
    /// Access permissions in transient states.
    pub transient_access: TransientAccessPolicy,
    /// The pending transaction limit L (§V-D2): the number of later-ordered
    /// transactions a controller observes before it stalls. Bounds the
    /// transient auxiliary state.
    pub pending_limit: usize,
    /// Remove the requestor from the sharer list when acknowledging a stale
    /// Put (design note N6; the paper calls this optional, the primer does
    /// it).
    pub dir_stale_put_cleanup: bool,
    /// Generate defensive stale-forward handlers (`I + Inv → Inv-Ack` and
    /// friends): a dataless-response forward whose epoch ended (its target
    /// raced a replacement past it) is acknowledged wherever no regular
    /// handler exists. Required for deadlock freedom on networks where
    /// responses can overtake forwards; on (default) keeps the paper's
    /// protocols complete.
    pub defensive_stable_handlers: bool,
    /// Merge behaviourally identical transient states after generation
    /// (the IMAS = SMAS merges of §VI-B). On by default; turning it off
    /// must never change protocol behaviour — the minimize-equivalence
    /// property test holds the generator to that.
    pub minimize: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            concurrency: Concurrency::NonStalling,
            response_policy: ResponsePolicy::DeferData,
            transient_access: TransientAccessPolicy::Paper,
            pending_limit: 3,
            dir_stale_put_cleanup: true,
            defensive_stable_handlers: true,
            minimize: true,
        }
    }
}

impl GenConfig {
    /// The paper's §VI-A configuration: stalling controllers.
    pub fn stalling() -> Self {
        GenConfig { concurrency: Concurrency::Stalling, ..GenConfig::default() }
    }

    /// The paper's §VI-B configuration: non-stalling controllers (this is
    /// also the default).
    pub fn non_stalling() -> Self {
        GenConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_non_stalling_defer_data() {
        let c = GenConfig::default();
        assert_eq!(c.concurrency, Concurrency::NonStalling);
        assert_eq!(c.response_policy, ResponsePolicy::DeferData);
        assert_eq!(c.transient_access, TransientAccessPolicy::Paper);
        assert_eq!(c.pending_limit, 3);
        assert!(c.dir_stale_put_cleanup);
        assert!(c.defensive_stable_handlers);
        assert!(c.minimize);
    }

    #[test]
    fn stalling_preset() {
        assert_eq!(GenConfig::stalling().concurrency, Concurrency::Stalling);
        assert_eq!(GenConfig::non_stalling().concurrency, Concurrency::NonStalling);
    }
}
