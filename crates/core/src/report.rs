//! Generation report: everything the paper's evaluation section talks about.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A forwarded-request rename performed during preprocessing (Tables III/IV
/// of the paper: `Fwd_GetS` arriving at both M and O becomes `Fwd_GetS` at M
/// and `O_Fwd_GetS` at O).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rename {
    /// Original message name.
    pub original: String,
    /// New message name.
    pub renamed: String,
    /// The cache stable state the renamed message is now associated with.
    pub state: String,
}

/// A request reinterpretation requirement discovered during generation
/// (§V-D1: the directory reinterprets an Upgrade that arrives for a block
/// whose requestor is no longer a sharer as a GetM).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reinterpretation {
    /// The request as sent.
    pub original: String,
    /// The request the directory treats it as.
    pub treated_as: String,
    /// The directory state where the reinterpretation applies.
    pub dir_state: String,
}

/// A state merge performed by minimization (§VI-B: "ProtoGen was able to
/// merge some states that were kept separate in the primer like
/// IMAS = SMAS").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Merge {
    /// The surviving state name.
    pub kept: String,
    /// The states merged into it.
    pub merged: Vec<String>,
}

/// Per-controller statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ControllerStats {
    /// Stable states (from the SSP).
    pub stable_states: usize,
    /// Generated transient states.
    pub transient_states: usize,
    /// Non-stall transitions.
    pub transitions: usize,
    /// Stall entries.
    pub stalls: usize,
}

impl ControllerStats {
    /// Total states.
    pub fn states(&self) -> usize {
        self.stable_states + self.transient_states
    }
}

/// The full report accompanying a generated protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GenReport {
    /// Protocol name.
    pub protocol: String,
    /// Renames performed by preprocessing.
    pub renames: Vec<Rename>,
    /// Reinterpretation rules synthesized for the directory.
    pub reinterpretations: Vec<Reinterpretation>,
    /// Merges in the cache controller.
    pub cache_merges: Vec<Merge>,
    /// Merges in the directory controller.
    pub dir_merges: Vec<Merge>,
    /// Cache controller statistics.
    pub cache: ControllerStats,
    /// Directory controller statistics.
    pub directory: ControllerStats,
    /// Non-fatal observations (naming fallbacks, skipped defensive
    /// handlers, …).
    pub warnings: Vec<String>,
}

impl fmt::Display for GenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol {}", self.protocol)?;
        writeln!(
            f,
            "  cache:     {} states ({} stable + {} transient), {} transitions, {} stalls",
            self.cache.states(),
            self.cache.stable_states,
            self.cache.transient_states,
            self.cache.transitions,
            self.cache.stalls
        )?;
        writeln!(
            f,
            "  directory: {} states ({} stable + {} transient), {} transitions, {} stalls",
            self.directory.states(),
            self.directory.stable_states,
            self.directory.transient_states,
            self.directory.transitions,
            self.directory.stalls
        )?;
        for r in &self.renames {
            writeln!(f, "  rename: {} -> {} (at {})", r.original, r.renamed, r.state)?;
        }
        for r in &self.reinterpretations {
            writeln!(f, "  reinterpret: {} as {} (dir {})", r.original, r.treated_as, r.dir_state)?;
        }
        for m in &self.cache_merges {
            writeln!(f, "  cache merge: {}={}", m.kept, m.merged.join("="))?;
        }
        for m in &self.dir_merges {
            writeln!(f, "  dir merge: {}={}", m.kept, m.merged.join("="))?;
        }
        for w in &self.warnings {
            writeln!(f, "  warning: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_counts_and_merges() {
        let mut r = GenReport { protocol: "MSI".into(), ..GenReport::default() };
        r.cache.stable_states = 3;
        r.cache.transient_states = 16;
        r.cache_merges.push(Merge { kept: "IM_A_S".into(), merged: vec!["SM_A_S".into()] });
        let s = r.to_string();
        assert!(s.contains("19 states"));
        assert!(s.contains("IM_A_S=SM_A_S"));
    }
}
