//! The ProtoGen protocol generation algorithm (the paper's contribution).
//!
//! Given a stable state protocol ([`protogen_spec::Ssp`]) — the atomic,
//! textbook-style specification of a directory coherence protocol — this
//! crate generates the complete concurrent protocol: cache and directory
//! controller finite state machines with every transient state required when
//! transactions race, while preserving safety (SWMR) and preventing
//! deadlocks.
//!
//! The pipeline follows §V of the paper:
//!
//! 1. **Preprocess** ([`preprocess`]): rename forwarded requests so each one
//!    arrives at exactly one stable state (Tables III/IV).
//! 2. **Step 1/2**: initialize State Sets and create one transient state per
//!    await point of every transaction (Table V).
//! 3. **Step 3**: accommodate concurrency. Forwards associated with the
//!    transaction's *initial* state were ordered earlier at the directory
//!    (Case 1 — respond immediately and restart); forwards associated with
//!    the *final* state were ordered later (Case 2 — stall, or transition
//!    with deferred responses, growing a deferral chain bounded by the
//!    pending-transaction limit L).
//! 4. **Step 4**: assign access permissions to every state.
//! 5. **Directory generation** (§V-F): same machinery without Case 1, plus
//!    the synthesized stale-Put rule and request reinterpretation (§V-D1).
//! 6. **Minimize**: merge behaviourally identical transient states
//!    (the IMAS = SMAS merges of §VI-B).
//!
//! # Example
//!
//! ```
//! use protogen_core::{generate, GenConfig};
//! # use protogen_spec::{SspBuilder, MsgClass, Perm, Access};
//! # fn toy() -> protogen_spec::Ssp {
//! #     let mut b = SspBuilder::new("toy");
//! #     let get = b.message("Get", MsgClass::Request);
//! #     let data = b.data_message("Data", MsgClass::Response);
//! #     let i = b.cache_state("I", Perm::None);
//! #     let v = b.cache_state("V", Perm::Read);
//! #     let di = b.dir_state("I");
//! #     let dv = b.dir_state("V");
//! #     b.cache_hit(v, Access::Load);
//! #     let req = b.send_req(get);
//! #     let chain = b.await_data(data, v);
//! #     b.cache_issue(i, Access::Load, req, chain);
//! #     let send = b.send_data_to_req(data);
//! #     b.dir_react(di, get, vec![send], Some(dv));
//! #     b.build().unwrap()
//! # }
//! # fn main() -> Result<(), protogen_core::GenError> {
//! let ssp = toy();
//! let generated = generate(&ssp, &GenConfig::default())?;
//! // One transient state was created for the I -> V transaction.
//! assert!(generated.cache.state_by_name("IV_D").is_some());
//! println!("{}", generated.report);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cachegen;
mod compose;
mod config;
mod dirgen;
mod error;
mod minimize;
mod preprocess;
mod report;

pub use analysis::{Analysis, DirTxnInfo, TxnInfo};
pub use compose::{compose, Composed, ComposedLevel, GlueSpec};
pub use config::{Concurrency, GenConfig, ResponsePolicy, TransientAccessPolicy};
pub use error::GenError;
pub use minimize::minimize;
pub use preprocess::preprocess;
pub use report::{ControllerStats, GenReport, Merge, Reinterpretation, Rename};

use protogen_spec::{Fsm, Ssp};

/// A generated protocol: both controllers, the preprocessed SSP they were
/// generated from, and the generation report.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The preprocessed SSP (with any forward renames applied).
    pub ssp: Ssp,
    /// The cache controller.
    pub cache: Fsm,
    /// The directory controller.
    pub directory: Fsm,
    /// What happened during generation.
    pub report: GenReport,
}

/// Generates the complete concurrent protocol for `ssp` under `config`.
///
/// # Errors
///
/// Returns a [`GenError`] when the SSP is invalid or uses constructs the
/// generator does not support (see the error variants for details).
pub fn generate(ssp: &Ssp, config: &GenConfig) -> Result<Generated, GenError> {
    ssp.validate()?;
    let (pre, renames) = preprocess(ssp)?;
    let an = Analysis::of(&pre)?;

    let (cache_raw, mut reinterp, mut warnings) =
        cachegen::CacheGen::new(&pre, config, &an).run()?;
    let (dir_raw, dir_reinterp, dir_warnings) = dirgen::DirGen::new(&pre, config, &an).run()?;
    for r in dir_reinterp {
        // Directory-side records carry the state; they subsume cache-side
        // placeholders for the same pair.
        reinterp.retain(|c| !(c.original == r.original && c.treated_as == r.treated_as));
        if !reinterp.contains(&r) {
            reinterp.push(r);
        }
    }
    warnings.extend(dir_warnings);

    let (cache, cache_merges) =
        if config.minimize { minimize(&cache_raw) } else { (cache_raw, Vec::new()) };
    let (directory, dir_merges) =
        if config.minimize { minimize(&dir_raw) } else { (dir_raw, Vec::new()) };

    let stats = |f: &Fsm| ControllerStats {
        stable_states: f.states.iter().filter(|s| s.is_stable()).count(),
        transient_states: f.states.iter().filter(|s| !s.is_stable()).count(),
        transitions: f.transition_count(),
        stalls: f.stall_count(),
    };
    let report = GenReport {
        protocol: ssp.name.clone(),
        renames,
        reinterpretations: reinterp,
        cache_merges,
        dir_merges,
        cache: stats(&cache),
        directory: stats(&directory),
        warnings,
    };
    Ok(Generated { ssp: pre, cache, directory, report })
}
