//! Generation errors.

use std::error::Error;
use std::fmt;

/// Errors produced during protocol generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The input SSP failed validation.
    InvalidSsp(String),
    /// The SSP uses a construct the generator does not support; the message
    /// names it and the state where it occurs.
    Unsupported(String),
    /// The preprocessing step could not associate a forwarded request with
    /// the directory states that send it.
    Ambiguous(String),
    /// A generation invariant was violated (an internal bug, not a user
    /// error).
    Internal(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidSsp(m) => write!(f, "invalid SSP: {m}"),
            GenError::Unsupported(m) => write!(f, "unsupported specification: {m}"),
            GenError::Ambiguous(m) => write!(f, "ambiguous specification: {m}"),
            GenError::Internal(m) => write!(f, "internal generation error: {m}"),
        }
    }
}

impl Error for GenError {}

impl From<protogen_spec::SpecError> for GenError {
    fn from(e: protogen_spec::SpecError) -> Self {
        GenError::InvalidSsp(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_category() {
        assert!(GenError::Unsupported("x".into()).to_string().contains("unsupported"));
        assert!(GenError::Ambiguous("x".into()).to_string().contains("ambiguous"));
    }

    #[test]
    fn converts_spec_errors() {
        let e: GenError = protogen_spec::SpecError::UnknownName("Q".into()).into();
        assert!(matches!(e, GenError::InvalidSsp(_)));
    }
}
