//! Directory controller generation (§V-F).
//!
//! The directory is the serialization point, so there is no Case 1: every
//! request arriving while the directory is mid-transaction belongs to a
//! *later*-ordered transaction. The directory-specific machinery is the
//! synthesized stale-Put rule, request reinterpretation (§V-D1), and the
//! bound of one outstanding multi-step transaction (design note N9).

use crate::analysis::Analysis;
use crate::config::{Concurrency, GenConfig};
use crate::error::GenError;
use crate::report::Reinterpretation;
use protogen_spec::{
    AckSrc, Action, Arc, ArcKind, ArcNote, ChainLink, Dst, Effect, Event, Fsm, FsmState,
    FsmStateId, FsmStateKind, Guard, MachineKind, MsgClass, MsgId, Perm, ReqField, Ssp, SspEntry,
    StableId, TransientMeta, Trigger, WaitTo,
};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Elem {
    req: MsgId,
    /// SSP entry index that processed the request (distinguishes guarded
    /// variants with different targets).
    entry: usize,
    logical_to: StableId,
    deferred: Vec<Action>,
    /// The element installed a newer data copy (a writeback serialized
    /// after the own transaction): the own transaction's completion must
    /// not overwrite it.
    updates_data: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Stable(StableId),
    Wait { txn: usize, w: usize, chain: Vec<Elem> },
}

pub(crate) struct DirGen<'a> {
    ssp: &'a Ssp,
    cfg: &'a GenConfig,
    an: &'a Analysis,
    states: Vec<(Key, String)>,
    index: HashMap<Key, FsmStateId>,
    names: HashMap<String, Key>,
    arcs: Vec<Arc>,
    work: VecDeque<FsmStateId>,
    pub(crate) reinterpretations: Vec<Reinterpretation>,
    pub(crate) warnings: Vec<String>,
}

impl<'a> DirGen<'a> {
    pub(crate) fn new(ssp: &'a Ssp, cfg: &'a GenConfig, an: &'a Analysis) -> Self {
        DirGen {
            ssp,
            cfg,
            an,
            states: Vec::new(),
            index: HashMap::new(),
            names: HashMap::new(),
            arcs: Vec::new(),
            work: VecDeque::new(),
            reinterpretations: Vec::new(),
            warnings: Vec::new(),
        }
    }

    pub(crate) fn run(mut self) -> Result<(Fsm, Vec<Reinterpretation>, Vec<String>), GenError> {
        for s in self.ssp.directory.state_ids() {
            self.intern(Key::Stable(s));
        }
        while let Some(id) = self.work.pop_front() {
            self.emit(id)?;
        }
        let fsm = self.build_fsm();
        Ok((fsm, self.reinterpretations, self.warnings))
    }

    fn sname(&self, s: StableId) -> &str {
        &self.ssp.directory.state(s).name
    }

    fn name_of(&self, key: &Key) -> String {
        match key {
            Key::Stable(s) => self.sname(*s).to_string(),
            Key::Wait { txn, w, chain } => {
                let t = &self.an.dir_txns[*txn];
                let tag = &t.chain.nodes[*w].tag;
                let mut n = format!("{}{}_{}", self.sname(t.from), self.sname(t.final_state), tag);
                if !chain.is_empty() {
                    n.push('_');
                    for e in chain {
                        n.push_str(self.sname(e.logical_to));
                    }
                }
                n
            }
        }
    }

    fn intern(&mut self, key: Key) -> FsmStateId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let mut name = self.name_of(&key);
        while let Some(existing) = self.names.get(&name) {
            if *existing != key {
                name.push('+');
            } else {
                break;
            }
        }
        let id = FsmStateId::from_usize(self.states.len());
        self.names.insert(name.clone(), key.clone());
        self.index.insert(key.clone(), id);
        self.states.push((key, name));
        self.work.push_back(id);
        id
    }

    fn emit(&mut self, id: FsmStateId) -> Result<(), GenError> {
        let key = self.states[id.as_usize()].0.clone();
        match key {
            Key::Stable(s) => self.emit_stable(id, s),
            Key::Wait { txn, w, chain } => self.emit_wait(id, txn, w, &chain),
        }
    }

    /// All messages the directory can receive: requests, plus any
    /// response-class messages the SSP reacts to outside transactions
    /// (handshake protocols).
    fn receivable(&self) -> Vec<MsgId> {
        self.ssp.msg_ids().filter(|&m| self.ssp.msg(m).class != MsgClass::Forward).collect()
    }

    fn emit_stable(&mut self, id: FsmStateId, s: StableId) -> Result<(), GenError> {
        for m in self.receivable() {
            let entries: Vec<(usize, SspEntry)> = self
                .ssp
                .directory
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.state == s && e.trigger == Trigger::Msg(m))
                .map(|(i, e)| (i, e.clone()))
                .collect();
            if entries.is_empty() {
                self.emit_missing(id, s, m)?;
                continue;
            }
            for (entry_idx, e) in &entries {
                match &e.effect {
                    Effect::Local { actions, next } => {
                        let to = next.map_or(id, |n| self.intern(Key::Stable(n)));
                        self.push(
                            id,
                            Event::Msg(m),
                            e.guards.clone(),
                            actions.clone(),
                            to,
                            ArcNote::Ssp,
                        );
                    }
                    Effect::Issue { request, .. } => {
                        let txn = self.an.dir_txn_by_entry(*entry_idx).ok_or_else(|| {
                            GenError::Internal("directory transaction not catalogued".into())
                        })?;
                        let to = self.intern(Key::Wait { txn, w: 0, chain: vec![] });
                        self.push(
                            id,
                            Event::Msg(m),
                            e.guards.clone(),
                            request.clone(),
                            to,
                            ArcNote::Ssp,
                        );
                    }
                }
            }
            // Guarded entries may not cover every requestor (PutM from a
            // non-owner at M): append the stale-Put fallback as an "else".
            if self.an.downgrades.contains(&m) && !self.covered(&entries) {
                self.stale_fallback(id, m);
            }
            // Guarded *upgrade* entries that do not cover every requestor
            // (Upgrade from a cache that is no longer a sharer, §V-D1):
            // append the reinterpretation as the "else" branch.
            if !self.an.downgrades.contains(&m)
                && self.ssp.msg(m).class == MsgClass::Request
                && !self.covered(&entries)
            {
                for (entry_idx, e, note) in self.reinterp_entries(s, m) {
                    match &e.effect {
                        Effect::Local { actions, next } => {
                            let to = next.map_or(id, |n| self.intern(Key::Stable(n)));
                            self.push(
                                id,
                                Event::Msg(m),
                                e.guards.clone(),
                                actions.clone(),
                                to,
                                note,
                            );
                        }
                        Effect::Issue { request, .. } => {
                            if let Some(txn) = self.an.dir_txn_by_entry(entry_idx) {
                                let to = self.intern(Key::Wait { txn, w: 0, chain: vec![] });
                                self.push(
                                    id,
                                    Event::Msg(m),
                                    e.guards.clone(),
                                    request.clone(),
                                    to,
                                    note,
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether a set of entries for one trigger covers all cases: an
    /// unguarded entry, or a complementary guard pair.
    fn covered(&self, entries: &[(usize, SspEntry)]) -> bool {
        if entries.iter().any(|(_, e)| e.guards.is_empty()) {
            return true;
        }
        let guards: Vec<Guard> =
            entries.iter().filter(|(_, e)| e.guards.len() == 1).map(|(_, e)| e.guards[0]).collect();
        guards.iter().any(|g| guards.contains(&g.negate()))
    }

    /// No SSP entry handles `m` in stable state `s`: synthesize a
    /// reinterpretation (§V-D1) and/or the stale-Put acknowledgment (§V-F).
    fn emit_missing(&mut self, id: FsmStateId, s: StableId, m: MsgId) -> Result<(), GenError> {
        if self.ssp.msg(m).class != MsgClass::Request {
            return Ok(()); // responses outside transactions: nothing to do
        }
        // Reinterpretation first: a downgrade from the *current owner*
        // whose cache state was demoted behind its back (PutM arriving at a
        // MOSI directory in O: the owner was demoted M→O by a read, so its
        // PutM is this state's PutO); an upgrade from a state the requestor
        // no longer occupies (Upgrade → GetM).
        let entries = self.reinterp_entries(s, m);
        for (entry_idx, e, note) in entries {
            let guards = if self.an.downgrades.contains(&m) {
                // Only the current owner's stale downgrade carries current
                // data and ownership; anyone else's is acknowledged below.
                let mut g = vec![Guard::ReqIsOwner];
                g.extend(e.guards.iter().copied());
                g
            } else {
                e.guards.clone()
            };
            match &e.effect {
                Effect::Local { actions, next } => {
                    let to = next.map_or(id, |n| self.intern(Key::Stable(n)));
                    self.push(id, Event::Msg(m), guards, actions.clone(), to, note);
                }
                Effect::Issue { request, .. } => {
                    let txn = self
                        .an
                        .dir_txn_by_entry(entry_idx)
                        .ok_or_else(|| GenError::Internal("missing dir txn".into()))?;
                    let to = self.intern(Key::Wait { txn, w: 0, chain: vec![] });
                    self.push(id, Event::Msg(m), guards, request.clone(), to, note);
                }
            }
        }
        if self.an.downgrades.contains(&m) {
            self.stale_fallback(id, m);
        }
        Ok(())
    }

    /// The synthesized stale-Put rule: acknowledge so the issuer can
    /// complete its stale transaction; optionally clean the sharer list.
    fn stale_fallback(&mut self, id: FsmStateId, m: MsgId) {
        let Some(&ack) = self.an.stale_ack.get(&m) else {
            self.warnings.push(format!(
                "no acknowledgment known for stale `{}`; leaving unhandled",
                self.ssp.msg(m).name
            ));
            return;
        };
        let mut actions = vec![Action::Send(
            protogen_spec::SendSpec::new(ack, Dst::Req).req_field(ReqField::FromMsg),
        )];
        if self.cfg.dir_stale_put_cleanup {
            actions.push(Action::RemoveReqFromSharers);
        }
        self.push(id, Event::Msg(m), vec![], actions, id, ArcNote::StalePut);
    }

    // ----- transient states -------------------------------------------------

    fn emit_wait(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        chain: &[Elem],
    ) -> Result<(), GenError> {
        let t = self.an.dir_txns[txn].clone();
        let logical = chain.last().map(|e| e.logical_to).unwrap_or(t.final_state);

        // Own transaction arcs (awaiting the owner's writeback).
        let node = t.chain.nodes[w].clone();
        for arc in &node.arcs {
            match arc.to {
                WaitTo::Wait(w2) => {
                    let to = self.intern(Key::Wait { txn, w: w2, chain: chain.to_vec() });
                    self.push(
                        id,
                        Event::Msg(arc.msg),
                        arc.guards.clone(),
                        arc.actions.clone(),
                        to,
                        ArcNote::Step2,
                    );
                }
                WaitTo::Done(s) => {
                    let final_state = if chain.is_empty() { s } else { logical };
                    let mut actions = arc.actions.clone();
                    if chain.iter().any(|e| e.updates_data) {
                        // A later-serialized writeback already installed
                        // newer data; the own transaction's copy is stale.
                        actions.retain(|a| !matches!(a, Action::CopyDataFromMsg));
                    }
                    for e in chain {
                        actions.extend(e.deferred.iter().cloned());
                    }
                    let to = self.intern(Key::Stable(final_state));
                    let note = if chain.is_empty() { ArcNote::Step2 } else { ArcNote::Completion };
                    self.push(id, Event::Msg(arc.msg), arc.guards.clone(), actions, to, note);
                }
            }
        }

        // Requests racing with the transaction: always ordered after.
        let serialize_by_stalling =
            self.cfg.concurrency == Concurrency::Stalling || !self.ssp.network_ordered;
        for m in self.receivable() {
            if node.arcs.iter().any(|a| a.msg == m) {
                continue; // awaited by the own transaction
            }
            if self.ssp.msg(m).class != MsgClass::Request {
                continue;
            }
            let is_downgrade = self.an.downgrades.contains(&m);
            // §V-D2 footnote 3: without point-to-point ordering the
            // directory serializes racing transactions by stalling the
            // second — *including* stale Puts, whose acknowledgment could
            // otherwise overtake an in-flight forward to the Put's issuer.
            // Unordered channels make stalling safe (a stalled message
            // blocks nothing). On ordered channels the opposite holds: a
            // stalled Put would block the writeback behind it on the same
            // channel, so downgrades are processed, and their
            // acknowledgments cannot overtake anything (same channel).
            if !self.ssp.network_ordered {
                self.stall(id, Event::Msg(m), ArcNote::Case2);
                continue;
            }
            if serialize_by_stalling && !is_downgrade {
                self.stall(id, Event::Msg(m), ArcNote::Case2);
                continue;
            }
            let entries = self.entries_with_reinterp(logical, m);
            if entries.is_empty() {
                if self.an.downgrades.contains(&m) {
                    self.stale_fallback(id, m);
                }
                continue;
            }
            let mut covered = false;
            for (entry_idx, e, note) in &entries {
                if e.guards.is_empty() {
                    covered = true;
                }
                match &e.effect {
                    Effect::Local { actions, next } => {
                        let logical_to = next.unwrap_or(logical);
                        self.case2_local(
                            id,
                            txn,
                            w,
                            chain,
                            m,
                            *entry_idx,
                            e.guards.clone(),
                            actions,
                            logical_to,
                            *note,
                        );
                    }
                    Effect::Issue { .. } => {
                        // Starting a second multi-step transaction while one
                        // is outstanding: serialize by stalling (note N9).
                        self.stall_guarded(id, Event::Msg(m), e.guards.clone(), ArcNote::Case2);
                    }
                }
            }
            // Guard coverage at transient states mirrors stable states.
            let plain: Vec<(usize, SspEntry)> =
                entries.iter().map(|(i, e, _)| (*i, e.clone())).collect();
            if !covered && self.an.downgrades.contains(&m) && !self.covered(&plain) {
                self.stale_fallback(id, m);
            }
        }
        Ok(())
    }

    /// SSP entries for `(state, msg)`, following one reinterpretation hop
    /// when there is no direct entry or the direct entries do not cover
    /// every case.
    fn entries_with_reinterp(&mut self, s: StableId, m: MsgId) -> Vec<(usize, SspEntry, ArcNote)> {
        let mut direct: Vec<(usize, SspEntry, ArcNote)> = self
            .ssp
            .directory
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.state == s && e.trigger == Trigger::Msg(m))
            .map(|(i, e)| (i, e.clone(), ArcNote::Case2))
            .collect();
        let plain: Vec<(usize, SspEntry)> =
            direct.iter().map(|(i, e, _)| (*i, e.clone())).collect();
        if !direct.is_empty() && self.covered(&plain) {
            return direct;
        }
        let mut reinterp = self.reinterp_entries(s, m);
        if self.an.downgrades.contains(&m) {
            for (_, e, _) in &mut reinterp {
                let mut g = vec![Guard::ReqIsOwner];
                g.extend(e.guards.iter().copied());
                e.guards = g;
            }
        }
        direct.extend(reinterp);
        direct
    }

    /// The entries a reinterpreted request maps to: the request the same
    /// access issues from a different cache state, when this directory
    /// state handles that request (§V-D1).
    fn reinterp_entries(&mut self, s: StableId, m: MsgId) -> Vec<(usize, SspEntry, ArcNote)> {
        if self.ssp.msg(m).class != MsgClass::Request {
            return vec![];
        }
        // For downgrades, precision matters (data and ownership move): the
        // alternative must be the request the same access issues from the
        // cache state this directory state corresponds to by name (a PutM
        // at directory O is the demoted owner's PutO, never a PutS).
        let required_from = if self.an.downgrades.contains(&m) {
            match self.ssp.cache.state_by_name(self.sname(s)) {
                Some(cs) => Some(cs),
                None => return vec![],
            }
        } else {
            None
        };
        let sites = self.an.request_sites.get(&m).cloned().unwrap_or_default();
        for (access, _) in sites {
            for (&(from2, acc2), &txn2) in self.an.txn_by_trigger.iter() {
                if acc2 != access {
                    continue;
                }
                if let Some(rf) = required_from {
                    if from2 != rf {
                        continue;
                    }
                }
                let Some(alt) = self.an.txns[txn2].request_msg else { continue };
                if alt == m {
                    continue;
                }
                let alt_entries: Vec<(usize, SspEntry, ArcNote)> = self
                    .ssp
                    .directory
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.state == s && e.trigger == Trigger::Msg(alt))
                    .map(|(i, e)| (i, e.clone(), ArcNote::Reinterpret))
                    .collect();
                if !alt_entries.is_empty() {
                    let rec = Reinterpretation {
                        original: self.ssp.msg(m).name.clone(),
                        treated_as: self.ssp.msg(alt).name.clone(),
                        dir_state: self.sname(s).to_string(),
                    };
                    if !self.reinterpretations.contains(&rec) {
                        self.reinterpretations.push(rec);
                    }
                    return alt_entries;
                }
            }
        }
        vec![]
    }

    /// Case 2 processing of a single-step reaction at a transient directory
    /// state: apply auxiliary updates and data-free sends immediately, defer
    /// data-bearing sends the directory cannot satisfy yet.
    #[allow(clippy::too_many_arguments)]
    fn case2_local(
        &mut self,
        id: FsmStateId,
        txn: usize,
        w: usize,
        chain: &[Elem],
        m: MsgId,
        entry_idx: usize,
        guards: Vec<Guard>,
        actions: &[Action],
        logical_to: StableId,
        note: ArcNote,
    ) {
        let t = &self.an.dir_txns[txn];
        let logical = chain.last().map(|e| e.logical_to).unwrap_or(t.final_state);
        let data_ready = t.data_present[w];
        let updates_data = actions.iter().any(|a| matches!(a, Action::CopyDataFromMsg));
        if updates_data && chain.iter().any(|e| !e.deferred.is_empty()) {
            // A deferred data response serialized *before* this writeback is
            // still owed; completing it later with the newer data would let
            // an earlier reader observe a later write. Serialize by
            // stalling the writeback until the own transaction completes.
            // The stall keeps the entry's guards: a *stale* Put from some
            // other cache must fall through to the acknowledgment fallback
            // or it would block the channel carrying the writeback.
            self.stall_guarded(id, Event::Msg(m), guards, ArcNote::Case2);
            return;
        }
        let slot = chain.iter().filter(|e| !e.deferred.is_empty()).count();
        let mut immediate = Vec::new();
        let mut deferred = Vec::new();
        for a in actions {
            match a {
                Action::Send(sp)
                    if sp.data == Some(protogen_spec::DataSrc::OwnBlock) && !data_ready =>
                {
                    let mut sp = *sp;
                    if sp.dst == Dst::Req {
                        sp.dst = Dst::ChainReq(slot);
                    }
                    if sp.req == ReqField::FromMsg {
                        sp.req = ReqField::Chain(slot);
                    }
                    if matches!(
                        sp.ack_count,
                        Some(AckSrc::SharersExceptReqCount) | Some(AckSrc::FromMsg)
                    ) {
                        // Both the sharer count and a piggybacked count are
                        // serialization-time values; the slot captured them
                        // when the request was processed.
                        sp.ack_count = Some(AckSrc::Captured);
                    }
                    if deferred.is_empty() {
                        // Capture (requestor, |sharers \ req|) *here*, in the
                        // deferred send's original position: later actions of
                        // the same reaction may clear the sharer list.
                        immediate.push(Action::RecordChainReq);
                    }
                    deferred.push(Action::Send(sp));
                }
                other => immediate.push(*other),
            }
        }
        if logical_to == logical && deferred.is_empty() {
            self.push(id, Event::Msg(m), guards, immediate, id, note);
            return;
        }
        if chain.len() >= self.cfg.pending_limit {
            // The stall keeps the entry's guards so differently-guarded
            // variants (and the stale fallback) behind it stay reachable.
            self.stall_guarded(id, Event::Msg(m), guards, ArcNote::Case2);
            return;
        }
        let mut new_chain = chain.to_vec();
        new_chain.push(Elem { req: m, entry: entry_idx, logical_to, deferred, updates_data });
        let to = self.intern(Key::Wait { txn, w, chain: new_chain });
        self.push(id, Event::Msg(m), guards, immediate, to, note);
    }

    // ----- plumbing -----------------------------------------------------------

    fn push(
        &mut self,
        from: FsmStateId,
        event: Event,
        guards: Vec<Guard>,
        actions: Vec<Action>,
        to: FsmStateId,
        note: ArcNote,
    ) {
        self.arcs.push(Arc { from, event, guards, actions, to, kind: ArcKind::Normal, note });
    }

    fn stall(&mut self, from: FsmStateId, event: Event, note: ArcNote) {
        self.stall_guarded(from, event, vec![], note);
    }

    fn stall_guarded(&mut self, from: FsmStateId, event: Event, guards: Vec<Guard>, note: ArcNote) {
        if self.arcs.iter().any(|a| {
            a.from == from && a.event == event && a.kind == ArcKind::Stall && a.guards == guards
        }) {
            return;
        }
        self.arcs.push(Arc {
            from,
            event,
            guards,
            actions: vec![],
            to: from,
            kind: ArcKind::Stall,
            note,
        });
    }

    fn build_fsm(&self) -> Fsm {
        let mut states = Vec::with_capacity(self.states.len());
        for (key, name) in &self.states {
            let (kind, sets) = match key {
                Key::Stable(s) => (FsmStateKind::Stable(*s), vec![*s]),
                Key::Wait { txn, w, chain } => {
                    let t = &self.an.dir_txns[*txn];
                    let links = chain
                        .iter()
                        .map(|e| ChainLink {
                            forward: e.req,
                            logical_to: e.logical_to,
                            has_deferred_response: !e.deferred.is_empty(),
                        })
                        .collect();
                    let meta = TransientMeta {
                        own_from: t.from,
                        own_to: t.final_state,
                        wait_tag: t.chain.nodes[*w].tag.clone(),
                        chain: links,
                    };
                    let logical = chain.last().map(|e| e.logical_to).unwrap_or(t.final_state);
                    (FsmStateKind::Transient(meta), vec![logical])
                }
            };
            states.push(FsmState {
                name: name.clone(),
                kind,
                state_sets: sets,
                perm: Perm::None,
                data_valid: true,
                merged_names: vec![],
            });
        }
        Fsm {
            protocol: self.ssp.name.clone(),
            machine: MachineKind::Directory,
            messages: self.ssp.messages.clone(),
            states,
            arcs: self.arcs.clone(),
        }
    }
}
