//! Static analysis of a (preprocessed) SSP: transaction catalog, forward
//! associations, request classification.

use crate::error::GenError;
use protogen_spec::{
    Access, Action, Dst, Effect, Guard, MsgClass, MsgId, Perm, Ssp, StableId, Trigger, WaitChain,
    WaitTo,
};
use std::collections::{BTreeMap, BTreeSet};

/// One cache transaction: an `(stable state, access)` pair that issues a
/// request and waits.
#[derive(Debug, Clone)]
pub struct TxnInfo {
    /// Index of the SSP entry this transaction came from.
    pub entry_idx: usize,
    /// Initial stable state `S_i`.
    pub from: StableId,
    /// The access that triggers the transaction.
    pub access: Access,
    /// The primary request message sent to the directory.
    pub request_msg: Option<MsgId>,
    /// Request actions (sends, counter resets).
    pub request_actions: Vec<Action>,
    /// The await structure.
    pub chain: WaitChain,
    /// All stable states the transaction can complete into.
    pub finals: Vec<StableId>,
    /// Per await point: whether the block still holds the (valid) data copy
    /// it had in `from` on every path to that point. Drives the Step-4
    /// access rule for chain states.
    pub retains_data: Vec<bool>,
    /// Per await point: whether a valid data copy is present on every path
    /// (either retained from `from` or received). Drives response deferral
    /// under the immediate policy.
    pub data_present: Vec<bool>,
}

/// One directory transaction: a request whose processing spans an await
/// (e.g. M + GetS waits for the owner's writeback).
#[derive(Debug, Clone)]
pub struct DirTxnInfo {
    /// Index of the SSP entry.
    pub entry_idx: usize,
    /// Directory state the transaction starts in.
    pub from: StableId,
    /// The request that triggers it.
    pub trigger: MsgId,
    /// Optional guard on the trigger.
    pub guards: Vec<Guard>,
    /// Request actions.
    pub request_actions: Vec<Action>,
    /// The await structure.
    pub chain: WaitChain,
    /// The (single) stable state the transaction completes into.
    pub final_state: StableId,
    /// Per await point: whether the directory's data copy is valid on every
    /// path to that point.
    pub data_present: Vec<bool>,
}

/// Results of analyzing a preprocessed SSP.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Forward message → the cache stable states it can arrive in. After
    /// preprocessing this is a single state whenever the directory can
    /// distinguish the sending situations (§V-A); it remains a set when it
    /// cannot (MESI's Fwd_GetS arrives at E or M, which silent upgrades
    /// make indistinguishable at the directory — the generator resolves
    /// the ambiguity per context instead).
    pub fwd_assoc: BTreeMap<MsgId, Vec<StableId>>,
    /// Cache stable state → forwards that can arrive there.
    pub fwds_at: Vec<Vec<MsgId>>,
    /// Cache transactions.
    pub txns: Vec<TxnInfo>,
    /// `(state, access)` → transaction index.
    pub txn_by_trigger: BTreeMap<(StableId, Access), usize>,
    /// Directory transactions.
    pub dir_txns: Vec<DirTxnInfo>,
    /// Request message → the `(access, cache state)` sites that issue it.
    pub request_sites: BTreeMap<MsgId, Vec<(Access, StableId)>>,
    /// Requests that only ever downgrade permissions (Put-class). The
    /// directory acknowledges these when they arrive stale (§V-F).
    pub downgrades: BTreeSet<MsgId>,
    /// Downgrade request → the acknowledgment its issuer awaits (used by the
    /// synthesized stale-Put rule).
    pub stale_ack: BTreeMap<MsgId, MsgId>,
}

impl Analysis {
    /// Analyzes a preprocessed SSP.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the SSP violates the generator's structural
    /// assumptions (ambiguous forward association, duplicate transactions
    /// for one `(state, access)` pair, multi-final directory transactions).
    pub fn of(ssp: &Ssp) -> Result<Analysis, GenError> {
        let mut fwd_assoc = BTreeMap::new();
        let mut fwds_at = vec![Vec::new(); ssp.cache.states.len()];

        for m in ssp.msg_ids() {
            if ssp.msg(m).class != MsgClass::Forward {
                continue;
            }
            let arrivals: Vec<StableId> =
                ssp.cache.state_ids().filter(|&s| ssp.cache.handles(s, Trigger::Msg(m))).collect();
            if arrivals.is_empty() {
                continue; // declared but unused; harmless
            }
            for &s in &arrivals {
                fwds_at[s.as_usize()].push(m);
            }
            fwd_assoc.insert(m, arrivals);
        }

        let mut txns = Vec::new();
        let mut txn_by_trigger = BTreeMap::new();
        let mut request_sites: BTreeMap<MsgId, Vec<(Access, StableId)>> = BTreeMap::new();

        for (entry_idx, e) in ssp.cache.entries.iter().enumerate() {
            let Trigger::Access(access) = e.trigger else {
                continue;
            };
            let Effect::Issue { request, chain } = &e.effect else {
                continue;
            };
            let request_msg = primary_request(ssp, request);
            if let Some(r) = request_msg {
                request_sites.entry(r).or_default().push((access, e.state));
            }
            let finals = chain.final_states();
            if finals.is_empty() {
                return Err(GenError::InvalidSsp(format!(
                    "cache transaction from {} on {access} never completes",
                    ssp.cache.state(e.state).name
                )));
            }
            let idx = txns.len();
            if txn_by_trigger.insert((e.state, access), idx).is_some() {
                return Err(GenError::Unsupported(format!(
                    "two transactions for ({}, {access})",
                    ssp.cache.state(e.state).name
                )));
            }
            let from_valid = ssp.cache.state(e.state).data_valid;
            let retains_data = flow_data(chain, from_valid, FlowMode::Retains);
            let data_present = flow_data(chain, from_valid, FlowMode::Present);
            txns.push(TxnInfo {
                entry_idx,
                from: e.state,
                access,
                request_msg,
                request_actions: request.clone(),
                chain: chain.clone(),
                finals,
                retains_data,
                data_present,
            });
        }

        let mut dir_txns = Vec::new();
        for (entry_idx, e) in ssp.directory.entries.iter().enumerate() {
            let Trigger::Msg(trigger) = e.trigger else {
                continue;
            };
            let Effect::Issue { request, chain } = &e.effect else {
                continue;
            };
            let finals = chain.final_states();
            if finals.len() != 1 {
                return Err(GenError::Unsupported(format!(
                    "directory transaction at {} on `{}` has {} final states (need exactly 1)",
                    ssp.directory.state(e.state).name,
                    ssp.msg(trigger).name,
                    finals.len()
                )));
            }
            // The directory's data copy is stale while a cache owns the
            // block, which is exactly when the SSP makes it wait for a
            // writeback; model "present" as false until data arrives.
            let data_present = flow_data(chain, false, FlowMode::Present);
            dir_txns.push(DirTxnInfo {
                entry_idx,
                from: e.state,
                trigger,
                guards: e.guards.clone(),
                request_actions: request.clone(),
                chain: chain.clone(),
                final_state: finals[0],
                data_present,
            });
        }

        // A request is a downgrade (Put-class) when every transaction that
        // issues it moves to a strictly lower permission level.
        let mut downgrades = BTreeSet::new();
        let mut stale_ack = BTreeMap::new();
        for (&req, sites) in &request_sites {
            let mut all_down = true;
            let mut ack: Option<MsgId> = None;
            for &(access, from) in sites {
                let txn = &txns[txn_by_trigger[&(from, access)]];
                let from_perm = ssp.cache.state(from).perm;
                let down = txn
                    .finals
                    .iter()
                    .all(|&f| ssp.cache.state(f).perm < from_perm || from_perm == Perm::None);
                if !down || from_perm == Perm::None {
                    all_down = false;
                }
                // The acknowledgment the issuer awaits first: the message of
                // the entry await point's arcs.
                if let Some(first) = txn.chain.nodes.first().and_then(|n| n.arcs.first()) {
                    ack.get_or_insert(first.msg);
                }
            }
            if all_down {
                downgrades.insert(req);
                if let Some(a) = ack {
                    stale_ack.insert(req, a);
                }
            }
        }

        Ok(Analysis {
            fwd_assoc,
            fwds_at,
            txns,
            txn_by_trigger,
            dir_txns,
            request_sites,
            downgrades,
            stale_ack,
        })
    }

    /// The directory transaction index for an SSP entry index, if that entry
    /// is a transaction.
    pub fn dir_txn_by_entry(&self, entry_idx: usize) -> Option<usize> {
        self.dir_txns.iter().position(|t| t.entry_idx == entry_idx)
    }
}

/// The primary request of a transaction: the first request-class send.
pub fn primary_request(ssp: &Ssp, actions: &[Action]) -> Option<MsgId> {
    actions.iter().find_map(|a| match a {
        Action::Send(s) if s.dst == Dst::Dir && ssp.msg(s.msg).class == MsgClass::Request => {
            Some(s.msg)
        }
        _ => None,
    })
}

#[derive(Clone, Copy, PartialEq)]
enum FlowMode {
    /// True while no arc consumed new data (the block still holds the
    /// initial copy) — requires the initial copy to be valid.
    Retains,
    /// True when a valid copy is present (initial or received).
    Present,
}

/// All-paths dataflow over a wait chain for data validity.
fn flow_data(chain: &WaitChain, from_valid: bool, mode: FlowMode) -> Vec<bool> {
    let n = chain.nodes.len();
    let mut val = vec![true; n];
    val[0] = from_valid;
    // Small chains: iterate to a fixpoint with an all-paths AND.
    for _ in 0..=n {
        for (i, node) in chain.nodes.iter().enumerate() {
            for arc in &node.arcs {
                let WaitTo::Wait(j) = arc.to else { continue };
                if j == i {
                    continue; // self-loops never change data validity
                }
                let copies = arc.actions.iter().any(|a| matches!(a, Action::CopyDataFromMsg));
                let incoming = match mode {
                    FlowMode::Retains => val[i] && !copies,
                    FlowMode::Present => val[i] || copies,
                };
                val[j] = val[j] && incoming;
            }
        }
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{MsgClass, Perm, SspBuilder};

    /// A small MSI-like SSP for analysis tests.
    fn mini() -> Ssp {
        let mut b = SspBuilder::new("mini");
        let get_s = b.message("GetS", MsgClass::Request);
        let get_m = b.message("GetM", MsgClass::Request);
        let put_m = b.data_message("PutM", MsgClass::Request);
        let inv = b.message("Inv", MsgClass::Forward);
        let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
        let data = b.data_ack_message("Data", MsgClass::Response);
        let inv_ack = b.message("Inv_Ack", MsgClass::Response);
        let put_ack = b.message("Put_Ack", MsgClass::Response);
        let i = b.cache_state("I", Perm::None);
        let s = b.cache_state("S", Perm::Read);
        let m = b.cache_state("M", Perm::ReadWrite);
        let di = b.dir_state("I");
        let ds = b.dir_state("S");
        let dm = b.dir_state("M");
        b.cache_hit(s, Access::Load);
        b.cache_hit(m, Access::Load);
        b.cache_hit(m, Access::Store);
        let req = b.send_req(get_s);
        let chain = b.await_data(data, s);
        b.cache_issue(i, Access::Load, req, chain);
        let req = b.send_req(get_m);
        let chain = b.await_data_acks(data, inv_ack, m);
        b.cache_issue(i, Access::Store, req, chain);
        let req = b.send_req(get_m);
        let chain = b.await_data_acks(data, inv_ack, m);
        b.cache_issue(s, Access::Store, req, chain);
        let req = b.send_req_data(put_m);
        let chain = b.await_ack(put_ack, i);
        b.cache_issue(m, Access::Replacement, req, chain);
        let ia = b.send_to_req(inv_ack);
        b.cache_react(s, inv, vec![ia], Some(i));
        let d = b.send_data_to_req(data);
        b.cache_react(m, fwd_get_m, vec![d], Some(i));
        // Directory (partial; enough for validity).
        let d = b.send_data_to_req(data);
        b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], Some(ds));
        let d = b.send_data_acks_to_req(data);
        b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
        let d = b.send_data_acks_to_req(data);
        let iv = b.inv_sharers(inv);
        b.dir_react(ds, get_m, vec![d, iv, Action::SetOwnerToReq, Action::ClearSharers], Some(dm));
        let f = b.fwd_to_owner(fwd_get_m);
        b.dir_react(dm, get_m, vec![f, Action::SetOwnerToReq], None);
        let pa = b.send_to_req(put_ack);
        b.dir_react_guarded(
            dm,
            put_m,
            Guard::ReqIsOwner,
            vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
            Some(di),
        );
        b.build().expect("mini SSP is valid")
    }

    #[test]
    fn forward_association_is_unique() {
        let ssp = mini();
        let an = Analysis::of(&ssp).unwrap();
        let inv = ssp.msg_by_name("Inv").unwrap();
        let s = ssp.cache.state_by_name("S").unwrap();
        assert_eq!(an.fwd_assoc[&inv], vec![s]);
        let m = ssp.cache.state_by_name("M").unwrap();
        assert_eq!(an.fwds_at[m.as_usize()].len(), 1);
    }

    #[test]
    fn transactions_catalogued() {
        let ssp = mini();
        let an = Analysis::of(&ssp).unwrap();
        assert_eq!(an.txns.len(), 4);
        let i = ssp.cache.state_by_name("I").unwrap();
        let t = &an.txns[an.txn_by_trigger[&(i, Access::Store)]];
        assert_eq!(t.request_msg, ssp.msg_by_name("GetM"));
        assert_eq!(t.finals, vec![ssp.cache.state_by_name("M").unwrap()]);
        // Two await points: AD then A.
        assert_eq!(t.chain.nodes.len(), 2);
        // I holds no data: nothing retained; data present only after Data.
        assert_eq!(t.retains_data, vec![false, false]);
        assert_eq!(t.data_present, vec![false, true]);
    }

    #[test]
    fn put_m_is_a_downgrade_with_ack() {
        let ssp = mini();
        let an = Analysis::of(&ssp).unwrap();
        let put_m = ssp.msg_by_name("PutM").unwrap();
        assert!(an.downgrades.contains(&put_m));
        assert_eq!(an.stale_ack[&put_m], ssp.msg_by_name("Put_Ack").unwrap());
        // GetM upgrades; not a downgrade.
        assert!(!an.downgrades.contains(&ssp.msg_by_name("GetM").unwrap()));
    }

    #[test]
    fn retains_data_for_valid_initial_copy() {
        let ssp = mini();
        let an = Analysis::of(&ssp).unwrap();
        let s = ssp.cache.state_by_name("S").unwrap();
        let t = &an.txns[an.txn_by_trigger[&(s, Access::Store)]];
        // S holds data: the AD point retains it; after Data arrives (A
        // point) the initial copy has been overwritten.
        assert_eq!(t.retains_data, vec![true, false]);
        assert_eq!(t.data_present, vec![true, true]);
    }
}
