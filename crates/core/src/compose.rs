//! Composition pass: generate every level of a hierarchical protocol
//! stack and derive the glue between adjacent levels (DESIGN.md §12).
//!
//! The glue is *derived*, never hand-specified. For each non-root level
//! the pass answers one question per request message of the inner
//! protocol: **what outer permission must the hosting node hold before
//! its inner directory may serve this request?** Demand requests (those
//! issued by a `Load` or `Store`) need `ReadWrite` at the parent, and
//! eviction traffic (issued by `Replacement`) needs nothing, because
//! children only hold copies while the parent already holds the line.
//!
//! The demand answer is deliberately *exclusive-at-parent*: even a
//! read-only inner request requires the parent to hold the line in
//! `ReadWrite`. Allowing parents to hold `Read` while children keep
//! copies is unsound without recall machinery — a parent upgrading
//! S→M while a child holds an S copy blocks the outer invalidation on
//! the child's copy, while that child's own upgrade request is blocked
//! on the parent's permission, closing a wait cycle. Recall-based
//! read-sharing glue is future work (DESIGN.md §12).
//!
//! From that single table the hierarchical checker synthesizes both glue
//! behaviours:
//!
//! * **outer-miss → inner-request forwarding**: a request whose needed
//!   permission exceeds the parent's current outer permission stays
//!   queued, and the parent issues the corresponding access (`Load` for
//!   `Read`, `Store` for `ReadWrite`) on its outer cache machine;
//! * **inner-eviction → outer-writeback**: once a parent's inner subnet
//!   is fully quiescent, the parent may issue `Replacement` on its outer
//!   machine, carrying the (synced) data back out.

use crate::{generate, GenConfig, GenError, Generated};
use protogen_spec::{Access, Action, Composition, Effect, MsgClass, Perm, SpecError, Trigger};

/// One generated level of a composition.
#[derive(Debug, Clone)]
pub struct ComposedLevel {
    /// The level's display label (`"l1"`, `"llc"`, …).
    pub label: String,
    /// Children per directory of this level.
    pub fanout: usize,
    /// The generated concurrent protocol for this level.
    pub generated: Generated,
}

/// Derived glue between an inner protocol level and the cache side of
/// the level above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlueSpec {
    /// Minimum outer permission the hosting node needs before its inner
    /// directory may be sent each message, indexed by the inner
    /// protocol's `MsgId`. `Perm::None` means always deliverable.
    pub needed_perm: Vec<Perm>,
}

impl GlueSpec {
    /// The access a non-holding parent issues on its outer machine to
    /// acquire enough permission for `msg`, or `None` when the message
    /// needs no outer permission.
    pub fn acquire_access(&self, msg: protogen_spec::MsgId) -> Option<Access> {
        match self.needed_perm[msg.as_usize()] {
            Perm::None => None,
            Perm::Read => Some(Access::Load),
            Perm::ReadWrite => Some(Access::Store),
        }
    }
}

/// A fully generated hierarchical protocol: one [`Generated`] per level
/// plus the derived glue between adjacent levels.
#[derive(Debug, Clone)]
pub struct Composed {
    /// Composition name.
    pub name: String,
    /// Generated levels, leaf-first.
    pub levels: Vec<ComposedLevel>,
    /// `glue[j]` relates level `j`'s directory to level `j+1`'s cache
    /// side; empty for a one-level composition.
    pub glue: Vec<GlueSpec>,
}

impl Composed {
    /// Number of protocol levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of machine-level-`j` nodes (see
    /// [`protogen_spec::Composition::node_count`]).
    pub fn node_count(&self, machine_level: usize) -> usize {
        self.levels[machine_level..].iter().map(|l| l.fanout).product()
    }
}

/// Generates every level of `comp` and derives the inter-level glue.
///
/// # Errors
///
/// Returns a [`GenError`] when the composition is structurally invalid
/// (see [`protogen_spec::Composition::validate`]) or any level fails to
/// generate.
pub fn compose(comp: &Composition, config: &GenConfig) -> Result<Composed, GenError> {
    comp.validate().map_err(|e: SpecError| GenError::InvalidSsp(e.to_string()))?;
    let mut levels = Vec::with_capacity(comp.levels.len());
    for level in &comp.levels {
        levels.push(ComposedLevel {
            label: level.label.clone(),
            fanout: level.fanout,
            generated: generate(&level.ssp, config)?,
        });
    }
    // Glue exists below every non-root boundary: the needed-permission
    // table of level j gates deliveries into level j's directories, which
    // are hosted by machine-level-(j+1) nodes — nodes that have an outer
    // cache machine for every j except the root.
    let glue = levels.iter().take(levels.len() - 1).map(|l| derive_glue(&l.generated)).collect();
    Ok(Composed { name: comp.name.clone(), levels, glue })
}

/// Derives the needed-permission table of one inner level from its
/// (preprocessed) SSP: for every request-class message, the maximum
/// permission implied by the accesses whose transactions send it.
fn derive_glue(inner: &Generated) -> GlueSpec {
    let ssp = &inner.ssp;
    let mut needed = vec![Perm::None; ssp.messages.len()];
    for entry in &ssp.cache.entries {
        let Trigger::Access(access) = entry.trigger else { continue };
        let perm = match access {
            // Exclusive-at-parent: demand requests (even read-only ones)
            // require the parent to hold the line in ReadWrite; see the
            // module docs for the wait cycle that read-holding opens.
            Access::Load | Access::Store => Perm::ReadWrite,
            // Eviction traffic only exists while the parent already holds
            // the line, so it never needs the parent to acquire.
            Access::Replacement => Perm::None,
        };
        let mut note = |actions: &[Action]| {
            for action in actions {
                if let Action::Send(sp) = action {
                    if ssp.msg(sp.msg).class == MsgClass::Request {
                        let slot = &mut needed[sp.msg.as_usize()];
                        *slot = (*slot).max(perm);
                    }
                }
            }
        };
        match &entry.effect {
            Effect::Local { actions, .. } => note(actions),
            Effect::Issue { request, chain } => {
                note(request);
                for node in &chain.nodes {
                    for arc in &node.arcs {
                        note(&arc.actions);
                    }
                }
            }
        }
    }
    GlueSpec { needed_perm: needed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::LevelSpec;

    fn msi_under_msi() -> Composition {
        Composition {
            name: "msi_under_msi".into(),
            levels: vec![
                LevelSpec { label: "l1".into(), ssp: protogen_protocols::msi(), fanout: 2 },
                LevelSpec { label: "l2".into(), ssp: protogen_protocols::msi(), fanout: 2 },
            ],
        }
    }

    #[test]
    fn msi_glue_maps_requests_to_access_perms() {
        let composed = compose(&msi_under_msi(), &GenConfig::default()).unwrap();
        assert_eq!(composed.depth(), 2);
        assert_eq!(composed.glue.len(), 1);
        let inner = &composed.levels[0].generated.ssp;
        let glue = &composed.glue[0];
        let need = |name: &str| glue.needed_perm[inner.msg_by_name(name).unwrap().as_usize()];
        // Exclusive-at-parent: both demand requests need ReadWrite.
        assert_eq!(need("GetS"), Perm::ReadWrite);
        assert_eq!(need("GetM"), Perm::ReadWrite);
        assert_eq!(need("PutM"), Perm::None);
        assert_eq!(glue.acquire_access(inner.msg_by_name("GetM").unwrap()), Some(Access::Store));
    }

    #[test]
    fn node_counts_follow_fanouts() {
        let composed = compose(&msi_under_msi(), &GenConfig::default()).unwrap();
        assert_eq!(composed.node_count(0), 4);
        assert_eq!(composed.node_count(1), 2);
        assert_eq!(composed.node_count(2), 1);
    }
}
