//! FSM minimization: merge behaviourally identical transient states.
//!
//! §VI-B observes that ProtoGen "was able to merge some states that were
//! kept separate in the primer like IMAS = SMAS". We implement Moore-machine
//! partition refinement over guarded transition rows: two transient states
//! merge when their outgoing arcs (events, guards, kinds, actions) are
//! identical up to the partition of their targets. Stable states are never
//! merged (they are the directory-visible anchor points and the SSP's
//! interface).

use crate::report::Merge;
use protogen_spec::{Arc, ArcKind, Fsm, FsmStateId};
use std::collections::HashMap;

/// Minimizes `fsm`, returning the reduced machine and the merges performed.
///
/// State 0 (the initial state) is stable and therefore always survives with
/// its identity intact. Surviving states keep the name of their
/// first-generated member; the other members' names are recorded in
/// [`protogen_spec::FsmState::merged_names`] and reported.
pub fn minimize(fsm: &Fsm) -> (Fsm, Vec<Merge>) {
    let n = fsm.states.len();
    // Initial partition: every stable state is its own class (never merged);
    // transient states start in one class and get refined apart.
    let stable_count = fsm.states.iter().filter(|s| s.is_stable()).count();
    let mut class: Vec<usize> = (0..n)
        .map(|i| {
            if fsm.states[i].is_stable() {
                i
            } else {
                stable_count // shared bucket; refined below
            }
        })
        .collect();

    // Pre-group arcs by source for speed.
    let mut arcs_by_state: Vec<Vec<&Arc>> = vec![Vec::new(); n];
    for a in &fsm.arcs {
        arcs_by_state[a.from.as_usize()].push(a);
    }

    loop {
        let mut sig_to_class: HashMap<(usize, Vec<u8>), usize> = HashMap::new();
        let mut next_class = vec![0usize; n];
        for i in 0..n {
            let sig = signature(&arcs_by_state[i], &class);
            let key = (class[i], sig);
            let fresh = sig_to_class.len();
            let c = *sig_to_class.entry(key).or_insert(fresh);
            next_class[i] = c;
        }
        let changed = next_class != class;
        class = next_class;
        if !changed {
            break;
        }
    }

    // Canonical class representative: the first-generated member.
    let mut rep_of_class: HashMap<usize, usize> = HashMap::new();
    for (i, &c) in class.iter().enumerate() {
        rep_of_class.entry(c).or_insert(i);
    }
    // New ids ordered by representative, preserving generation order (so the
    // initial state stays id 0).
    let mut reps: Vec<usize> = rep_of_class.values().copied().collect();
    reps.sort_unstable();
    let new_id_of_rep: HashMap<usize, usize> =
        reps.iter().enumerate().map(|(new, &old)| (old, new)).collect();
    let new_id = |old: usize| new_id_of_rep[&rep_of_class[&class[old]]];

    let mut merges = Vec::new();
    let mut states = Vec::with_capacity(reps.len());
    for &rep in &reps {
        let mut st = fsm.states[rep].clone();
        let merged: Vec<String> = (0..n)
            .filter(|&i| i != rep && class[i] == class[rep])
            .map(|i| fsm.states[i].name.clone())
            .collect();
        if !merged.is_empty() {
            merges.push(Merge { kept: st.name.clone(), merged: merged.clone() });
            st.merged_names = merged;
        }
        states.push(st);
    }

    let mut arcs = Vec::new();
    for &rep in &reps {
        for a in &arcs_by_state[rep] {
            let mut a2 = (*a).clone();
            a2.from = FsmStateId::from_usize(new_id(rep));
            a2.to = FsmStateId::from_usize(new_id(a.to.as_usize()));
            if !arcs.contains(&a2) {
                arcs.push(a2);
            }
        }
    }

    let out = Fsm {
        protocol: fsm.protocol.clone(),
        machine: fsm.machine,
        messages: fsm.messages.clone(),
        states,
        arcs,
    };
    (out, merges)
}

/// A canonical byte encoding of a state's outgoing behaviour, with arc
/// targets replaced by their current class.
fn signature(arcs: &[&Arc], class: &[usize]) -> Vec<u8> {
    let mut rows: Vec<Vec<u8>> = arcs
        .iter()
        .map(|a| {
            let mut row = Vec::new();
            match a.event {
                protogen_spec::Event::Access(acc) => {
                    row.push(0);
                    row.push(acc.index() as u8);
                }
                protogen_spec::Event::Msg(m) => {
                    row.push(1);
                    row.extend_from_slice(&m.0.to_le_bytes());
                }
            }
            row.push(match a.kind {
                ArcKind::Normal => 0,
                ArcKind::Stall => 1,
            });
            if a.guards.is_empty() {
                row.push(0xff);
            } else {
                for g in &a.guards {
                    row.push(*g as u8);
                }
            }
            // Actions affect behaviour; encode them via Debug (stable within
            // one process, which is all minimization needs).
            row.extend_from_slice(format!("{:?}", a.actions).as_bytes());
            row.extend_from_slice(&(class[a.to.as_usize()] as u64).to_le_bytes());
            row
        })
        .collect();
    rows.sort();
    rows.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{
        Access, ArcNote, Event, FsmState, FsmStateKind, MachineKind, Perm, StableId, TransientMeta,
    };

    fn state(name: &str, stable: bool) -> FsmState {
        FsmState {
            name: name.into(),
            kind: if stable {
                FsmStateKind::Stable(StableId(0))
            } else {
                FsmStateKind::Transient(TransientMeta {
                    own_from: StableId(0),
                    own_to: StableId(0),
                    wait_tag: "D".into(),
                    chain: vec![],
                })
            },
            state_sets: vec![],
            perm: Perm::None,
            data_valid: false,
            merged_names: vec![],
        }
    }

    fn arc(from: u32, to: u32, acc: Access) -> Arc {
        Arc {
            from: FsmStateId(from),
            event: Event::Access(acc),
            guards: vec![],
            actions: vec![],
            to: FsmStateId(to),
            kind: ArcKind::Normal,
            note: ArcNote::Step2,
        }
    }

    #[test]
    fn merges_identical_transients() {
        // 0 stable; 1 and 2 transient with identical rows pointing at 0.
        let fsm = Fsm {
            protocol: "t".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![state("I", true), state("A", false), state("B", false)],
            arcs: vec![arc(1, 0, Access::Load), arc(2, 0, Access::Load)],
        };
        let (out, merges) = minimize(&fsm);
        assert_eq!(out.states.len(), 2);
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].kept, "A");
        assert_eq!(merges[0].merged, vec!["B".to_string()]);
        assert_eq!(out.state_by_name("B"), out.state_by_name("A"));
    }

    #[test]
    fn distinguishes_differing_rows() {
        let fsm = Fsm {
            protocol: "t".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![state("I", true), state("A", false), state("B", false)],
            arcs: vec![arc(1, 0, Access::Load), arc(2, 0, Access::Store)],
        };
        let (out, merges) = minimize(&fsm);
        assert_eq!(out.states.len(), 3);
        assert!(merges.is_empty());
    }

    #[test]
    fn never_merges_stable_states() {
        // Two stable states with identical (empty) rows must survive.
        let fsm = Fsm {
            protocol: "t".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![state("I", true), state("S", true)],
            arcs: vec![],
        };
        let (out, merges) = minimize(&fsm);
        assert_eq!(out.states.len(), 2);
        assert!(merges.is_empty());
    }

    #[test]
    fn refines_through_targets() {
        // 1→3, 2→4; 3 and 4 differ, so 1 and 2 must not merge.
        let fsm = Fsm {
            protocol: "t".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![
                state("I", true),
                state("A", false),
                state("B", false),
                state("C", false),
                state("D", false),
            ],
            arcs: vec![
                arc(1, 3, Access::Load),
                arc(2, 4, Access::Load),
                arc(3, 0, Access::Load),
                arc(4, 0, Access::Store),
            ],
        };
        let (out, _) = minimize(&fsm);
        assert_eq!(out.states.len(), 5);
    }
}
