//! Recursive-descent parser for the ProtoGen DSL.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> String {
        let t = &self.toks[self.pos];
        format!("{}:{}", t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, k: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            Err(ParseError(format!("expected {k}, found {} at {}", self.peek(), self.here())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => {
                Err(ParseError(format!("expected identifier, found {other} at {}", self.here())))
            }
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == word) {
            self.bump();
            true
        } else {
            false
        }
    }
}

/// Parses DSL source into an AST.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic problem.
pub fn parse(src: &str) -> Result<Spec, ParseError> {
    let toks = tokenize(src).map_err(ParseError)?;
    let mut p = Parser { toks, pos: 0 };

    // protocol NAME;
    if !p.eat_ident("protocol") {
        return Err(ParseError(format!("expected `protocol` header at {}", p.here())));
    }
    let name = p.ident()?;
    p.expect(&TokenKind::Semi)?;

    let mut spec = Spec {
        name,
        ordered: true,
        consistency: "sc".to_string(),
        si_epoch: false,
        messages: vec![],
        cache_states: vec![],
        dir_states: vec![],
        cache_procs: vec![],
        dir_procs: vec![],
        compose: vec![],
    };

    loop {
        match p.peek().clone() {
            TokenKind::Eof => break,
            TokenKind::Ident(word) => match word.as_str() {
                "network" => {
                    p.bump();
                    let mode = p.ident()?;
                    spec.ordered = match mode.as_str() {
                        "ordered" => true,
                        "unordered" => false,
                        other => {
                            return Err(ParseError(format!(
                                "network must be ordered|unordered, found `{other}`"
                            )))
                        }
                    };
                    p.expect(&TokenKind::Semi)?;
                }
                "consistency" => {
                    p.bump();
                    let model = p.ident()?;
                    match model.as_str() {
                        "sc" | "tso" | "weak" => spec.consistency = model,
                        other => {
                            return Err(ParseError(format!(
                                "consistency must be sc|tso|weak, found `{other}`"
                            )))
                        }
                    }
                    p.expect(&TokenKind::Semi)?;
                }
                "si" => {
                    p.bump();
                    let mode = p.ident()?;
                    spec.si_epoch = match mode.as_str() {
                        "epoch" => true,
                        "line" => false,
                        other => {
                            return Err(ParseError(format!(
                                "si must be epoch|line, found `{other}`"
                            )))
                        }
                    };
                    p.expect(&TokenKind::Semi)?;
                }
                "message" => {
                    p.bump();
                    spec.messages.push(parse_message(&mut p)?);
                }
                "cache" => {
                    p.bump();
                    spec.cache_states = parse_states(&mut p)?;
                }
                "directory" => {
                    p.bump();
                    spec.dir_states = parse_states(&mut p)?;
                }
                "compose" => {
                    p.bump();
                    parse_compose(&mut p, &mut spec.compose)?;
                }
                "architecture" => {
                    p.bump();
                    let which = p.ident()?;
                    let procs = parse_arch(&mut p)?;
                    match which.as_str() {
                        "cache" => spec.cache_procs = procs,
                        "directory" => spec.dir_procs = procs,
                        other => {
                            return Err(ParseError(format!(
                                "architecture must be cache|directory, found `{other}`"
                            )))
                        }
                    }
                }
                other => {
                    return Err(ParseError(format!(
                        "unexpected top-level `{other}` at {}",
                        p.here()
                    )))
                }
            },
            other => return Err(ParseError(format!("unexpected {other} at {}", p.here()))),
        }
    }
    Ok(spec)
}

/// `compose { l1: msi(2); llc: mesi; }` — levels leaf-first, each a
/// label, a protocol name, and an optional parenthesized fanout. All
/// words are contextual identifiers, so labels or protocols named
/// `compose` (or any other keyword) parse fine.
fn parse_compose(p: &mut Parser, out: &mut Vec<ComposeLevel>) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while *p.peek() != TokenKind::RBrace {
        let label = p.ident()?;
        p.expect(&TokenKind::Colon)?;
        let protocol = p.ident()?;
        let fanout = if *p.peek() == TokenKind::LParen {
            p.bump();
            let v = match p.bump() {
                TokenKind::Int(v) => v,
                other => {
                    return Err(ParseError(format!(
                        "expected fanout integer, found {other} at {}",
                        p.here()
                    )))
                }
            };
            p.expect(&TokenKind::RParen)?;
            Some(v)
        } else {
            None
        };
        p.expect(&TokenKind::Semi)?;
        out.push(ComposeLevel { label, protocol, fanout });
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(())
}

fn parse_message(p: &mut Parser) -> Result<MessageDecl, ParseError> {
    let name = p.ident()?;
    p.expect(&TokenKind::Colon)?;
    let class = p.ident()?;
    let mut fields = vec![];
    if *p.peek() == TokenKind::LBrace {
        p.bump();
        loop {
            fields.push(p.ident()?);
            if *p.peek() == TokenKind::Comma {
                p.bump();
            } else {
                break;
            }
        }
        p.expect(&TokenKind::RBrace)?;
    }
    let vnet = if p.eat_ident("on") { Some(p.ident()?) } else { None };
    p.expect(&TokenKind::Semi)?;
    Ok(MessageDecl { name, class, fields, vnet })
}

fn parse_states(p: &mut Parser) -> Result<Vec<StateDecl>, ParseError> {
    p.expect(&TokenKind::LBrace)?;
    let mut out = vec![];
    while *p.peek() != TokenKind::RBrace {
        if !p.eat_ident("state") {
            return Err(ParseError(format!("expected `state` at {}", p.here())));
        }
        let name = p.ident()?;
        let mut perm = "none".to_string();
        let mut data = false;
        while *p.peek() != TokenKind::Semi {
            let w = p.ident()?;
            match w.as_str() {
                "read" | "readwrite" | "none" => perm = w,
                "data" => data = true,
                other => return Err(ParseError(format!("unknown state flag `{other}`"))),
            }
        }
        p.expect(&TokenKind::Semi)?;
        out.push(StateDecl { name, perm, data });
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(out)
}

fn parse_arch(p: &mut Parser) -> Result<Vec<Process>, ParseError> {
    p.expect(&TokenKind::LBrace)?;
    let mut out = vec![];
    while *p.peek() != TokenKind::RBrace {
        if !p.eat_ident("process") {
            return Err(ParseError(format!("expected `process` at {}", p.here())));
        }
        p.expect(&TokenKind::LParen)?;
        let state = p.ident()?;
        p.expect(&TokenKind::Comma)?;
        let trigger = p.ident()?;
        p.expect(&TokenKind::RParen)?;
        let guards = parse_guards(p)?;
        p.expect(&TokenKind::LBrace)?;
        let mut body = vec![];
        let mut next = None;
        let mut awaits = vec![];
        loop {
            match p.peek().clone() {
                TokenKind::RBrace => {
                    p.bump();
                    break;
                }
                TokenKind::Arrow => {
                    p.bump();
                    next = Some(p.ident()?);
                    p.expect(&TokenKind::Semi)?;
                }
                TokenKind::Ident(w) if w == "await" => {
                    p.bump();
                    awaits.push(parse_await(p)?);
                }
                _ => body.push(parse_stmt(p)?),
            }
        }
        out.push(Process { state, trigger, guards, body, next, awaits });
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(out)
}

fn parse_guards(p: &mut Parser) -> Result<Vec<String>, ParseError> {
    let mut out = vec![];
    if p.eat_ident("if") {
        loop {
            out.push(p.ident()?);
            if *p.peek() == TokenKind::AndAnd {
                p.bump();
            } else {
                break;
            }
        }
    }
    Ok(out)
}

fn parse_await(p: &mut Parser) -> Result<AwaitBlock, ParseError> {
    let tag = p.ident()?;
    p.expect(&TokenKind::LBrace)?;
    let mut whens = vec![];
    while *p.peek() != TokenKind::RBrace {
        if !p.eat_ident("when") {
            return Err(ParseError(format!("expected `when` at {}", p.here())));
        }
        let msg = p.ident()?;
        let guards = parse_guards(p)?;
        p.expect(&TokenKind::Colon)?;
        let mut stmts = vec![];
        let target;
        loop {
            match p.peek().clone() {
                TokenKind::Arrow => {
                    p.bump();
                    let s = p.ident()?;
                    p.expect(&TokenKind::Semi)?;
                    target = WhenTarget::Done(s);
                    break;
                }
                TokenKind::FatArrow => {
                    p.bump();
                    let s = p.ident()?;
                    p.expect(&TokenKind::Semi)?;
                    target = WhenTarget::Wait(s);
                    break;
                }
                _ => stmts.push(parse_stmt(p)?),
            }
        }
        whens.push(WhenArm { msg, guards, stmts, target });
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(AwaitBlock { tag, whens })
}

fn parse_stmt(p: &mut Parser) -> Result<Stmt, ParseError> {
    let word = p.ident()?;
    if word == "send" {
        let msg = p.ident()?;
        let mut args = vec![];
        if *p.peek() == TokenKind::LParen {
            p.bump();
            while *p.peek() != TokenKind::RParen {
                let mut a = p.ident()?;
                if *p.peek() == TokenKind::Eq {
                    p.bump();
                    match p.bump() {
                        TokenKind::Ident(v) => a = format!("{a}={v}"),
                        TokenKind::Int(v) => a = format!("{a}={v}"),
                        other => return Err(ParseError(format!("bad send argument {other}"))),
                    }
                }
                args.push(a);
                if *p.peek() == TokenKind::Comma {
                    p.bump();
                }
            }
            p.expect(&TokenKind::RParen)?;
        }
        if !p.eat_ident("to") {
            return Err(ParseError(format!("expected `to` in send at {}", p.here())));
        }
        let dst = p.ident()?;
        p.expect(&TokenKind::Semi)?;
        Ok(Stmt::Send { msg, args, dst })
    } else {
        p.expect(&TokenKind::Semi)?;
        Ok(Stmt::Word(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
        protocol Toy;
        network ordered;
        message Get : request;
        message Data : response { data };
        cache { state I; state V read; }
        directory { state I; state V; }
        architecture cache {
            process(V, load) { perform; }
            process(I, load) {
                send Get to dir;
                await D { when Data: copy_data; perform; -> V; }
            }
        }
        architecture directory {
            process(I, Get) { send Data(data) to req; -> V; }
        }
    "#;

    #[test]
    fn parses_toy_protocol() {
        let spec = parse(TOY).unwrap();
        assert_eq!(spec.name, "Toy");
        assert!(spec.ordered);
        assert_eq!(spec.messages.len(), 2);
        assert_eq!(spec.cache_states.len(), 2);
        assert_eq!(spec.cache_procs.len(), 2);
        let issue = &spec.cache_procs[1];
        assert_eq!(issue.awaits.len(), 1);
        assert_eq!(issue.awaits[0].tag, "D");
        assert_eq!(issue.awaits[0].whens[0].target, WhenTarget::Done("V".into()));
    }

    #[test]
    fn parses_guards_and_wait_targets() {
        let src = r#"
            protocol G;
            message M : response { acks };
            message A : response;
            cache { state I; state V readwrite; }
            directory { state I; }
            architecture cache {
                process(I, store) {
                    send M to dir;
                    await AD {
                        when M if acks_complete: perform; -> V;
                        when M if acks_incomplete: set_expected; => A;
                        when A: inc_acks; => AD;
                    }
                    await A {
                        when A if acks_complete: inc_acks; perform; -> V;
                        when A if acks_incomplete: inc_acks; => A;
                    }
                }
            }
            architecture directory { }
        "#;
        let spec = parse(src).unwrap();
        let proc_ = &spec.cache_procs[0];
        assert_eq!(proc_.awaits.len(), 2);
        assert_eq!(proc_.awaits[0].whens[1].target, WhenTarget::Wait("A".into()));
        assert_eq!(proc_.awaits[0].whens[1].guards, vec!["acks_incomplete"]);
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse("protocol X;\nbogus").unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn parses_compose_block() {
        let spec = parse("protocol H; compose { l1: msi(2); llc: mesi; }").unwrap();
        assert_eq!(
            spec.compose,
            vec![
                ComposeLevel { label: "l1".into(), protocol: "msi".into(), fanout: Some(2) },
                ComposeLevel { label: "llc".into(), protocol: "mesi".into(), fanout: None },
            ]
        );
    }

    #[test]
    fn compose_stays_contextual_as_an_identifier() {
        // `compose` is only a keyword at the top level: states, messages,
        // triggers, labels, and protocol names may all use the word.
        let src = r#"
            protocol compose;
            message compose : request;
            cache { state compose readwrite; }
            directory { state I; }
            compose { compose: compose(3); state: compose; }
        "#;
        let spec = parse(src).unwrap();
        assert_eq!(spec.name, "compose");
        assert_eq!(spec.cache_states[0].name, "compose");
        assert_eq!(spec.compose.len(), 2);
        assert_eq!(spec.compose[0].label, "compose");
        assert_eq!(spec.compose[1].label, "state");
    }

    #[test]
    fn rejects_malformed_compose_levels() {
        assert!(parse("protocol H; compose { l1 msi; }").is_err());
        assert!(parse("protocol H; compose { l1: msi(x); }").is_err());
        assert!(parse("protocol H; compose { l1: msi(2) }").is_err());
    }
}
