//! The ProtoGen domain-specific language (§IV-A).
//!
//! The paper's primary input is an SSP written in a DSL "similar in spirit
//! to Teapot and SLICC" (Listing 1). This crate implements that front-end:
//! a tokenizer, a recursive-descent parser, and a lowering pass onto the
//! [`protogen_spec`] IR. The statement vocabulary covers everything the
//! paper's protocols need — message sends with payload sources, the
//! acknowledgment-counter idiom of Listing 1 (`set_expected`, `inc_acks`,
//! `acks_complete`), await blocks with guarded arms, and directory
//! auxiliary-state updates.
//!
//! # Example
//!
//! ```
//! let ssp = protogen_dsl::parse_protocol(protogen_dsl::MSI_PGEN).unwrap();
//! assert_eq!(ssp.name, "MSI");
//! assert_eq!(ssp.cache.states.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod lexer;
mod lower;
mod parser;
mod render;

pub use ast::ComposeLevel;
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};
pub use render::render;

use std::error::Error;
use std::fmt;

/// The bundled MSI protocol source (equivalent to
/// `protogen_protocols::msi()`).
pub const MSI_PGEN: &str = include_str!("../protocols/msi.pgen");

/// The bundled MESI protocol source (equivalent to
/// `protogen_protocols::mesi()`).
pub const MESI_PGEN: &str = include_str!("../protocols/mesi.pgen");

/// The bundled MOSI protocol source (equivalent to
/// `protogen_protocols::mosi()`) — the paper's preprocessing example.
pub const MOSI_PGEN: &str = include_str!("../protocols/mosi.pgen");

/// The bundled MSI+Upgrade protocol source (§V-D1's reinterpretation
/// example; equivalent to `protogen_protocols::msi_upgrade()`).
pub const MSI_UPGRADE_PGEN: &str = include_str!("../protocols/msi_upgrade.pgen");

/// The bundled MSI-for-unordered-networks source (§VI-C's handshake
/// protocol; equivalent to `protogen_protocols::msi_unordered()`).
pub const MSI_UNORDERED_PGEN: &str = include_str!("../protocols/msi_unordered.pgen");

/// The bundled simplified TSO-CC source (§VI-D; equivalent to
/// `protogen_protocols::tso_cc()`).
pub const TSO_CC_PGEN: &str = include_str!("../protocols/tso_cc.pgen");

/// The bundled self-invalidate/self-downgrade source (VIPS-M family;
/// equivalent to `protogen_protocols::si_sd()`).
pub const SI_SD_PGEN: &str = include_str!("../protocols/si_sd.pgen");

/// Front-end errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error during lowering.
    Lower(LowerError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse(e) => write!(f, "{e}"),
            DslError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DslError {}

/// Parses and lowers DSL source into a validated SSP.
///
/// # Errors
///
/// Returns a [`DslError`] describing the first syntactic or semantic
/// problem.
pub fn parse_protocol(src: &str) -> Result<protogen_spec::Ssp, DslError> {
    let ast = parser::parse(src).map_err(DslError::Parse)?;
    lower::lower(&ast).map_err(DslError::Lower)
}

/// Parses a source carrying a `compose { l1: msi(2); llc: mesi; }` block
/// and returns its levels, leaf-first.
///
/// The protocol references come back *by name* — this crate has no
/// protocol registry, so the caller resolves them (the CLI maps each onto
/// `protogen_protocols::by_name` and builds a
/// `protogen_spec::Composition`). A composition source needs only the
/// `protocol NAME;` header and the `compose` block; any flat-protocol
/// sections alongside are parsed but not returned here.
///
/// # Errors
///
/// Returns a [`DslError`] on a syntax error or when the source has no
/// `compose` block.
pub fn parse_composition(src: &str) -> Result<Vec<ComposeLevel>, DslError> {
    let ast = parser::parse(src).map_err(DslError::Parse)?;
    if ast.compose.is_empty() {
        return Err(DslError::Parse(ParseError(format!(
            "`{}` declares no `compose` block",
            ast.name
        ))));
    }
    Ok(ast.compose)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_msi_parses_and_validates() {
        let ssp = parse_protocol(MSI_PGEN).unwrap();
        assert_eq!(ssp.name, "MSI");
        assert_eq!(ssp.cache.states.len(), 3);
        assert_eq!(ssp.directory.states.len(), 3);
        assert!(ssp.msg_by_name("Fwd_GetS").is_some());
    }

    #[test]
    fn bundled_mesi_parses_and_validates() {
        let ssp = parse_protocol(MESI_PGEN).unwrap();
        assert_eq!(ssp.name, "MESI");
        assert_eq!(ssp.cache.states.len(), 4);
        assert_eq!(ssp.directory.states.len(), 3);
    }

    #[test]
    fn bundled_upgrade_and_tso_cc_parse_and_validate() {
        let up = parse_protocol(MSI_UPGRADE_PGEN).unwrap();
        assert!(up.msg_by_name("Upgrade").is_some());
        let tso = parse_protocol(TSO_CC_PGEN).unwrap();
        assert!(tso.msg_by_name("Inv").is_none());
    }

    #[test]
    fn parse_composition_returns_levels_and_rejects_flat_sources() {
        let levels =
            parse_composition("protocol H; compose { l1: msi(2); llc: mesi(2); }").unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].protocol, "msi");
        assert_eq!(levels[1].fanout, Some(2));
        assert!(parse_composition(MSI_PGEN).is_err());
        // And the reverse: a composition source does not lower to one SSP.
        assert!(parse_protocol("protocol H; compose { l1: msi(2); }").is_err());
    }

    #[test]
    fn bundled_mosi_parses_and_validates() {
        let ssp = parse_protocol(MOSI_PGEN).unwrap();
        assert_eq!(ssp.name, "MOSI");
        assert_eq!(ssp.cache.states.len(), 4);
        assert_eq!(ssp.directory.states.len(), 4);
        // The conjunction guard survived the round trip.
        let o = ssp.directory.state_by_name("O").unwrap();
        let put_o = ssp.msg_by_name("PutO").unwrap();
        let entries = ssp.directory.entries_for(o, protogen_spec::Trigger::Msg(put_o));
        assert_eq!(entries[0].guards.len(), 2);
    }
}
