//! Pretty-printer from the AST back to DSL source.
//!
//! The inverse of [`crate::parse`] up to formatting: rendering a parsed
//! [`Spec`] and reparsing the result yields the same AST (and therefore
//! the same lowered SSP). Statements are emitted in the canonical order
//! every bundled source already uses — body, final-state arrow, await
//! blocks — so the round trip is exact for any spec the parser produced
//! from canonically-ordered source. The property tests drive every
//! bundled `.pgen` through parse → render → reparse → lower.
//!
//! Keywords in the grammar are *contextual*: every name position (state,
//! message, trigger, compose label, protocol reference) is a bare
//! identifier the parser never dispatches on, so names that collide with
//! keywords — including the `compose` block header — need no escaping to
//! round-trip. A test below pins that for the worst offenders.

use crate::ast::*;
use std::fmt::Write;

/// Renders a parsed spec back to parseable DSL source.
pub fn render(spec: &Spec) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "protocol {};", spec.name);
    let _ = writeln!(s, "network {};", if spec.ordered { "ordered" } else { "unordered" });
    let _ = writeln!(s, "consistency {};", spec.consistency);
    let _ = writeln!(s, "si {};", if spec.si_epoch { "epoch" } else { "line" });
    if !spec.compose.is_empty() {
        s.push('\n');
        s.push_str("compose {\n");
        for l in &spec.compose {
            let _ = write!(s, "    {}: {}", l.label, l.protocol);
            if let Some(f) = l.fanout {
                let _ = write!(s, "({f})");
            }
            s.push_str(";\n");
        }
        s.push_str("}\n");
    }
    s.push('\n');
    for m in &spec.messages {
        let _ = write!(s, "message {} : {}", m.name, m.class);
        if !m.fields.is_empty() {
            let _ = write!(s, " {{ {} }}", m.fields.join(", "));
        }
        if let Some(v) = &m.vnet {
            let _ = write!(s, " on {v}");
        }
        s.push_str(";\n");
    }
    s.push('\n');
    render_states(&mut s, "cache", &spec.cache_states);
    s.push('\n');
    render_states(&mut s, "directory", &spec.dir_states);
    s.push('\n');
    render_arch(&mut s, "cache", &spec.cache_procs);
    s.push('\n');
    render_arch(&mut s, "directory", &spec.dir_procs);
    s
}

fn render_states(s: &mut String, which: &str, states: &[StateDecl]) {
    let _ = writeln!(s, "{which} {{");
    for st in states {
        let _ = write!(s, "    state {}", st.name);
        if st.perm != "none" {
            let _ = write!(s, " {}", st.perm);
        }
        if st.data {
            s.push_str(" data");
        }
        s.push_str(";\n");
    }
    s.push_str("}\n");
}

fn render_guards(s: &mut String, guards: &[String]) {
    if !guards.is_empty() {
        let _ = write!(s, " if {}", guards.join(" && "));
    }
}

fn render_stmt(s: &mut String, indent: &str, stmt: &Stmt) {
    match stmt {
        Stmt::Send { msg, args, dst } => {
            let _ = write!(s, "{indent}send {msg}");
            if !args.is_empty() {
                let _ = write!(s, "({})", args.join(", "));
            }
            let _ = writeln!(s, " to {dst};");
        }
        Stmt::Word(w) => {
            let _ = writeln!(s, "{indent}{w};");
        }
    }
}

fn render_arch(s: &mut String, which: &str, procs: &[Process]) {
    let _ = writeln!(s, "architecture {which} {{");
    for p in procs {
        let _ = write!(s, "    process({}, {})", p.state, p.trigger);
        render_guards(s, &p.guards);
        s.push_str(" {\n");
        for stmt in &p.body {
            render_stmt(s, "        ", stmt);
        }
        if let Some(next) = &p.next {
            let _ = writeln!(s, "        -> {next};");
        }
        for a in &p.awaits {
            let _ = writeln!(s, "        await {} {{", a.tag);
            for w in &a.whens {
                let _ = write!(s, "            when {}", w.msg);
                render_guards(s, &w.guards);
                s.push(':');
                s.push('\n');
                for stmt in &w.stmts {
                    render_stmt(s, "                ", stmt);
                }
                match &w.target {
                    WhenTarget::Done(st) => {
                        let _ = writeln!(s, "                -> {st};");
                    }
                    WhenTarget::Wait(tag) => {
                        let _ = writeln!(s, "                => {tag};");
                    }
                }
            }
            s.push_str("        }\n");
        }
        s.push_str("    }\n");
    }
    s.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn every_bundled_source_round_trips_through_render() {
        for (name, src) in [
            ("MSI", crate::MSI_PGEN),
            ("MESI", crate::MESI_PGEN),
            ("MOSI", crate::MOSI_PGEN),
            ("MSI_Upgrade", crate::MSI_UPGRADE_PGEN),
            ("MSI_unordered", crate::MSI_UNORDERED_PGEN),
            ("TSO_CC", crate::TSO_CC_PGEN),
            ("SI_SD", crate::SI_SD_PGEN),
        ] {
            let ast = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let rendered = render(&ast);
            let again =
                parse(&rendered).unwrap_or_else(|e| panic!("{name} rendered: {e}\n{rendered}"));
            assert_eq!(ast, again, "{name}: render/reparse changed the AST");
        }
    }

    #[test]
    fn rendering_is_idempotent() {
        let ast = parse(crate::SI_SD_PGEN).unwrap();
        let once = render(&ast);
        let twice = render(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    /// A spec with a `compose` block — placed at the *end* of the source,
    /// away from the renderer's canonical position — round-trips exactly,
    /// and rendering it is idempotent.
    #[test]
    fn compose_blocks_round_trip_through_render() {
        let src = r#"
            protocol Stack;
            network unordered;
            message Get : request;
            message Data : response { data };
            cache { state I; state V read; }
            directory { state I; state V; }
            architecture cache {
                process(I, load) {
                    send Get to dir;
                    await D { when Data: copy_data; perform; -> V; }
                }
            }
            architecture directory {
                process(I, Get) { send Data(data) to req; -> V; }
            }
            compose { l1: msi(2); llc: mesi; }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.compose.len(), 2);
        let rendered = render(&ast);
        let again = parse(&rendered).unwrap_or_else(|e| panic!("{e}\n{rendered}"));
        assert_eq!(ast, again, "render/reparse changed the AST");
        assert_eq!(rendered, render(&again), "rendering not idempotent");
    }

    /// Names colliding with keywords — old and new (`compose`) — survive
    /// the round trip without escaping, because every name position in
    /// the grammar is contextual.
    #[test]
    fn keyword_colliding_names_round_trip() {
        let src = r#"
            protocol compose;
            message compose : request;
            message state : response { data };
            cache { state compose readwrite; state state; }
            directory { state process; }
            architecture cache {
                process(compose, load) { perform; }
                process(state, compose) { perform; -> compose; }
            }
            architecture directory { }
            compose { compose: compose(2); state: state; }
        "#;
        let ast = parse(src).unwrap();
        let rendered = render(&ast);
        let again = parse(&rendered).unwrap_or_else(|e| panic!("{e}\n{rendered}"));
        assert_eq!(ast, again, "keyword-colliding names changed across render/reparse");
    }
}
