//! Abstract syntax tree for the ProtoGen DSL.

/// A parsed protocol specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// Protocol name from the `protocol NAME;` header.
    pub name: String,
    /// `network ordered;` / `network unordered;` (default ordered).
    pub ordered: bool,
    /// `consistency sc|tso|weak;` (default `sc`).
    pub consistency: String,
    /// `si epoch;` — self-invalidations fire as whole-cache epochs
    /// (default per-line, `si line;`).
    pub si_epoch: bool,
    /// Message declarations.
    pub messages: Vec<MessageDecl>,
    /// Cache state declarations.
    pub cache_states: Vec<StateDecl>,
    /// Directory state declarations.
    pub dir_states: Vec<StateDecl>,
    /// Cache behaviour (`architecture cache { … }`).
    pub cache_procs: Vec<Process>,
    /// Directory behaviour (`architecture directory { … }`).
    pub dir_procs: Vec<Process>,
    /// Hierarchy levels from a `compose { … }` block, leaf-first
    /// (empty for a flat protocol spec).
    pub compose: Vec<ComposeLevel>,
}

/// One level of a `compose { l1: msi(2); llc: mesi; }` block.
///
/// The protocol is referenced *by name* — this crate has no protocol
/// registry, so resolution to a concrete SSP (and from there to a
/// `protogen_spec::Composition`) happens in the caller, which knows
/// where its protocols live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposeLevel {
    /// Level label (`l1`, `llc`).
    pub label: String,
    /// Name of the protocol instantiated at this level.
    pub protocol: String,
    /// Nodes of this level per next-level parent (`msi(2)`); `None`
    /// means unspecified, which resolvers treat as 1.
    pub fanout: Option<u64>,
}

/// `message Data : response { data, acks } on forward_net;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageDecl {
    /// Message name.
    pub name: String,
    /// `request` / `forward` / `response`.
    pub class: String,
    /// Payload flags: `data`, `acks`.
    pub fields: Vec<String>,
    /// Optional virtual-network override.
    pub vnet: Option<String>,
}

/// `state M readwrite;` — permission is `none` (default), `read`,
/// `readwrite`; `data` marks a valid copy with read-only permission (O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDecl {
    /// State name.
    pub name: String,
    /// Permission keyword.
    pub perm: String,
    /// Explicit `data` flag.
    pub data: bool,
}

/// One `process(STATE, TRIGGER) { … }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    /// The stable state.
    pub state: String,
    /// `load` / `store` / `replacement` or a message name.
    pub trigger: String,
    /// Optional guard conjunction (`if owner && has_sharers`).
    pub guards: Vec<String>,
    /// Statements before the first `await`.
    pub body: Vec<Stmt>,
    /// Final-state arrow for await-free processes (`-> S;`).
    pub next: Option<String>,
    /// Await blocks, in order.
    pub awaits: Vec<AwaitBlock>,
}

/// `await TAG { when … }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwaitBlock {
    /// Naming tag (`AD`, `A`, `D`).
    pub tag: String,
    /// Arcs.
    pub whens: Vec<WhenArm>,
}

/// `when MSG if GUARD: stmts -> STATE;` or `… => TAG;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhenArm {
    /// Awaited message.
    pub msg: String,
    /// Guard conjunction.
    pub guards: Vec<String>,
    /// Statements.
    pub stmts: Vec<Stmt>,
    /// Where the arm leads.
    pub target: WhenTarget,
}

/// Target of a `when` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhenTarget {
    /// `-> STATE` — the transaction completes.
    Done(String),
    /// `=> TAG` — move to (or stay in) an await block.
    Wait(String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `send MSG(args) to DST;`
    Send {
        /// Message name.
        msg: String,
        /// Payload arguments: `data`, `data=msg`, `acks`, `acks=msg`,
        /// `acks=0`.
        args: Vec<String>,
        /// `dir`, `req`, `sender`, `owner`, `sharers`.
        dst: String,
    },
    /// A keyword action: `perform`, `copy_data`, `inc_acks`, …
    Word(String),
}
