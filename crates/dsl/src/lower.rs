//! Lowering: AST → `protogen_spec::Ssp`.

use crate::ast::*;
use protogen_spec::{
    Access, AckSrc, Action, DataSrc, Dst, Effect, EntryNote, Guard, MachineKind, MachineSsp,
    MemoryModel, MsgClass, MsgDecl, MsgId, Perm, ReqField, SendSpec, SspEntry, StableDecl, Trigger,
    VirtualNet, WaitArc, WaitChain, WaitNode, WaitTo,
};

/// Lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a parsed [`Spec`] into a validated [`protogen_spec::Ssp`].
///
/// # Errors
///
/// Returns a [`LowerError`] for unknown names, malformed send arguments,
/// or a specification the IR validator rejects.
pub fn lower(spec: &Spec) -> Result<protogen_spec::Ssp, LowerError> {
    if !spec.compose.is_empty() {
        return Err(LowerError(
            "composition specs do not lower to a single SSP; resolve the `compose` levels \
             against a protocol registry (see `parse_composition`)"
                .into(),
        ));
    }
    let mut messages = Vec::new();
    for m in &spec.messages {
        let class = match m.class.as_str() {
            "request" => MsgClass::Request,
            "forward" => MsgClass::Forward,
            "response" => MsgClass::Response,
            other => return Err(LowerError(format!("unknown message class `{other}`"))),
        };
        let mut decl = MsgDecl::new(m.name.clone(), class);
        for f in &m.fields {
            match f.as_str() {
                "data" => decl.carries_data = true,
                "acks" => decl.carries_ack_count = true,
                other => return Err(LowerError(format!("unknown message field `{other}`"))),
            }
        }
        if let Some(v) = &m.vnet {
            decl.vnet = match v.as_str() {
                "request_net" => VirtualNet::Request,
                "forward_net" => VirtualNet::Forward,
                "response_net" => VirtualNet::Response,
                other => return Err(LowerError(format!("unknown virtual network `{other}`"))),
            };
        }
        messages.push(decl);
    }

    let lower_states = |decls: &[StateDecl]| -> Result<Vec<StableDecl>, LowerError> {
        decls
            .iter()
            .map(|d| {
                let perm = match d.perm.as_str() {
                    "none" => Perm::None,
                    "read" => Perm::Read,
                    "readwrite" => Perm::ReadWrite,
                    other => return Err(LowerError(format!("unknown permission `{other}`"))),
                };
                Ok(StableDecl {
                    name: d.name.clone(),
                    perm,
                    data_valid: d.data || perm != Perm::None,
                })
            })
            .collect()
    };

    let consistency: MemoryModel = spec.consistency.parse().map_err(LowerError)?;
    let mut ssp = protogen_spec::Ssp {
        name: spec.name.clone(),
        messages,
        cache: MachineSsp::new(MachineKind::Cache),
        directory: MachineSsp::new(MachineKind::Directory),
        network_ordered: spec.ordered,
        consistency,
        si_epoch: spec.si_epoch,
    };
    ssp.cache.states = lower_states(&spec.cache_states)?;
    ssp.directory.states = lower_states(&spec.dir_states)?;

    let cache_entries = lower_procs(&ssp, MachineKind::Cache, &spec.cache_procs)?;
    ssp.cache.entries = cache_entries;
    let dir_entries = lower_procs(&ssp, MachineKind::Directory, &spec.dir_procs)?;
    ssp.directory.entries = dir_entries;

    ssp.validate().map_err(|e| LowerError(e.to_string()))?;
    Ok(ssp)
}

fn lower_procs(
    ssp: &protogen_spec::Ssp,
    kind: MachineKind,
    procs: &[Process],
) -> Result<Vec<SspEntry>, LowerError> {
    let machine = ssp.machine(kind);
    let mut out = Vec::new();
    for p in procs {
        let state = machine
            .state_by_name(&p.state)
            .ok_or_else(|| LowerError(format!("unknown state `{}`", p.state)))?;
        // The SI/SD primitives are spelled as their own triggers in the DSL
        // (`process(S, self_invalidate)`) but are replacement transitions
        // with a provenance note underneath: spontaneous evictions and
        // downgrades reuse the whole replacement machinery.
        let (trigger, note) = match p.trigger.as_str() {
            "load" => (Trigger::Access(Access::Load), EntryNote::Demand),
            "store" => (Trigger::Access(Access::Store), EntryNote::Demand),
            "replacement" => (Trigger::Access(Access::Replacement), EntryNote::Demand),
            "self_invalidate" => (Trigger::Access(Access::Replacement), EntryNote::SelfInvalidate),
            "self_downgrade" => (Trigger::Access(Access::Replacement), EntryNote::SelfDowngrade),
            name => (Trigger::Msg(msg_id(ssp, name)?), EntryNote::Demand),
        };
        let guards = p.guards.iter().map(|g| guard(g)).collect::<Result<Vec<_>, _>>()?;
        let actions = p.body.iter().map(|s| stmt(ssp, kind, s)).collect::<Result<Vec<_>, _>>()?;
        let effect = if p.awaits.is_empty() {
            let next = p
                .next
                .as_ref()
                .map(|n| {
                    machine
                        .state_by_name(n)
                        .ok_or_else(|| LowerError(format!("unknown state `{n}`")))
                })
                .transpose()?;
            Effect::Local { actions, next }
        } else {
            let tags: Vec<&str> = p.awaits.iter().map(|a| a.tag.as_str()).collect();
            let mut nodes = Vec::new();
            for blk in &p.awaits {
                let mut arcs = Vec::new();
                for arm in &blk.whens {
                    let to = match &arm.target {
                        WhenTarget::Done(s) => WaitTo::Done(
                            machine
                                .state_by_name(s)
                                .ok_or_else(|| LowerError(format!("unknown state `{s}`")))?,
                        ),
                        WhenTarget::Wait(tag) => {
                            let idx = tags
                                .iter()
                                .position(|t| *t == tag)
                                .ok_or_else(|| LowerError(format!("unknown await tag `{tag}`")))?;
                            WaitTo::Wait(idx)
                        }
                    };
                    arcs.push(WaitArc {
                        msg: msg_id(ssp, &arm.msg)?,
                        guards: arm.guards.iter().map(|g| guard(g)).collect::<Result<_, _>>()?,
                        actions: arm
                            .stmts
                            .iter()
                            .map(|s| stmt(ssp, kind, s))
                            .collect::<Result<_, _>>()?,
                        to,
                    });
                }
                nodes.push(WaitNode { tag: blk.tag.clone(), arcs });
            }
            Effect::Issue { request: actions, chain: WaitChain { nodes } }
        };
        out.push(SspEntry { state, trigger, guards, effect, note });
    }
    Ok(out)
}

fn msg_id(ssp: &protogen_spec::Ssp, name: &str) -> Result<MsgId, LowerError> {
    ssp.msg_by_name(name).ok_or_else(|| LowerError(format!("unknown message `{name}`")))
}

fn guard(g: &str) -> Result<Guard, LowerError> {
    Ok(match g {
        "ack_zero" => Guard::AckCountIsZero,
        "ack_nonzero" => Guard::AckCountNonZero,
        "acks_complete" => Guard::AcksComplete,
        "acks_incomplete" => Guard::AcksIncomplete,
        "owner" => Guard::ReqIsOwner,
        "not_owner" => Guard::ReqIsNotOwner,
        "sharer" => Guard::ReqInSharers,
        "not_sharer" => Guard::ReqNotInSharers,
        "last_sharer" => Guard::ReqIsLastSharer,
        "not_last_sharer" => Guard::ReqIsNotLastSharer,
        "no_sharers" => Guard::SharersEmpty,
        "has_sharers" => Guard::SharersNonEmpty,
        "no_other_sharers" => Guard::NoSharersExceptReq,
        "other_sharers" => Guard::SomeSharersExceptReq,
        other => return Err(LowerError(format!("unknown guard `{other}`"))),
    })
}

fn stmt(ssp: &protogen_spec::Ssp, kind: MachineKind, s: &Stmt) -> Result<Action, LowerError> {
    match s {
        Stmt::Send { msg, args, dst } => {
            let dst = match dst.as_str() {
                "dir" => Dst::Dir,
                "req" => Dst::Req,
                "sender" => Dst::Sender,
                "owner" => Dst::Owner,
                "sharers" => Dst::SharersExceptReq,
                other => return Err(LowerError(format!("unknown destination `{other}`"))),
            };
            let mut sp = SendSpec::new(msg_id(ssp, msg)?, dst);
            // Requests carry the sender as requestor; everything a machine
            // emits on behalf of a message propagates that message's
            // requestor.
            if kind == MachineKind::Directory || !matches!(dst, Dst::Dir) {
                sp.req = ReqField::FromMsg;
            }
            for a in args {
                match a.as_str() {
                    "data" => sp.data = Some(DataSrc::OwnBlock),
                    "data=msg" => sp.data = Some(DataSrc::FromMsg),
                    "acks" => sp.ack_count = Some(AckSrc::SharersExceptReqCount),
                    "acks=msg" => sp.ack_count = Some(AckSrc::FromMsg),
                    "acks=0" => sp.ack_count = Some(AckSrc::Zero),
                    other => return Err(LowerError(format!("unknown send argument `{other}`"))),
                }
            }
            Ok(Action::Send(sp))
        }
        Stmt::Word(w) => Ok(match w.as_str() {
            "perform" => Action::PerformAccess,
            "copy_data" => Action::CopyDataFromMsg,
            "invalidate" => Action::InvalidateData,
            "set_expected" => Action::SetExpectedAcksFromMsg,
            "inc_acks" => Action::IncAcksReceived,
            "reset_acks" => Action::ResetAcks,
            "set_owner" => Action::SetOwnerToReq,
            "clear_owner" => Action::ClearOwner,
            "add_sharer" => Action::AddReqToSharers,
            "add_owner_to_sharers" => Action::AddOwnerToSharers,
            "remove_sharer" => Action::RemoveReqFromSharers,
            "clear_sharers" => Action::ClearSharers,
            other => return Err(LowerError(format!("unknown action `{other}`"))),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn lowers_toy_protocol() {
        let src = r#"
            protocol Toy;
            message Get : request;
            message Data : response { data };
            cache { state I; state V read; }
            directory { state I; state V; }
            architecture cache {
                process(V, load) { perform; }
                process(I, load) {
                    send Get to dir;
                    await D { when Data: copy_data; perform; -> V; }
                }
            }
            architecture directory {
                process(I, Get) { send Data(data) to req; add_sharer; -> V; }
            }
        "#;
        let ssp = lower(&parse(src).unwrap()).unwrap();
        assert_eq!(ssp.name, "Toy");
        assert_eq!(ssp.cache.states.len(), 2);
        // The issue process produced an Issue effect with one await node.
        let i = ssp.cache.state_by_name("I").unwrap();
        let entries = ssp.cache.entries_for(i, Trigger::Access(Access::Load));
        assert!(
            matches!(entries[0].effect, Effect::Issue { ref chain, .. } if chain.nodes.len() == 1)
        );
    }

    #[test]
    fn unknown_names_are_rejected() {
        let src = r#"
            protocol Bad;
            message Get : request;
            cache { state I; }
            directory { state I; }
            architecture cache {
                process(I, load) { send Nope to dir; }
            }
            architecture directory { }
        "#;
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("Nope"));
    }
}
