//! Tokenizer for the ProtoGen DSL.

use std::fmt;

/// A token with its source position (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `->` (done target)
    Arrow,
    /// `=>` (wait target)
    FatArrow,
    /// `&&`
    AndAnd,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::FatArrow => f.write_str("`=>`"),
            TokenKind::AndAnd => f.write_str("`&&`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Tokenizes `src`. Line (`//`) and block (`/* */`) comments are skipped.
///
/// # Errors
///
/// Returns a message with position on an unexpected character or an
/// unterminated block comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line, col })
        };
    }

    while i < n {
        let c = bytes[i];
        let advance = |i: &mut usize, col: &mut usize| {
            *i += 1;
            *col += 1;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(&mut i, &mut col),
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= n {
                        return Err(format!("unterminated block comment at {sl}:{sc}"));
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '{' => {
                push!(TokenKind::LBrace);
                advance(&mut i, &mut col);
            }
            '}' => {
                push!(TokenKind::RBrace);
                advance(&mut i, &mut col);
            }
            '(' => {
                push!(TokenKind::LParen);
                advance(&mut i, &mut col);
            }
            ')' => {
                push!(TokenKind::RParen);
                advance(&mut i, &mut col);
            }
            ';' => {
                push!(TokenKind::Semi);
                advance(&mut i, &mut col);
            }
            ':' => {
                push!(TokenKind::Colon);
                advance(&mut i, &mut col);
            }
            ',' => {
                push!(TokenKind::Comma);
                advance(&mut i, &mut col);
            }
            '-' if i + 1 < n && bytes[i + 1] == '>' => {
                push!(TokenKind::Arrow);
                i += 2;
                col += 2;
            }
            '=' if i + 1 < n && bytes[i + 1] == '>' => {
                push!(TokenKind::FatArrow);
                i += 2;
                col += 2;
            }
            '=' => {
                push!(TokenKind::Eq);
                advance(&mut i, &mut col);
            }
            '&' if i + 1 < n && bytes[i + 1] == '&' => {
                push!(TokenKind::AndAnd);
                i += 2;
                col += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v = text.parse::<u64>().map_err(|_| format!("bad integer at {line}"))?;
                out.push(Token { kind: TokenKind::Int(v), line, col });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let startcol = col;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token { kind: TokenKind::Ident(text), line, col: startcol });
            }
            other => return Err(format!("unexpected character `{other}` at {line}:{col}")),
        }
    }
    out.push(Token { kind: TokenKind::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_symbols_and_idents() {
        let toks = tokenize("process(I, load) { send GetS to dir; -> S; }").unwrap();
        let kinds: Vec<_> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "process"));
        assert!(kinds.contains(&&TokenKind::Arrow));
        assert_eq!(*kinds.last().unwrap(), &TokenKind::Eof);
    }

    #[test]
    fn skips_comments() {
        let toks = tokenize("a // line\n/* block\nstill */ b").unwrap();
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("a\nb").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a $ b").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
