//! Per-machine delta compression for canonical state encodings.
//!
//! A successor state differs from its parent in one machine and a couple
//! of channel queues, and consecutive frontier-arena entries (BFS
//! siblings) share most of their bytes too — so storing every frontier
//! state as a full [`crate::SysState::encode`] string wastes most of the
//! arena on repetition. This module exploits the encoding's *sectioned*
//! structure instead of running a generic byte matcher: a flat encoding for
//! `n` caches is, in order, `n` cache-block sections, one directory
//! section, `(n+1)²` channel-queue sections, and the one-byte ghost
//! value, and every section's length is recoverable from its own bytes
//! (the length prefixes [`crate::SysState::encode_permuted_to`] emits).
//! A leveled encoding ([`crate::HierChecker`]) is the same four groups
//! with different counts, so the walker is parameterized by a
//! [`SectionMap`] derived from either topology rather than hard-coding
//! the flat `n + 2 + (n+1)²` layout.
//!
//! The delta of `target` against `base` is a section bitmask (one bit per
//! section, set = changed) followed by the raw bytes of exactly the
//! changed target sections. Applying a delta walks `base` section by
//! section, copying unchanged sections and splicing changed ones from the
//! payload — `O(len)` in both directions, no searching. When states
//! differ in one machine the delta is the bitmask (`⌈S/8⌉` bytes, S ≈ 50
//! at 6 caches) plus a handful of section bytes, typically 4–8× smaller
//! than the full encoding. The codec is lossless by construction, so the
//! checker's determinism contract is untouched; `delta_prop` pins
//! `apply_delta(base, encode_delta(base, target)) == target` over
//! reachable protocol states, with [`crate::SysState::decode`] as the
//! end-to-end inverse.

/// Which kind of section the walker is positioned on (the kinds have
/// different length rules).
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// One cache block: 7 fixed bytes (u16 state, data, acks received,
    /// acks expected, pending, chain-slot count) + 2 per chain slot.
    Cache,
    /// One directory entry: 6 fixed bytes + 2 per chain slot.
    Dir,
    /// One `(src, dst)` channel queue: 1 length byte + 7 per message.
    Channel,
    /// The ghost-memory value: 1 byte.
    Ghost,
}

/// Length of the section of `kind` starting at `bytes[pos]`.
fn section_len(bytes: &[u8], pos: usize, kind: Kind) -> usize {
    match kind {
        Kind::Cache => 7 + 2 * bytes[pos + 6] as usize,
        Kind::Dir => 6 + 2 * bytes[pos + 5] as usize,
        Kind::Channel => 1 + 7 * bytes[pos] as usize,
        Kind::Ghost => 1,
    }
}

/// The section layout of one encoding family. Both the flat encoding
/// ([`crate::SysState::encode`]) and the leveled one
/// ([`crate::HierChecker`]) group their sections the same way — every
/// cache block first, then every directory entry, then every channel
/// queue, then the ghost byte — so a layout is fully described by three
/// counts. Copy-sized by design: the delta hot path builds one per call
/// without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionMap {
    caches: usize,
    dirs: usize,
    channels: usize,
}

impl SectionMap {
    /// The flat `n`-cache layout: `n` cache sections, one directory,
    /// `(n+1)²` channels.
    pub fn flat(n_caches: usize) -> Self {
        SectionMap { caches: n_caches, dirs: 1, channels: (n_caches + 1) * (n_caches + 1) }
    }

    /// A leveled layout: `cache_counts[jm]` blocks per machine level and
    /// one `(parents, fanout)` subnet shape per protocol level, each
    /// contributing `parents` directory sections and `parents·(fanout+1)²`
    /// channel sections (the shape [`crate::HierChecker::topology`]
    /// reports). `SectionMap::leveled(&[n], &[(1, n)])` equals
    /// [`SectionMap::flat`]`(n)` — the layouts coincide by construction.
    pub fn leveled(cache_counts: &[usize], subnets: &[(usize, usize)]) -> Self {
        SectionMap {
            caches: cache_counts.iter().sum(),
            dirs: subnets.iter().map(|&(p, _)| p).sum(),
            channels: subnets.iter().map(|&(p, f)| p * (f + 1) * (f + 1)).sum(),
        }
    }

    /// Number of sections in an encoding of this layout.
    pub fn section_count(&self) -> usize {
        self.caches + self.dirs + self.channels + 1
    }

    /// Section kinds in encoding order.
    fn kinds(&self) -> impl Iterator<Item = Kind> {
        std::iter::repeat_n(Kind::Cache, self.caches)
            .chain(std::iter::repeat_n(Kind::Dir, self.dirs))
            .chain(std::iter::repeat_n(Kind::Channel, self.channels))
            .chain(std::iter::once(Kind::Ghost))
    }

    /// Appends to `out` the delta that rewrites `base` into `target`.
    /// Both must be complete encodings of this layout. Returns the
    /// delta's length in bytes — callers fall back to storing `target`
    /// verbatim when the delta is not actually smaller.
    pub fn encode_delta(&self, base: &[u8], target: &[u8], out: &mut Vec<u8>) -> usize {
        let mask_start = out.len();
        out.resize(mask_start + self.section_count().div_ceil(8), 0);
        let (mut bp, mut tp) = (0usize, 0usize);
        for (i, kind) in self.kinds().enumerate() {
            let bl = section_len(base, bp, kind);
            let tl = section_len(target, tp, kind);
            if base[bp..bp + bl] != target[tp..tp + tl] {
                out[mask_start + i / 8] |= 1 << (i % 8);
                out.extend_from_slice(&target[tp..tp + tl]);
            }
            bp += bl;
            tp += tl;
        }
        debug_assert_eq!(bp, base.len(), "base is not a complete encoding");
        debug_assert_eq!(tp, target.len(), "target is not a complete encoding");
        out.len() - mask_start
    }

    /// Appends to `out` the full encoding reconstructed from `base` and a
    /// `delta` produced by [`SectionMap::encode_delta`] against that same
    /// base.
    ///
    /// # Panics
    ///
    /// Panics (via slice bounds) when `delta` was not produced against
    /// `base` under this layout — deltas only ever travel inside the
    /// checker's frontier arenas, so a mismatch is a checker bug, not an
    /// input condition.
    pub fn apply_delta(&self, base: &[u8], delta: &[u8], out: &mut Vec<u8>) {
        let mask_len = self.section_count().div_ceil(8);
        let (mut bp, mut dp) = (0usize, mask_len);
        for (i, kind) in self.kinds().enumerate() {
            let bl = section_len(base, bp, kind);
            if delta[i / 8] & (1 << (i % 8)) != 0 {
                let tl = section_len(delta, dp, kind);
                out.extend_from_slice(&delta[dp..dp + tl]);
                dp += tl;
            } else {
                out.extend_from_slice(&base[bp..bp + bl]);
            }
            bp += bl;
        }
        debug_assert_eq!(bp, base.len(), "base is not a complete encoding");
        debug_assert_eq!(dp, delta.len(), "trailing bytes after a complete delta");
    }
}

/// [`SectionMap::encode_delta`] over the flat `n`-cache layout — the
/// explorer's hot-path entry point.
pub fn encode_delta(n_caches: usize, base: &[u8], target: &[u8], out: &mut Vec<u8>) -> usize {
    SectionMap::flat(n_caches).encode_delta(base, target, out)
}

/// [`SectionMap::apply_delta`] over the flat `n`-cache layout.
pub fn apply_delta(n_caches: usize, base: &[u8], delta: &[u8], out: &mut Vec<u8>) {
    SectionMap::flat(n_caches).apply_delta(base, delta, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SysState;
    use protogen_runtime::{Msg, NodeId};
    use protogen_spec::{Access, MsgId};

    fn roundtrip(n: usize, base: &SysState, target: &SysState) -> usize {
        let (eb, et) = (base.encode(), target.encode());
        let mut delta = Vec::new();
        let dlen = encode_delta(n, &eb, &et, &mut delta);
        assert_eq!(dlen, delta.len());
        let mut rebuilt = Vec::new();
        apply_delta(n, &eb, &delta, &mut rebuilt);
        assert_eq!(rebuilt, et, "delta did not reconstruct the target");
        assert_eq!(&SysState::decode(&rebuilt, n), target);
        dlen
    }

    #[test]
    fn identical_states_delta_to_the_bare_mask() {
        for n in 2..=6usize {
            let s = SysState::initial(n);
            let dlen = roundtrip(n, &s, &s);
            assert_eq!(dlen, SectionMap::flat(n).section_count().div_ceil(8), "n={n}");
        }
    }

    #[test]
    fn leveled_one_level_layout_equals_flat() {
        for n in 1..=6usize {
            assert_eq!(SectionMap::leveled(&[n], &[(1, n)]), SectionMap::flat(n), "n={n}");
        }
        // A 2×2 two-level stack: 4+2 caches, 2+1 dirs, 2·9+9 channels.
        let m = SectionMap::leveled(&[4, 2], &[(2, 2), (1, 2)]);
        assert_eq!(m.section_count(), 6 + 3 + 27 + 1);
    }

    #[test]
    fn single_machine_changes_stay_small() {
        let n = 4;
        let base = SysState::initial(n);
        let mut target = base.clone();
        target.caches[2].data = Some(1);
        target.caches[2].pending = Some(Access::Store);
        let dlen = roundtrip(n, &base, &target);
        // Mask + the one rewritten cache section (7 bytes).
        assert_eq!(dlen, SectionMap::flat(n).section_count().div_ceil(8) + 7);
        assert!(dlen < base.encode().len() / 2, "delta not smaller than full encoding");
    }

    #[test]
    fn variable_length_sections_round_trip() {
        // Queue growth, chain slots, and ghost flips all shift section
        // boundaries — the walker must resynchronize from content alone.
        let n = 3;
        let mut base = SysState::initial(n);
        base.send(Msg {
            mtype: MsgId(4),
            src: NodeId(0),
            dst: NodeId(3),
            req: NodeId(0),
            ack_count: Some(1),
            data: Some(1),
        });
        let mut target = base.clone();
        target.send(Msg {
            mtype: MsgId(2),
            src: NodeId(0),
            dst: NodeId(3),
            req: NodeId(2),
            ack_count: None,
            data: None,
        });
        target.dir.chain_slots.push((NodeId(1), 2));
        target.caches[0].chain_slots.push((NodeId(2), 1));
        target.ghost = 1;
        roundtrip(n, &base, &target);
        // And the reverse direction (sections shrink).
        roundtrip(n, &target, &base);
    }
}
