//! Explicit-state reachability exploration with invariant checking.

use crate::system::{permutations, SysState};
use protogen_runtime::{apply, select_arc, MachineCtx, Msg, NodeId};
use protogen_spec::{Access, Event, Fsm, Perm};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// Model-checker configuration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of caches (the paper verifies with 3, the most Murϕ could
    /// handle without exhausting memory).
    pub n_caches: usize,
    /// Abort exploration after this many states.
    pub max_states: usize,
    /// Store values cycle through `0..value_domain` (small domain, the
    /// standard bounding discipline).
    pub value_domain: u8,
    /// Error out when a channel exceeds this length.
    pub channel_cap: usize,
    /// Point-to-point ordered channels (`true`) or arbitrary reordering.
    pub ordered: bool,
    /// Check the single-writer/multiple-reader invariant over permission
    /// states.
    pub check_swmr: bool,
    /// Check that loads performed with read permission return the most
    /// recent store (ghost memory).
    pub check_data_value: bool,
    /// Canonicalize states under cache-id permutation (Murϕ scalarsets).
    pub symmetry: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            n_caches: 3,
            max_states: 20_000_000,
            value_domain: 2,
            channel_cap: 8,
            ordered: true,
            check_swmr: true,
            check_data_value: true,
            symmetry: true,
        }
    }
}

impl McConfig {
    /// Configuration with `n` caches.
    pub fn with_caches(n: usize) -> Self {
        McConfig { n_caches: n, ..McConfig::default() }
    }
}

/// One scheduling decision of the explored system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Deliver the message at position `idx` of channel `src → dst`.
    Deliver {
        /// Source node.
        src: u8,
        /// Destination node.
        dst: u8,
        /// Queue position (always 0 with ordered channels).
        idx: u8,
    },
    /// Cache `cache` issues `access`.
    IssueAccess {
        /// The cache.
        cache: u8,
        /// The access.
        access: Access,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Deliver { src, dst, idx } => write!(f, "deliver n{src}→n{dst}[{idx}]"),
            Step::IssueAccess { cache, access } => write!(f, "cache n{cache} issues {access}"),
        }
    }
}

/// Why checking failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two caches hold conflicting permissions simultaneously.
    Swmr(String),
    /// A load returned a value other than the most recent store.
    DataValue(String),
    /// A non-quiescent state has no deliverable message.
    Deadlock,
    /// A message arrived for which the controller has no transition — the
    /// generated protocol is incomplete.
    UnexpectedMessage(String),
    /// A channel exceeded its capacity bound.
    ChannelOverflow(String),
    /// The runtime rejected an action (a generator bug).
    Exec(String),
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Swmr(d) => write!(f, "SWMR violation: {d}"),
            ViolationKind::DataValue(d) => write!(f, "data-value violation: {d}"),
            ViolationKind::Deadlock => f.write_str("deadlock"),
            ViolationKind::UnexpectedMessage(d) => write!(f, "unexpected message: {d}"),
            ViolationKind::ChannelOverflow(d) => write!(f, "channel overflow: {d}"),
            ViolationKind::Exec(d) => write!(f, "execution error: {d}"),
        }
    }
}

/// A violation with its counterexample trace (one line per step from the
/// initial state).
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable steps from the initial state to the violation.
    pub trace: Vec<String>,
}

/// Outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Distinct (canonicalized) states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// Whether exploration stopped at `max_states` before exhausting the
    /// space.
    pub hit_state_limit: bool,
    /// Wall-clock seconds spent exploring.
    pub seconds: f64,
}

impl CheckResult {
    /// Whether the protocol passed every check over the explored space.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.hit_state_limit
    }
}

/// The model checker: explores every reachable state of N caches + the
/// directory running the generated FSMs, checking SWMR, the data-value
/// invariant, deadlock freedom, and protocol completeness.
#[derive(Debug)]
pub struct ModelChecker<'a> {
    cache_fsm: &'a Fsm,
    dir_fsm: &'a Fsm,
    cfg: McConfig,
    perms: Vec<Vec<u8>>,
}

impl<'a> ModelChecker<'a> {
    /// Creates a checker for the given controllers.
    pub fn new(cache_fsm: &'a Fsm, dir_fsm: &'a Fsm, cfg: McConfig) -> Self {
        let perms = permutations(cfg.n_caches);
        ModelChecker { cache_fsm, dir_fsm, cfg, perms }
    }

    /// Runs breadth-first exploration until exhaustion, a violation, or the
    /// state limit.
    pub fn run(&self) -> CheckResult {
        let start = Instant::now();
        let initial = SysState::initial(self.cfg.n_caches);
        let mut visited: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut parents: Vec<(u32, Option<Step>)> = Vec::new();
        let mut queue: VecDeque<(SysState, u32)> = VecDeque::new();
        let mut transitions = 0usize;

        visited.insert(self.encode(&initial), 0);
        parents.push((0, None));
        queue.push_back((initial, 0));

        while let Some((state, id)) = queue.pop_front() {
            let mut any_delivery = false;

            for step in self.steps(&state) {
                match self.successor(&state, step) {
                    Err(kind) => {
                        let v =
                            Violation { kind, trace: self.build_trace(&parents, id, Some(step)) };
                        return self.finish(start, visited.len(), transitions, Some(v), false);
                    }
                    Ok(None) => {}
                    Ok(Some(next)) => {
                        if matches!(step, Step::Deliver { .. }) {
                            any_delivery = true;
                        }
                        transitions += 1;
                        if let Some(kind) = self.check_state(&next) {
                            let v = Violation {
                                kind,
                                trace: self.build_trace(&parents, id, Some(step)),
                            };
                            return self.finish(start, visited.len(), transitions, Some(v), false);
                        }
                        let enc = self.encode(&next);
                        if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(enc) {
                            let nid = parents.len() as u32;
                            e.insert(nid);
                            parents.push((id, Some(step)));
                            queue.push_back((next, nid));
                            if visited.len() >= self.cfg.max_states {
                                return self.finish(start, visited.len(), transitions, None, true);
                            }
                        }
                    }
                }
            }

            // Deadlock: pending work with no deliverable message. New
            // accesses can only add transactions, never unblock existing
            // ones, so they do not count as progress.
            if !any_delivery && (state.messages_in_flight() > 0 || state.has_pending_access()) {
                let v = Violation {
                    kind: ViolationKind::Deadlock,
                    trace: self.build_trace(&parents, id, None),
                };
                return self.finish(start, visited.len(), transitions, Some(v), false);
            }
        }
        self.finish(start, visited.len(), transitions, None, false)
    }

    fn finish(
        &self,
        start: Instant,
        states: usize,
        transitions: usize,
        violation: Option<Violation>,
        hit_limit: bool,
    ) -> CheckResult {
        CheckResult {
            states,
            transitions,
            violation,
            hit_state_limit: hit_limit,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn encode(&self, s: &SysState) -> Vec<u8> {
        if self.cfg.symmetry {
            s.canonical_encoding(&self.perms)
        } else {
            s.encode()
        }
    }

    /// All candidate steps from `state`.
    fn steps(&self, state: &SysState) -> Vec<Step> {
        let mut out = Vec::new();
        let n = state.n_caches() + 1;
        for src in 0..n {
            for dst in 0..n {
                let q = &state.channels[src][dst];
                if q.is_empty() {
                    continue;
                }
                let idxs: Vec<u8> =
                    if self.cfg.ordered { vec![0] } else { (0..q.len() as u8).collect() };
                for idx in idxs {
                    out.push(Step::Deliver { src: src as u8, dst: dst as u8, idx });
                }
            }
        }
        for cache in 0..state.n_caches() {
            for access in Access::ALL {
                out.push(Step::IssueAccess { cache: cache as u8, access });
            }
        }
        out
    }

    /// Computes the successor for `step`, or `Ok(None)` when the step is
    /// not enabled (stalled message, absent access arc, busy cache).
    fn successor(&self, state: &SysState, step: Step) -> Result<Option<SysState>, ViolationKind> {
        match step {
            Step::Deliver { src, dst, idx } => self.deliver(state, src, dst, idx),
            Step::IssueAccess { cache, access } => self.issue(state, cache, access),
        }
    }

    fn deliver(
        &self,
        state: &SysState,
        src: u8,
        dst: u8,
        idx: u8,
    ) -> Result<Option<SysState>, ViolationKind> {
        let msg = state.channels[src as usize][dst as usize][idx as usize];
        let is_dir = dst as usize == state.n_caches();
        let event = Event::Msg(msg.mtype);
        let arc = if is_dir {
            select_arc(self.dir_fsm, state.dir.state, event, Some(&msg), None, Some(&state.dir))
        } else {
            let block = &state.caches[dst as usize];
            select_arc(self.cache_fsm, block.state, event, Some(&msg), Some(block), None)
        };
        let Some(arc) = arc else {
            let holder = if is_dir {
                format!("directory in {}", self.dir_fsm.state(state.dir.state).full_name())
            } else {
                format!(
                    "cache n{dst} in {}",
                    self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                )
            };
            return Err(ViolationKind::UnexpectedMessage(format!("{msg} at {holder}")));
        };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(None);
        }
        let mut next = state.clone();
        next.channels[src as usize][dst as usize].remove(idx as usize);
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let outcome = if is_dir {
            let dir_id = next.dir_id();
            apply(
                self.dir_fsm,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut next.dir, self_id: dir_id },
                store_value,
            )
        } else {
            let dir_id = next.dir_id();
            apply(
                self.cache_fsm,
                arc,
                Some(&msg),
                MachineCtx::Cache {
                    block: &mut next.caches[dst as usize],
                    self_id: NodeId(dst),
                    dir_id,
                },
                store_value,
            )
        }
        .map_err(|e| ViolationKind::Exec(e.to_string()))?;
        if let Some((Access::Store, _)) = outcome.performed {
            next.ghost = store_value;
        }
        // Completion loads (e.g. the single access after invalidation in
        // IS_D_I) read the response data by construction; the physical
        // data-value check applies to hits only (design note in DESIGN.md).
        self.route(&mut next, outcome.outgoing)?;
        Ok(Some(next))
    }

    fn issue(
        &self,
        state: &SysState,
        cache: u8,
        access: Access,
    ) -> Result<Option<SysState>, ViolationKind> {
        let block = &state.caches[cache as usize];
        let arc =
            select_arc(self.cache_fsm, block.state, Event::Access(access), None, Some(block), None);
        let Some(arc) = arc else { return Ok(None) };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(None);
        }
        let is_hit = arc.actions.iter().any(|a| matches!(a, protogen_spec::Action::PerformAccess));
        if !is_hit && block.pending.is_some() {
            // One outstanding transaction per block per cache (§V-F).
            return Ok(None);
        }
        let mut next = state.clone();
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let dir_id = next.dir_id();
        let outcome = apply(
            self.cache_fsm,
            arc,
            None,
            MachineCtx::Cache {
                block: &mut next.caches[cache as usize],
                self_id: NodeId(cache),
                dir_id,
            },
            store_value,
        )
        .map_err(|e| ViolationKind::Exec(e.to_string()))?;
        match outcome.performed {
            Some((Access::Store, _)) => next.ghost = store_value,
            Some((Access::Load, Some(v))) if self.cfg.check_data_value && v != state.ghost => {
                return Err(ViolationKind::DataValue(format!(
                    "cache n{cache} load hit returned {v}, expected {}",
                    state.ghost
                )));
            }
            _ => {}
        }
        self.route(&mut next, outcome.outgoing)?;
        Ok(Some(next))
    }

    fn route(&self, state: &mut SysState, outgoing: Vec<Msg>) -> Result<(), ViolationKind> {
        for m in outgoing {
            state.send(m);
            let q = &state.channels[m.src.as_usize()][m.dst.as_usize()];
            if q.len() > self.cfg.channel_cap {
                return Err(ViolationKind::ChannelOverflow(format!(
                    "channel n{}→n{} exceeded {}",
                    m.src.0, m.dst.0, self.cfg.channel_cap
                )));
            }
        }
        Ok(())
    }

    /// State-level invariants (checked on every new state).
    fn check_state(&self, state: &SysState) -> Option<ViolationKind> {
        if self.cfg.check_swmr {
            let mut writer: Option<usize> = None;
            let mut reader: Option<usize> = None;
            for (i, c) in state.caches.iter().enumerate() {
                match self.cache_fsm.state(c.state).perm {
                    Perm::ReadWrite => {
                        if let Some(w) = writer {
                            return Some(ViolationKind::Swmr(format!(
                                "caches n{w} and n{i} both hold write permission"
                            )));
                        }
                        writer = Some(i);
                    }
                    Perm::Read => reader = Some(i),
                    Perm::None => {}
                }
            }
            if let (Some(w), Some(r)) = (writer, reader) {
                return Some(ViolationKind::Swmr(format!(
                    "cache n{w} holds write permission while n{r} holds read permission"
                )));
            }
        }
        if self.cfg.check_data_value {
            // Every readable stable copy must equal the latest store.
            for (i, c) in state.caches.iter().enumerate() {
                let st = self.cache_fsm.state(c.state);
                if st.is_stable()
                    && st.perm >= Perm::Read
                    && st.data_valid
                    && c.data != Some(state.ghost)
                {
                    return Some(ViolationKind::DataValue(format!(
                        "cache n{i} in {} holds {:?}, expected {}",
                        st.full_name(),
                        c.data,
                        state.ghost
                    )));
                }
            }
        }
        None
    }

    /// Rebuilds the step list to `id` (plus `last`) and renders it by
    /// replaying from the initial state.
    fn build_trace(
        &self,
        parents: &[(u32, Option<Step>)],
        id: u32,
        last: Option<Step>,
    ) -> Vec<String> {
        let mut steps = Vec::new();
        let mut cur = id;
        while cur != 0 {
            let (p, s) = parents[cur as usize];
            if let Some(s) = s {
                steps.push(s);
            }
            cur = p;
        }
        steps.reverse();
        if let Some(s) = last {
            steps.push(s);
        }
        let mut lines = Vec::new();
        let mut state = SysState::initial(self.cfg.n_caches);
        for step in steps {
            let desc = self.describe(&state, step);
            match self.successor(&state, step) {
                Ok(Some(next)) => {
                    lines.push(desc);
                    state = next;
                }
                Ok(None) => lines.push(format!("{desc} (not enabled?)")),
                Err(kind) => {
                    lines.push(format!("{desc} => {kind}"));
                    break;
                }
            }
        }
        lines
    }

    fn describe(&self, state: &SysState, step: Step) -> String {
        match step {
            Step::Deliver { src, dst, idx } => {
                let msg = state.channels[src as usize][dst as usize][idx as usize];
                let mname = &self.cache_fsm.msg(msg.mtype).name;
                let holder = if dst as usize == state.n_caches() {
                    format!("dir[{}]", self.dir_fsm.state(state.dir.state).full_name())
                } else {
                    format!(
                        "n{dst}[{}]",
                        self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                    )
                };
                format!("{mname} {msg} -> {holder}")
            }
            Step::IssueAccess { cache, access } => {
                format!(
                    "n{cache}[{}] {access}",
                    self.cache_fsm.state(state.caches[cache as usize].state).full_name()
                )
            }
        }
    }
}
