//! Parallel explicit-state reachability exploration with invariant
//! checking.
//!
//! The explorer is a level-synchronized, sharded-frontier BFS: `threads`
//! workers each own one shard of the visited set (a state belongs to the
//! shard `fingerprint % threads`, see [`crate::store`]), and every BFS
//! level runs in three barrier-separated phases — expand, dedup, decide
//! (see [`crate::frontier`]). The design is deterministic by construction:
//! states, transitions, the chosen violation, and the counterexample trace
//! are identical for every thread count and every run. DESIGN.md §3
//! documents the algorithm and the fingerprint collision-risk arithmetic.

use crate::frontier::{Candidate, Coordinator, Decision, Inbox, Outboxes, VioCand};
use crate::store::{Gid, ShardStore, StateRec, STEP_NONE};
use crate::system::{invert, permutations, SysState};
use protogen_runtime::{
    apply, select_arc_indexed, FsmIndex, MachineCtx, MachineTag, Msg, NodeId, PairSet,
};
use protogen_spec::{Access, Event, Fsm, Perm};
use std::fmt;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Model-checker configuration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of caches (the paper verifies with 3, the most Murϕ could
    /// handle without exhausting memory; the sharded explorer is built to
    /// go past that).
    pub n_caches: usize,
    /// Abort exploration after this many states (checked at BFS-level
    /// granularity, so the final count may overshoot by one level).
    pub max_states: usize,
    /// Store values cycle through `0..value_domain` (small domain, the
    /// standard bounding discipline).
    pub value_domain: u8,
    /// Error out when a channel exceeds this length.
    pub channel_cap: usize,
    /// Point-to-point ordered channels (`true`) or arbitrary reordering.
    pub ordered: bool,
    /// Check the single-writer/multiple-reader invariant over permission
    /// states.
    pub check_swmr: bool,
    /// Check that loads performed with read permission return the most
    /// recent store (ghost memory).
    pub check_data_value: bool,
    /// Canonicalize states under cache-id permutation (Murϕ scalarsets).
    pub symmetry: bool,
    /// Worker threads (= visited-set shards). `0` — the default — means
    /// "use [`std::thread::available_parallelism`]"; values are clamped
    /// to [`crate::MAX_SHARDS`]. Results are identical for every thread
    /// count.
    pub threads: usize,
    /// Record every `(machine, state, event)` dispatch attempted during
    /// exploration into [`CheckResult::coverage`]. Off by default: the
    /// simulator-conformance tests are the only consumer.
    pub collect_pair_coverage: bool,
    /// Upper bound on the states one visited-set shard may hold. Defaults
    /// to (and is clamped to) the packed-id hardware limit of 2²⁷
    /// ([`crate::SHARD_CAPACITY`]); exceeding it stops exploration with a
    /// structured [`ResourceLimit::ShardCapacity`] outcome and partial
    /// stats instead of aborting the process. Lower it only to exercise
    /// that path cheaply — unlike `max_states` (checked against the global
    /// count), whether a *shard* fills up depends on how fingerprints
    /// distribute over `threads` shards.
    pub shard_capacity: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            n_caches: 3,
            max_states: 20_000_000,
            value_domain: 2,
            channel_cap: 8,
            ordered: true,
            check_swmr: true,
            check_data_value: true,
            symmetry: true,
            threads: 0,
            collect_pair_coverage: false,
            shard_capacity: crate::store::SHARD_CAPACITY,
        }
    }
}

impl McConfig {
    /// Configuration with `n` caches.
    pub fn with_caches(n: usize) -> Self {
        McConfig { n_caches: n, ..McConfig::default() }
    }

    /// Configuration with `n` caches explored by `threads` workers.
    pub fn with_caches_and_threads(n: usize, threads: usize) -> Self {
        McConfig { n_caches: n, threads, ..McConfig::default() }
    }

    /// The worker count actually used: `threads` resolved against the
    /// machine and clamped to `1..=MAX_SHARDS`.
    pub fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, crate::store::MAX_SHARDS)
    }

    /// The per-shard state bound actually enforced: `shard_capacity`
    /// clamped to the packed-id limit (a zero is treated as "no extra
    /// bound").
    pub fn effective_shard_capacity(&self) -> usize {
        if self.shard_capacity == 0 {
            crate::store::SHARD_CAPACITY
        } else {
            self.shard_capacity.min(crate::store::SHARD_CAPACITY)
        }
    }
}

/// Which resource bound stopped exploration before the state space was
/// exhausted. The run's [`CheckResult`] still carries everything explored
/// up to that point (partial stats), and [`CheckResult::passed`] is
/// `false`: an incomplete exploration proves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceLimit {
    /// The global [`McConfig::max_states`] budget was spent.
    StateBudget,
    /// A visited-set shard reached [`McConfig::shard_capacity`] states (the
    /// shard id is recorded; with several full shards in one level, the
    /// smallest id wins deterministically).
    ShardCapacity {
        /// The first (lowest-id) shard that filled up.
        shard: usize,
    },
}

impl fmt::Display for ResourceLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceLimit::StateBudget => f.write_str("state budget exhausted"),
            ResourceLimit::ShardCapacity { shard } => {
                write!(f, "visited-set shard {shard} reached capacity")
            }
        }
    }
}

/// One scheduling decision of the explored system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// Deliver the message at position `idx` of channel `src → dst`.
    Deliver {
        /// Source node.
        src: u8,
        /// Destination node.
        dst: u8,
        /// Queue position (always 0 with ordered channels).
        idx: u8,
    },
    /// Cache `cache` issues `access`.
    IssueAccess {
        /// The cache.
        cache: u8,
        /// The access.
        access: Access,
    },
}

/// Packs a step into 32 bits, preserving [`Step`]'s derived ordering:
/// deliveries sort before accesses, deliveries by `(src, dst, idx)`,
/// accesses by `(cache, access)` — the same order [`ModelChecker::steps`]
/// generates them in.
pub(crate) fn pack_step(step: Step) -> u32 {
    match step {
        Step::Deliver { src, dst, idx } => ((src as u32) << 16) | ((dst as u32) << 8) | idx as u32,
        Step::IssueAccess { cache, access } => {
            (1 << 24) | ((cache as u32) << 8) | access.index() as u32
        }
    }
}

/// Inverse of [`pack_step`]. Must not be called on [`STEP_NONE`].
pub(crate) fn unpack_step(packed: u32) -> Step {
    debug_assert_ne!(packed, STEP_NONE);
    if packed & (1 << 24) == 0 {
        Step::Deliver { src: (packed >> 16) as u8, dst: (packed >> 8) as u8, idx: packed as u8 }
    } else {
        Step::IssueAccess {
            cache: (packed >> 8) as u8,
            access: Access::ALL[(packed & 0xff) as usize],
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Deliver { src, dst, idx } => write!(f, "deliver n{src}→n{dst}[{idx}]"),
            Step::IssueAccess { cache, access } => write!(f, "cache n{cache} issues {access}"),
        }
    }
}

/// Why checking failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two caches hold conflicting permissions simultaneously.
    Swmr(String),
    /// A load returned a value other than the most recent store.
    DataValue(String),
    /// A non-quiescent state has no deliverable message.
    Deadlock,
    /// A message arrived for which the controller has no transition — the
    /// generated protocol is incomplete.
    UnexpectedMessage(String),
    /// A channel exceeded its capacity bound.
    ChannelOverflow(String),
    /// The runtime refused an action that is impossible in the current
    /// system state — a send addressed to an absent owner, data demanded
    /// from an invalid copy. A protocol-correctness violation of the
    /// *specification* (the checker catching a bad protocol), as opposed
    /// to [`ViolationKind::Exec`].
    IllegalAction(String),
    /// The runtime rejected an action over the generated machine's own
    /// structure (absent message context, bad deferred slot): a generator
    /// bug.
    Exec(String),
}

/// Deterministic ordering key over violation kinds (rank, detail) so the
/// end-of-level minimum-selection never depends on discovery order.
fn kind_key(kind: &ViolationKind) -> (u8, &str) {
    match kind {
        ViolationKind::Swmr(d) => (0, d),
        ViolationKind::DataValue(d) => (1, d),
        ViolationKind::Deadlock => (2, ""),
        ViolationKind::UnexpectedMessage(d) => (3, d),
        ViolationKind::ChannelOverflow(d) => (4, d),
        ViolationKind::IllegalAction(d) => (5, d),
        ViolationKind::Exec(d) => (6, d),
    }
}

fn vio_key(v: &VioCand) -> (u64, u32, u8, &str) {
    let (rank, detail) = kind_key(&v.kind);
    (v.parent_fp, v.step, rank, detail)
}

/// Classifies a runtime execution failure: state-level impossibilities
/// are protocol violations the checker caught; structural ones are
/// generator bugs.
fn exec_violation(e: protogen_runtime::ExecError) -> ViolationKind {
    if e.is_state_error() {
        ViolationKind::IllegalAction(e.to_string())
    } else {
        ViolationKind::Exec(e.to_string())
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Swmr(d) => write!(f, "SWMR violation: {d}"),
            ViolationKind::DataValue(d) => write!(f, "data-value violation: {d}"),
            ViolationKind::Deadlock => f.write_str("deadlock"),
            ViolationKind::UnexpectedMessage(d) => write!(f, "unexpected message: {d}"),
            ViolationKind::ChannelOverflow(d) => write!(f, "channel overflow: {d}"),
            ViolationKind::IllegalAction(d) => write!(f, "illegal action: {d}"),
            ViolationKind::Exec(d) => write!(f, "execution error: {d}"),
        }
    }
}

/// A violation with its counterexample trace (one line per step from the
/// initial state). With symmetry reduction on, the trace walks canonical
/// representatives, so cache ids may be permuted between consecutive lines
/// — the standard scalarset-counterexample caveat.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable steps from the initial state to the violation.
    pub trace: Vec<String>,
}

/// Outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Distinct (canonicalized) states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// The deterministically chosen first violation, if any.
    pub violation: Option<Violation>,
    /// Whether a resource bound stopped exploration before exhausting the
    /// space (`limit` names which one).
    pub hit_state_limit: bool,
    /// The resource bound that stopped exploration, when one did. The
    /// stats above are the partial exploration up to that point.
    pub limit: Option<ResourceLimit>,
    /// Wall-clock seconds spent exploring.
    pub seconds: f64,
    /// Peak bytes held by the sharded visited set (fingerprint maps plus
    /// packed parent-pointer records).
    pub store_bytes: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Every `(machine, state, event)` dispatch attempted, when
    /// [`McConfig::collect_pair_coverage`] was set.
    pub coverage: Option<PairSet>,
}

impl CheckResult {
    /// Whether the protocol passed every check over the explored space.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.hit_state_limit
    }
}

/// The model checker: explores every reachable state of N caches + the
/// directory running the generated FSMs, checking SWMR, the data-value
/// invariant, deadlock freedom, and protocol completeness.
///
/// Exploration is multi-threaded (see [`McConfig::threads`]) but the
/// result is thread-count- and interleaving-independent.
#[derive(Debug)]
pub struct ModelChecker<'a> {
    cache_fsm: &'a Fsm,
    dir_fsm: &'a Fsm,
    cfg: McConfig,
    perms: Vec<Vec<u8>>,
    invs: Vec<Vec<u8>>,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
}

impl<'a> ModelChecker<'a> {
    /// Creates a checker for the given controllers.
    pub fn new(cache_fsm: &'a Fsm, dir_fsm: &'a Fsm, cfg: McConfig) -> Self {
        let perms = if cfg.symmetry {
            permutations(cfg.n_caches)
        } else {
            vec![(0..cfg.n_caches as u8).collect()]
        };
        let invs = perms.iter().map(|p| invert(p)).collect();
        let cache_idx = FsmIndex::new(cache_fsm);
        let dir_idx = FsmIndex::new(dir_fsm);
        ModelChecker { cache_fsm, dir_fsm, cfg, perms, invs, cache_idx, dir_idx }
    }

    /// Runs breadth-first exploration until exhaustion, a violation, or the
    /// state limit.
    pub fn run(&self) -> CheckResult {
        let start = Instant::now();
        let threads = self.cfg.effective_threads();

        let initial = self.canonical_rep(SysState::initial(self.cfg.n_caches));
        let (fp0, _) = self.canonical_fp(&initial);
        let owner0 = (fp0 % threads as u64) as usize;

        let mut inits: Vec<(ShardStore, Vec<(SysState, u32)>)> =
            (0..threads).map(|_| (ShardStore::new(), Vec::new())).collect();
        inits[owner0].0.map.insert(fp0, 0);
        inits[owner0].0.recs.push(StateRec {
            fp: fp0,
            parent_fp: fp0,
            parent: Gid::pack(owner0, 0),
            step: STEP_NONE,
            depth: 0,
        });
        inits[owner0].1.push((initial, 0));

        let inboxes: Vec<Inbox> = (0..threads).map(|_| Inbox::default()).collect();
        let coord = Coordinator::new(threads);
        coord.total_states.store(1, Relaxed);

        let stores: Vec<ShardStore> = std::thread::scope(|s| {
            let handles: Vec<_> = inits
                .into_iter()
                .enumerate()
                .map(|(t, (store, frontier))| {
                    let inboxes = &inboxes;
                    let coord = &coord;
                    s.spawn(move || self.worker(t, threads, store, frontier, inboxes, coord))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // A worker phase panicked: all workers drained cleanly through the
        // barriers; surface the original panic here.
        if let Some(payload) = coord.panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            std::panic::resume_unwind(payload);
        }

        let states = stores.iter().map(|s| s.recs.len()).sum();
        let transitions = coord.transitions.load(Relaxed);
        let store_bytes = stores.iter().map(|s| s.bytes()).sum();
        let (violation, hit_limit) = match coord.decision.into_inner().unwrap() {
            Decision::Stop { violation, hit_limit } => {
                let v = violation.map(|v| Violation {
                    kind: v.kind.clone(),
                    trace: self.build_trace(&stores, &v),
                });
                (v, hit_limit)
            }
            Decision::Continue => (None, false),
        };
        let limit = if hit_limit {
            let shard = coord.exhausted_shard.load(Relaxed);
            if shard == usize::MAX {
                Some(ResourceLimit::StateBudget)
            } else {
                Some(ResourceLimit::ShardCapacity { shard })
            }
        } else {
            None
        };

        let coverage = self
            .cfg
            .collect_pair_coverage
            .then(|| std::mem::take(&mut *coord.coverage.lock().unwrap()));
        CheckResult {
            states,
            transitions,
            violation,
            hit_state_limit: hit_limit,
            limit,
            seconds: start.elapsed().as_secs_f64(),
            store_bytes,
            threads,
            coverage,
        }
    }

    /// One worker: owns shard `t` of the visited set and processes BFS
    /// levels in lock-step with the other workers.
    ///
    /// Each phase body runs under `catch_unwind`: a panicking worker
    /// records its payload on the coordinator and keeps rendezvousing at
    /// the barriers doing no work, so the fleet drains and the panic is
    /// re-raised on the calling thread instead of deadlocking the level
    /// barrier (std's `Barrier` has no poisoning).
    fn worker(
        &self,
        t: usize,
        n_shards: usize,
        mut store: ShardStore,
        mut frontier: Vec<(SysState, u32)>,
        inboxes: &[Inbox],
        coord: &Coordinator,
    ) -> ShardStore {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut out = Outboxes::new(n_shards);
        let mut steps_buf: Vec<Step> = Vec::new();
        let mut depth: u32 = 0;
        loop {
            // Phase A — expand this shard's frontier, routing successors to
            // their owning shards and buffering violations locally.
            let mut violations: Vec<VioCand> = Vec::new();
            if !coord.aborted.load(Relaxed) {
                let phase = catch_unwind(AssertUnwindSafe(|| {
                    self.expand_phase(
                        t,
                        n_shards,
                        &store,
                        &mut frontier,
                        &mut out,
                        &mut steps_buf,
                        inboxes,
                        coord,
                    )
                }));
                match phase {
                    Ok(v) => violations = v,
                    Err(payload) => coord.record_panic(payload),
                }
            }
            coord.barrier.wait();

            // Phase B — drain this shard's inbox into its store and merge
            // this worker's level results into the aggregate.
            if !coord.aborted.load(Relaxed) {
                let phase = catch_unwind(AssertUnwindSafe(|| {
                    self.dedup_phase(
                        t,
                        depth,
                        &mut store,
                        &mut frontier,
                        violations,
                        inboxes,
                        coord,
                    )
                }));
                if let Err(payload) = phase {
                    coord.record_panic(payload);
                }
            }
            coord.barrier.wait();

            // Phase C — worker 0 publishes the level decision.
            if t == 0 {
                let dec = if coord.aborted.load(Relaxed) {
                    Decision::Stop { violation: None, hit_limit: false }
                } else {
                    match catch_unwind(AssertUnwindSafe(|| self.decide(coord))) {
                        Ok(dec) => dec,
                        Err(payload) => {
                            coord.record_panic(payload);
                            Decision::Stop { violation: None, hit_limit: false }
                        }
                    }
                };
                *coord.decision.lock().unwrap() = dec;
            }
            coord.barrier.wait();
            if matches!(*coord.decision.lock().unwrap(), Decision::Stop { .. }) {
                return store;
            }
            depth += 1;
        }
    }

    /// Expand phase: generates every successor of this shard's frontier,
    /// routes candidates to their owning shards, and returns the
    /// violations discovered.
    #[allow(clippy::too_many_arguments)]
    fn expand_phase(
        &self,
        t: usize,
        n_shards: usize,
        store: &ShardStore,
        frontier: &mut Vec<(SysState, u32)>,
        out: &mut Outboxes,
        steps_buf: &mut Vec<Step>,
        inboxes: &[Inbox],
        coord: &Coordinator,
    ) -> Vec<VioCand> {
        let mut violations: Vec<VioCand> = Vec::new();
        let mut local_transitions = 0usize;
        let mut cov = self.cfg.collect_pair_coverage.then(PairSet::new);
        for (state, lid) in frontier.drain(..) {
            let gid = Gid::pack(t, lid as usize);
            let my_fp = store.recs[lid as usize].fp;
            let mut any_delivery = false;
            self.steps_into(&state, steps_buf);
            for &step in steps_buf.iter() {
                match self.successor_observed(&state, step, cov.as_mut()) {
                    Err(kind) => violations.push(VioCand {
                        parent: gid,
                        parent_fp: my_fp,
                        step: pack_step(step),
                        kind,
                    }),
                    Ok(None) => {}
                    Ok(Some(next)) => {
                        if matches!(step, Step::Deliver { .. }) {
                            any_delivery = true;
                        }
                        local_transitions += 1;
                        if let Some(kind) = self.check_state(&next) {
                            violations.push(VioCand {
                                parent: gid,
                                parent_fp: my_fp,
                                step: pack_step(step),
                                kind,
                            });
                        } else {
                            let (fp, perm_idx) = self.canonical_fp(&next);
                            let owner = (fp % n_shards as u64) as usize;
                            out.push(
                                owner,
                                Candidate {
                                    state: next,
                                    perm_idx,
                                    fp,
                                    parent: gid,
                                    parent_fp: my_fp,
                                    step: pack_step(step),
                                },
                                inboxes,
                            );
                        }
                    }
                }
            }
            // Deadlock: pending work with no deliverable message. New
            // accesses can only add transactions, never unblock existing
            // ones, so they do not count as progress.
            if !any_delivery && (state.messages_in_flight() > 0 || state.has_pending_access()) {
                violations.push(VioCand {
                    parent: gid,
                    parent_fp: my_fp,
                    step: STEP_NONE,
                    kind: ViolationKind::Deadlock,
                });
            }
        }
        out.flush_all(inboxes);
        coord.transitions.fetch_add(local_transitions, Relaxed);
        if let Some(c) = cov.filter(|c| !c.is_empty()) {
            coord.coverage.lock().unwrap().extend(c);
        }
        violations
    }

    /// Dedup phase: drains this shard's inbox — deduplicating by
    /// fingerprint, appending packed records for new states, resolving
    /// same-level parent races by minimum `(parent_fp, step)` — and merges
    /// this worker's level results into the aggregate.
    #[allow(clippy::too_many_arguments)]
    fn dedup_phase(
        &self,
        t: usize,
        depth: u32,
        store: &mut ShardStore,
        frontier: &mut Vec<(SysState, u32)>,
        mut violations: Vec<VioCand>,
        inboxes: &[Inbox],
        coord: &Coordinator,
    ) {
        let mut new_count = 0usize;
        let cap = self.cfg.effective_shard_capacity();
        for c in inboxes[t].drain() {
            if let Some(&lid) = store.map.get(&c.fp) {
                let rec = &mut store.recs[lid as usize];
                if rec.depth == depth + 1 && (c.parent_fp, c.step) < (rec.parent_fp, rec.step) {
                    rec.parent_fp = c.parent_fp;
                    rec.parent = c.parent;
                    rec.step = c.step;
                }
            } else {
                if store.recs.len() >= cap {
                    // The shard is full: drop the candidate and surface a
                    // structured resource-exhaustion outcome instead of
                    // overflowing the packed-id space (the seed design
                    // `assert!`ed here, aborting the whole process).
                    coord.exhausted_shard.fetch_min(t, Relaxed);
                    continue;
                }
                let lid = store.recs.len() as u32;
                store.map.insert(c.fp, lid);
                store.recs.push(StateRec {
                    fp: c.fp,
                    parent_fp: c.parent_fp,
                    parent: c.parent,
                    step: c.step,
                    depth: depth + 1,
                });
                let rep = self.canonicalize(c.state, c.perm_idx);
                frontier.push((rep, lid));
                new_count += 1;
            }
        }
        coord.total_states.fetch_add(new_count, Relaxed);
        let mut agg = coord.agg.lock().unwrap();
        agg.new_states += new_count;
        agg.violations.append(&mut violations);
    }

    /// Decide phase (worker 0 only): selects the minimum-key violation of
    /// the level, or stops on exhaustion / the state budget.
    fn decide(&self, coord: &Coordinator) -> Decision {
        let mut agg = coord.agg.lock().unwrap();
        let mut vios = std::mem::take(&mut agg.violations);
        let new_states = std::mem::take(&mut agg.new_states);
        drop(agg);
        if !vios.is_empty() {
            vios.sort_by(|a, b| vio_key(a).cmp(&vio_key(b)));
            Decision::Stop { violation: Some(vios.remove(0)), hit_limit: false }
        } else if coord.exhausted_shard.load(Relaxed) != usize::MAX {
            // A shard refused inserts this level: the frontier is
            // incomplete, so "no new states" below would falsely read as
            // exhaustion. Stop with the limit flag.
            Decision::Stop { violation: None, hit_limit: true }
        } else if new_states == 0 {
            Decision::Stop { violation: None, hit_limit: false }
        } else if coord.total_states.load(Relaxed) >= self.cfg.max_states {
            Decision::Stop { violation: None, hit_limit: true }
        } else {
            Decision::Continue
        }
    }

    /// The canonical fingerprint of `s` and the index of the permutation
    /// achieving it: the minimum, over all cache-id permutations, of the
    /// 64-bit fingerprint of the permuted encoding (ties broken by
    /// permutation index). Permutation-invariant, so it identifies the
    /// whole symmetry orbit.
    fn canonical_fp(&self, s: &SysState) -> (u64, u32) {
        let mut best_fp = u64::MAX;
        let mut best_idx = 0u32;
        for (i, (p, inv)) in self.perms.iter().zip(&self.invs).enumerate() {
            let mut h = crate::store::Fingerprinter::new();
            s.encode_permuted_to(p, inv, &mut h);
            let fp = h.finish();
            if fp < best_fp {
                best_fp = fp;
                best_idx = i as u32;
            }
        }
        (best_fp, best_idx)
    }

    /// Applies the canonicalizing permutation chosen by [`Self::canonical_fp`].
    fn canonicalize(&self, s: SysState, perm_idx: u32) -> SysState {
        if perm_idx == 0 {
            s // perms[0] is the identity
        } else {
            s.permuted(&self.perms[perm_idx as usize])
        }
    }

    fn canonical_rep(&self, s: SysState) -> SysState {
        let (_, idx) = self.canonical_fp(&s);
        self.canonicalize(s, idx)
    }

    /// All candidate steps from `state`, in canonical order: deliveries
    /// first, sorted by `(src, dst, idx)`, then accesses sorted by
    /// `(cache, access)`. The order is a pure function of `state` — never
    /// of thread interleaving — which keeps counterexample traces
    /// byte-identical run to run.
    pub fn steps(&self, state: &SysState) -> Vec<Step> {
        let mut out = Vec::new();
        self.steps_into(state, &mut out);
        out
    }

    fn steps_into(&self, state: &SysState, out: &mut Vec<Step>) {
        out.clear();
        let n = state.n_caches() + 1;
        for src in 0..n {
            for dst in 0..n {
                let q = &state.channels[src][dst];
                if q.is_empty() {
                    continue;
                }
                let last = if self.cfg.ordered { 1 } else { q.len() };
                for idx in 0..last {
                    out.push(Step::Deliver { src: src as u8, dst: dst as u8, idx: idx as u8 });
                }
            }
        }
        for cache in 0..state.n_caches() {
            for access in Access::ALL {
                out.push(Step::IssueAccess { cache: cache as u8, access });
            }
        }
    }

    /// [`Self::successor`] plus pair-coverage recording: notes which
    /// `(machine, state, event)` pair the step dispatches on before
    /// computing the successor. Pairs are permutation-invariant (all
    /// caches run the same FSM and message types survive renaming), so
    /// recording them on canonical representatives covers every orbit
    /// member.
    fn successor_observed(
        &self,
        state: &SysState,
        step: Step,
        cov: Option<&mut PairSet>,
    ) -> Result<Option<SysState>, ViolationKind> {
        if let Some(cov) = cov {
            match step {
                Step::Deliver { src, dst, idx } => {
                    let msg = state.channels[src as usize][dst as usize][idx as usize];
                    if dst as usize == state.n_caches() {
                        cov.insert((MachineTag::Directory, state.dir.state, Event::Msg(msg.mtype)));
                    } else {
                        cov.insert((
                            MachineTag::Cache,
                            state.caches[dst as usize].state,
                            Event::Msg(msg.mtype),
                        ));
                    }
                }
                Step::IssueAccess { cache, access } => {
                    cov.insert((
                        MachineTag::Cache,
                        state.caches[cache as usize].state,
                        Event::Access(access),
                    ));
                }
            }
        }
        self.successor(state, step)
    }

    /// Computes the successor for `step`, or `Ok(None)` when the step is
    /// not enabled (stalled message, absent access arc, busy cache).
    fn successor(&self, state: &SysState, step: Step) -> Result<Option<SysState>, ViolationKind> {
        match step {
            Step::Deliver { src, dst, idx } => self.deliver(state, src, dst, idx),
            Step::IssueAccess { cache, access } => self.issue(state, cache, access),
        }
    }

    fn deliver(
        &self,
        state: &SysState,
        src: u8,
        dst: u8,
        idx: u8,
    ) -> Result<Option<SysState>, ViolationKind> {
        let msg = state.channels[src as usize][dst as usize][idx as usize];
        let is_dir = dst as usize == state.n_caches();
        let event = Event::Msg(msg.mtype);
        let arc = if is_dir {
            select_arc_indexed(
                self.dir_fsm,
                &self.dir_idx,
                state.dir.state,
                event,
                Some(&msg),
                None,
                Some(&state.dir),
            )
        } else {
            let block = &state.caches[dst as usize];
            select_arc_indexed(
                self.cache_fsm,
                &self.cache_idx,
                block.state,
                event,
                Some(&msg),
                Some(block),
                None,
            )
        };
        let Some(arc) = arc else {
            let holder = if is_dir {
                format!("directory in {}", self.dir_fsm.state(state.dir.state).full_name())
            } else {
                format!(
                    "cache n{dst} in {}",
                    self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                )
            };
            return Err(ViolationKind::UnexpectedMessage(format!("{msg} at {holder}")));
        };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(None);
        }
        let mut next = state.clone();
        next.channels[src as usize][dst as usize].remove(idx as usize);
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let outcome = if is_dir {
            let dir_id = next.dir_id();
            apply(
                self.dir_fsm,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut next.dir, self_id: dir_id },
                store_value,
            )
        } else {
            let dir_id = next.dir_id();
            apply(
                self.cache_fsm,
                arc,
                Some(&msg),
                MachineCtx::Cache {
                    block: &mut next.caches[dst as usize],
                    self_id: NodeId(dst),
                    dir_id,
                },
                store_value,
            )
        }
        .map_err(exec_violation)?;
        if let Some((Access::Store, _)) = outcome.performed {
            next.ghost = store_value;
        }
        // Completion loads (e.g. the single access after invalidation in
        // IS_D_I) read the response data by construction; the physical
        // data-value check applies to hits only (design note in DESIGN.md).
        self.route(&mut next, outcome.outgoing)?;
        Ok(Some(next))
    }

    fn issue(
        &self,
        state: &SysState,
        cache: u8,
        access: Access,
    ) -> Result<Option<SysState>, ViolationKind> {
        let block = &state.caches[cache as usize];
        let arc = select_arc_indexed(
            self.cache_fsm,
            &self.cache_idx,
            block.state,
            Event::Access(access),
            None,
            Some(block),
            None,
        );
        let Some(arc) = arc else { return Ok(None) };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(None);
        }
        let is_hit = arc.actions.iter().any(|a| matches!(a, protogen_spec::Action::PerformAccess));
        if !is_hit && block.pending.is_some() {
            // One outstanding transaction per block per cache (§V-F).
            return Ok(None);
        }
        let mut next = state.clone();
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let dir_id = next.dir_id();
        let outcome = apply(
            self.cache_fsm,
            arc,
            None,
            MachineCtx::Cache {
                block: &mut next.caches[cache as usize],
                self_id: NodeId(cache),
                dir_id,
            },
            store_value,
        )
        .map_err(exec_violation)?;
        match outcome.performed {
            Some((Access::Store, _)) => next.ghost = store_value,
            Some((Access::Load, Some(v))) if self.cfg.check_data_value && v != state.ghost => {
                return Err(ViolationKind::DataValue(format!(
                    "cache n{cache} load hit returned {v}, expected {}",
                    state.ghost
                )));
            }
            _ => {}
        }
        self.route(&mut next, outcome.outgoing)?;
        Ok(Some(next))
    }

    fn route(&self, state: &mut SysState, outgoing: Vec<Msg>) -> Result<(), ViolationKind> {
        for m in outgoing {
            state.send(m);
            let q = &state.channels[m.src.as_usize()][m.dst.as_usize()];
            if q.len() > self.cfg.channel_cap {
                return Err(ViolationKind::ChannelOverflow(format!(
                    "channel n{}→n{} exceeded {}",
                    m.src.0, m.dst.0, self.cfg.channel_cap
                )));
            }
        }
        Ok(())
    }

    /// State-level invariants (checked on every new state).
    fn check_state(&self, state: &SysState) -> Option<ViolationKind> {
        if self.cfg.check_swmr {
            let mut writer: Option<usize> = None;
            let mut reader: Option<usize> = None;
            for (i, c) in state.caches.iter().enumerate() {
                match self.cache_fsm.state(c.state).perm {
                    Perm::ReadWrite => {
                        if let Some(w) = writer {
                            return Some(ViolationKind::Swmr(format!(
                                "caches n{w} and n{i} both hold write permission"
                            )));
                        }
                        writer = Some(i);
                    }
                    Perm::Read => reader = Some(i),
                    Perm::None => {}
                }
            }
            if let (Some(w), Some(r)) = (writer, reader) {
                return Some(ViolationKind::Swmr(format!(
                    "cache n{w} holds write permission while n{r} holds read permission"
                )));
            }
        }
        if self.cfg.check_data_value {
            // Every readable stable copy must equal the latest store.
            for (i, c) in state.caches.iter().enumerate() {
                let st = self.cache_fsm.state(c.state);
                if st.is_stable()
                    && st.perm >= Perm::Read
                    && st.data_valid
                    && c.data != Some(state.ghost)
                {
                    return Some(ViolationKind::DataValue(format!(
                        "cache n{i} in {} holds {:?}, expected {}",
                        st.full_name(),
                        c.data,
                        state.ghost
                    )));
                }
            }
        }
        None
    }

    /// Rebuilds the step chain to the violation by walking the packed
    /// parent-pointer records across shards, then renders it by replaying
    /// from the initial state through canonical representatives.
    fn build_trace(&self, stores: &[ShardStore], v: &VioCand) -> Vec<String> {
        let mut steps = Vec::new();
        let mut cur = v.parent;
        loop {
            let rec = stores[cur.shard()].recs[cur.local()];
            if rec.depth == 0 {
                break;
            }
            steps.push(unpack_step(rec.step));
            cur = rec.parent;
        }
        steps.reverse();
        if v.step != STEP_NONE {
            steps.push(unpack_step(v.step));
        }
        let mut lines = Vec::new();
        let mut state = self.canonical_rep(SysState::initial(self.cfg.n_caches));
        for step in steps {
            let desc = self.describe(&state, step);
            match self.successor(&state, step) {
                Ok(Some(next)) => {
                    lines.push(desc);
                    state = self.canonical_rep(next);
                }
                Ok(None) => lines.push(format!("{desc} (not enabled?)")),
                Err(kind) => {
                    lines.push(format!("{desc} => {kind}"));
                    break;
                }
            }
        }
        lines
    }

    fn describe(&self, state: &SysState, step: Step) -> String {
        match step {
            Step::Deliver { src, dst, idx } => {
                let msg = state.channels[src as usize][dst as usize][idx as usize];
                let mname = &self.cache_fsm.msg(msg.mtype).name;
                let holder = if dst as usize == state.n_caches() {
                    format!("dir[{}]", self.dir_fsm.state(state.dir.state).full_name())
                } else {
                    format!(
                        "n{dst}[{}]",
                        self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                    )
                };
                format!("{mname} {msg} -> {holder}")
            }
            Step::IssueAccess { cache, access } => {
                format!(
                    "n{cache}[{}] {access}",
                    self.cache_fsm.state(state.caches[cache as usize].state).full_name()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_packing_round_trips_and_preserves_order() {
        let steps = [
            Step::Deliver { src: 0, dst: 1, idx: 0 },
            Step::Deliver { src: 0, dst: 2, idx: 1 },
            Step::Deliver { src: 3, dst: 0, idx: 0 },
            Step::IssueAccess { cache: 0, access: Access::Load },
            Step::IssueAccess { cache: 0, access: Access::Replacement },
            Step::IssueAccess { cache: 2, access: Access::Store },
        ];
        for w in steps.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
            assert!(pack_step(w[0]) < pack_step(w[1]), "packed order broken at {:?}", w[0]);
        }
        for s in steps {
            assert_eq!(unpack_step(pack_step(s)), s);
            assert_ne!(pack_step(s), STEP_NONE);
        }
    }

    #[test]
    fn effective_threads_resolves_and_clamps() {
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 0;
        assert!(cfg.effective_threads() >= 1);
        cfg.threads = 1_000;
        assert_eq!(cfg.effective_threads(), crate::store::MAX_SHARDS);
        cfg.threads = 3;
        assert_eq!(cfg.effective_threads(), 3);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        use protogen_spec::{
            Arc, ArcKind, ArcNote, FsmState, FsmStateId, FsmStateKind, MachineKind, StableId,
        };
        let state = |name: &str| FsmState {
            name: name.into(),
            kind: FsmStateKind::Stable(StableId(0)),
            state_sets: vec![],
            perm: Perm::None,
            data_valid: false,
            merged_names: vec![],
        };
        // A deliberately corrupt FSM: the Load arc targets a state id that
        // does not exist, so applying it panics inside a worker.
        let cache = Fsm {
            protocol: "broken".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![state("I")],
            arcs: vec![Arc {
                from: FsmStateId(0),
                event: Event::Access(Access::Load),
                guards: vec![],
                actions: vec![],
                to: FsmStateId(99),
                kind: ArcKind::Normal,
                note: ArcNote::Ssp,
            }],
        };
        let dir = Fsm {
            protocol: "broken".into(),
            machine: MachineKind::Directory,
            messages: vec![],
            states: vec![state("D")],
            arcs: vec![],
        };
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 4;
        let mc = ModelChecker::new(&cache, &dir, cfg);
        // The fleet must drain through the level barriers and re-raise the
        // worker's panic on this thread — a deadlocked Barrier would hang
        // the test instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mc.run()));
        assert!(result.is_err(), "corrupt arc target must panic, not pass");
    }

    #[test]
    fn state_limit_stops_exploration_deterministically() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let run = |threads: usize| {
            let mut cfg = McConfig::with_caches(2);
            cfg.max_states = 100;
            cfg.threads = threads;
            ModelChecker::new(&g.cache, &g.directory, cfg).run()
        };
        let (r1, r4) = (run(1), run(4));
        assert!(r1.hit_state_limit && !r1.passed());
        assert_eq!(r1.limit, Some(ResourceLimit::StateBudget));
        // The budget is enforced at level granularity, so the count may
        // overshoot by one level but must still be reached…
        assert!(r1.states >= 100, "stopped below the budget: {}", r1.states);
        // …and be identical at any thread count.
        assert_eq!(r1.states, r4.states);
        assert_eq!(r1.transitions, r4.transitions);
        assert_eq!(r1.hit_state_limit, r4.hit_state_limit);
        assert!(r1.store_bytes > 0);
    }

    #[test]
    fn full_shard_reports_resource_exhaustion_instead_of_aborting() {
        // The seed design `assert!`ed inside `Gid::pack` when a shard
        // exceeded its packed-id capacity, killing the whole process
        // mid-run. The overflow must now surface as a structured
        // `ResourceLimit::ShardCapacity` outcome with partial stats.
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 1;
        cfg.shard_capacity = 40;
        let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
        assert!(!r.passed(), "an incomplete exploration must not pass");
        assert!(r.hit_state_limit);
        assert_eq!(r.limit, Some(ResourceLimit::ShardCapacity { shard: 0 }));
        assert_eq!(r.states, 40, "the shard stops growing exactly at capacity");
        assert!(r.transitions > 0, "partial stats survive the early stop");
        assert!(r.violation.is_none());
    }

    #[test]
    fn shard_capacity_resolves_and_clamps() {
        let mut cfg = McConfig::with_caches(2);
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = 0;
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = usize::MAX;
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = 100;
        assert_eq!(cfg.effective_shard_capacity(), 100);
    }
}
