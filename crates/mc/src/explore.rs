//! Parallel explicit-state reachability exploration with invariant
//! checking.
//!
//! The explorer is an epoch-synchronized, sharded-frontier BFS: `threads`
//! workers each own one shard of the visited set (a state belongs to the
//! shard `fingerprint % threads`, see [`crate::store`]). Within an epoch
//! (one BFS level) a worker expands its frontier — held as canonical
//! *encodings*, decoded into a per-worker scratch state — steps each
//! successor into a second scratch state (no per-step clone), and routes
//! the successor's canonical encoding to the owning shard's bounded batch
//! queue, draining its own queue opportunistically between expansions.
//! Workers rendezvous only at epoch boundaries, where the last arriver
//! publishes the budget/violation decision (see [`crate::frontier`]). The
//! design is deterministic by construction: states, transitions, the
//! chosen violation, and the counterexample trace are identical for every
//! thread count and every run. DESIGN.md §3 documents the store, §8 the
//! canonicalization pruning, the scratch-stepping contract, and the
//! epoch-scheduler determinism argument.

use crate::canon::Canonicalizer;
use crate::frontier::{CandBatch, CandMeta, Coordinator, Decision, Inbox, Outboxes, VioCand};
use crate::property::{materialize, Property, PropertyCtx, PropertySet};
use crate::store::{Gid, ShardStore, StateRec, STEP_NONE};
use crate::system::SysState;
use protogen_runtime::{
    apply_into, select_arc_indexed, ApplyOutcome, FsmIndex, MachineCtx, MachineTag, NodeId, PairSet,
};
use protogen_spec::{Access, Event, Fsm};
use std::fmt;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Model-checker configuration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of caches (the paper verifies with 3, the most Murϕ could
    /// handle without exhausting memory; the sharded explorer is built to
    /// go past that).
    pub n_caches: usize,
    /// Abort exploration after this many states (checked at BFS-level
    /// granularity, so the final count may overshoot by one level).
    pub max_states: usize,
    /// Store values cycle through `0..value_domain` (small domain, the
    /// standard bounding discipline).
    pub value_domain: u8,
    /// Error out when a channel exceeds this length.
    pub channel_cap: usize,
    /// Point-to-point ordered channels (`true`) or arbitrary reordering.
    pub ordered: bool,
    /// Which built-in correctness properties to enforce (defaults to the
    /// SC contract: SWMR + data-value + deadlock freedom). Weak-memory
    /// protocols select the contract they actually promise via
    /// [`PropertySet::promised`]; custom [`crate::Property`] objects are
    /// attached with [`ModelChecker::add_property`].
    pub properties: PropertySet,
    /// Canonicalize states under cache-id permutation (Murϕ scalarsets).
    pub symmetry: bool,
    /// Worker threads (= visited-set shards). `0` — the default — means
    /// "use [`std::thread::available_parallelism`]"; values are clamped
    /// to [`crate::MAX_SHARDS`]. Results are identical for every thread
    /// count.
    pub threads: usize,
    /// Record every `(machine, state, event)` dispatch attempted during
    /// exploration into [`CheckResult::coverage`]. Off by default: the
    /// simulator-conformance tests are the only consumer.
    pub collect_pair_coverage: bool,
    /// Upper bound on the states one visited-set shard may hold. Defaults
    /// to (and is clamped to) the packed-id hardware limit of 2²⁷
    /// ([`crate::SHARD_CAPACITY`]); exceeding it stops exploration with a
    /// structured [`ResourceLimit::ShardCapacity`] outcome and partial
    /// stats instead of aborting the process. Lower it only to exercise
    /// that path cheaply — unlike `max_states` (checked against the global
    /// count), whether a *shard* fills up depends on how fingerprints
    /// distribute over `threads` shards.
    pub shard_capacity: usize,
    /// Soft RAM budget for the run's accounted state (visited shards,
    /// frontier arenas, batch pools), split evenly across workers. When a
    /// worker's share is exceeded, cold frontier bytes and frozen visited
    /// records spill to page-aligned scratch files and stream back in
    /// (see DESIGN.md §9). `0` — the default — disables spilling; the
    /// budget is also ignored on platforms without positioned file reads.
    /// Results are byte-identical at any budget.
    pub mem_budget_bytes: usize,
    /// How states are stored: full encodings, delta-compressed encodings,
    /// or fingerprints only (see [`StoreMode`]).
    pub store: StoreMode,
    /// Spill granularity: the frontier's hot arena is flushed in chunks of
    /// at least this many bytes (clamped up to one page). Exposed so tests
    /// can force spilling on tiny state spaces; the default of 1 MiB is
    /// right for real runs.
    pub spill_chunk_bytes: usize,
    /// Directory for epoch-boundary checkpoints. `None` — the default —
    /// disables checkpointing. When set, every [`McConfig::checkpoint_every`]-th
    /// BFS level writes a committed, checksummed snapshot of the visited
    /// store and frontier, and [`ModelChecker::resume`] can restart a
    /// killed run from the newest one with byte-identical results (see
    /// `crate::checkpoint` and DESIGN.md §13).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Checkpoint cadence in BFS levels (a checkpoint is written on
    /// entering each depth divisible by this). Values below 1 are treated
    /// as 1. Only meaningful when [`McConfig::checkpoint_dir`] is set.
    pub checkpoint_every: u32,
}

/// How the checker stores visited/frontier states (the tiered-store
/// tentpole: trade reconstruction capability for RAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// Full canonical encodings in the frontier arenas (the fastest mode
    /// and the default).
    #[default]
    Full,
    /// Frontier encodings are delta-compressed against the previous arena
    /// entry (BFS siblings share most bytes — see [`crate::encode_delta`]),
    /// typically 4–8× smaller. Everything else, including counterexample
    /// traces, works as in [`StoreMode::Full`].
    Delta,
    /// Murϕ "hash compaction" proper: only 64-bit fingerprints are kept
    /// per visited state — no parent records, so no counterexample trace
    /// can be reconstructed, and a fingerprint collision silently prunes
    /// part of the space. [`CheckResult::expected_collision_pairs`]
    /// quantifies that risk (DESIGN.md §3). Frontier encodings are
    /// delta-compressed as in [`StoreMode::Delta`].
    FpOnly,
}

impl StoreMode {
    /// Whether frontier arenas hold delta-compressed encodings.
    pub(crate) fn delta_frontier(self) -> bool {
        !matches!(self, StoreMode::Full)
    }

    /// Whether per-state parent records exist (trace reconstruction).
    pub(crate) fn keeps_recs(self) -> bool {
        !matches!(self, StoreMode::FpOnly)
    }
}

impl std::str::FromStr for StoreMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "full" => Ok(StoreMode::Full),
            "delta" => Ok(StoreMode::Delta),
            "fp-only" => Ok(StoreMode::FpOnly),
            _ => Err(format!("unknown store mode '{s}' (expected full, delta, or fp-only)")),
        }
    }
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            n_caches: 3,
            max_states: 20_000_000,
            value_domain: 2,
            channel_cap: 8,
            ordered: true,
            properties: PropertySet::sc(),
            symmetry: true,
            threads: 0,
            collect_pair_coverage: false,
            shard_capacity: crate::store::SHARD_CAPACITY,
            mem_budget_bytes: 0,
            store: StoreMode::Full,
            spill_chunk_bytes: 1 << 20,
            checkpoint_dir: None,
            checkpoint_every: 8,
        }
    }
}

impl McConfig {
    /// Configuration with `n` caches.
    pub fn with_caches(n: usize) -> Self {
        McConfig { n_caches: n, ..McConfig::default() }
    }

    /// Configuration with `n` caches explored by `threads` workers.
    pub fn with_caches_and_threads(n: usize, threads: usize) -> Self {
        McConfig { n_caches: n, threads, ..McConfig::default() }
    }

    /// The worker count actually used: `threads` resolved against the
    /// machine and clamped to `1..=MAX_SHARDS`.
    pub fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, crate::store::MAX_SHARDS)
    }

    /// The per-shard state bound actually enforced: `shard_capacity`
    /// clamped to the packed-id limit (a zero is treated as "no extra
    /// bound").
    pub fn effective_shard_capacity(&self) -> usize {
        if self.shard_capacity == 0 {
            crate::store::SHARD_CAPACITY
        } else {
            self.shard_capacity.min(crate::store::SHARD_CAPACITY)
        }
    }

    /// The memory budget actually enforced: `mem_budget_bytes`, or 0
    /// (spilling off) on platforms without positioned file reads.
    pub fn effective_mem_budget(&self) -> usize {
        if crate::spill::SPILL_SUPPORTED {
            self.mem_budget_bytes
        } else {
            0
        }
    }

    /// The spill granularity actually used: `spill_chunk_bytes` clamped
    /// up to one page.
    pub fn effective_spill_chunk(&self) -> usize {
        self.spill_chunk_bytes.max(crate::spill::PAGE as usize)
    }
}

/// Which resource bound stopped exploration before the state space was
/// exhausted. The run's [`CheckResult`] still carries everything explored
/// up to that point (partial stats), and [`CheckResult::passed`] is
/// `false`: an incomplete exploration proves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceLimit {
    /// The global [`McConfig::max_states`] budget was spent.
    StateBudget,
    /// A visited-set shard reached [`McConfig::shard_capacity`] states (the
    /// shard id is recorded; with several full shards in one level, the
    /// smallest id wins deterministically).
    ShardCapacity {
        /// The first (lowest-id) shard that filled up.
        shard: usize,
    },
}

impl fmt::Display for ResourceLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceLimit::StateBudget => f.write_str("state budget exhausted"),
            ResourceLimit::ShardCapacity { shard } => {
                write!(f, "visited-set shard {shard} reached capacity")
            }
        }
    }
}

/// One scheduling decision of the explored system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// Deliver the message at position `idx` of channel `src → dst`.
    Deliver {
        /// Source node.
        src: u8,
        /// Destination node.
        dst: u8,
        /// Queue position (always 0 with ordered channels).
        idx: u8,
    },
    /// Cache `cache` issues `access`.
    IssueAccess {
        /// The cache.
        cache: u8,
        /// The access.
        access: Access,
    },
}

/// Packs a step into 32 bits, preserving [`Step`]'s derived ordering:
/// deliveries sort before accesses, deliveries by `(src, dst, idx)`,
/// accesses by `(cache, access)` — the same order [`ModelChecker::steps`]
/// generates them in.
pub(crate) fn pack_step(step: Step) -> u32 {
    match step {
        Step::Deliver { src, dst, idx } => ((src as u32) << 16) | ((dst as u32) << 8) | idx as u32,
        Step::IssueAccess { cache, access } => {
            (1 << 24) | ((cache as u32) << 8) | access.index() as u32
        }
    }
}

/// Inverse of [`pack_step`]. Must not be called on [`STEP_NONE`].
pub(crate) fn unpack_step(packed: u32) -> Step {
    debug_assert_ne!(packed, STEP_NONE);
    if packed & (1 << 24) == 0 {
        Step::Deliver { src: (packed >> 16) as u8, dst: (packed >> 8) as u8, idx: packed as u8 }
    } else {
        Step::IssueAccess {
            cache: (packed >> 8) as u8,
            access: Access::ALL[(packed & 0xff) as usize],
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Deliver { src, dst, idx } => write!(f, "deliver n{src}→n{dst}[{idx}]"),
            Step::IssueAccess { cache, access } => write!(f, "cache n{cache} issues {access}"),
        }
    }
}

/// Why checking failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two caches hold conflicting permissions simultaneously.
    Swmr(String),
    /// A load returned a value other than the most recent store.
    DataValue(String),
    /// A non-quiescent state has no deliverable message.
    Deadlock,
    /// A message arrived for which the controller has no transition — the
    /// generated protocol is incomplete.
    UnexpectedMessage(String),
    /// A channel exceeded its capacity bound.
    ChannelOverflow(String),
    /// The runtime refused an action that is impossible in the current
    /// system state — a send addressed to an absent owner, data demanded
    /// from an invalid copy. A protocol-correctness violation of the
    /// *specification* (the checker catching a bad protocol), as opposed
    /// to [`ViolationKind::Exec`].
    IllegalAction(String),
    /// The runtime rejected an action over the generated machine's own
    /// structure (absent message context, bad deferred slot): a generator
    /// bug.
    Exec(String),
    /// A custom [`crate::Property`] (e.g. a per-litmus assertion) reported
    /// a violation.
    Property {
        /// The property's name.
        property: String,
        /// What it saw.
        detail: String,
    },
}

/// Deterministic ordering key over violation kinds (rank, detail) so the
/// end-of-level minimum-selection never depends on discovery order.
fn kind_key(kind: &ViolationKind) -> (u8, &str) {
    match kind {
        ViolationKind::Swmr(d) => (0, d),
        ViolationKind::DataValue(d) => (1, d),
        ViolationKind::Deadlock => (2, ""),
        ViolationKind::UnexpectedMessage(d) => (3, d),
        ViolationKind::ChannelOverflow(d) => (4, d),
        ViolationKind::IllegalAction(d) => (5, d),
        ViolationKind::Exec(d) => (6, d),
        ViolationKind::Property { detail, .. } => (7, detail),
    }
}

fn vio_key(v: &VioCand) -> (u64, u32, u8, &str) {
    let (rank, detail) = kind_key(&v.kind);
    (v.parent_fp, v.step, rank, detail)
}

/// Classifies a runtime execution failure: state-level impossibilities
/// are protocol violations the checker caught; structural ones are
/// generator bugs.
pub(crate) fn exec_violation(e: protogen_runtime::ExecError) -> ViolationKind {
    if e.is_state_error() {
        ViolationKind::IllegalAction(e.to_string())
    } else {
        ViolationKind::Exec(e.to_string())
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Swmr(d) => write!(f, "SWMR violation: {d}"),
            ViolationKind::DataValue(d) => write!(f, "data-value violation: {d}"),
            ViolationKind::Deadlock => f.write_str("deadlock"),
            ViolationKind::UnexpectedMessage(d) => write!(f, "unexpected message: {d}"),
            ViolationKind::ChannelOverflow(d) => write!(f, "channel overflow: {d}"),
            ViolationKind::IllegalAction(d) => write!(f, "illegal action: {d}"),
            ViolationKind::Exec(d) => write!(f, "execution error: {d}"),
            ViolationKind::Property { property, detail } => {
                write!(f, "property '{property}' violated: {detail}")
            }
        }
    }
}

/// A violation with its counterexample trace (one line per step from the
/// initial state). With symmetry reduction on, the trace walks canonical
/// representatives, so cache ids may be permuted between consecutive lines
/// — the standard scalarset-counterexample caveat.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable steps from the initial state to the violation.
    pub trace: Vec<String>,
}

/// Outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Distinct (canonicalized) states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// The deterministically chosen first violation, if any.
    pub violation: Option<Violation>,
    /// Whether a resource bound stopped exploration before exhausting the
    /// space (`limit` names which one).
    pub hit_state_limit: bool,
    /// The resource bound that stopped exploration, when one did. The
    /// stats above are the partial exploration up to that point.
    pub limit: Option<ResourceLimit>,
    /// Wall-clock seconds spent exploring.
    pub seconds: f64,
    /// Peak bytes held by the sharded visited set (fingerprint maps plus
    /// packed parent-pointer records).
    pub store_bytes: usize,
    /// Peak accounted RAM across one whole epoch: visited shards *plus*
    /// frontier arenas, outbox/batch-pool allocations, and queued inbox
    /// batches — the figure the old `store_bytes` understated. Sampled at
    /// epoch boundaries and summed across workers.
    pub peak_mem_bytes: usize,
    /// Payload bytes written to spill files (frontier arenas + frozen
    /// visited records) over the whole run. Zero when no memory budget is
    /// set or it was never exceeded.
    pub spill_bytes: u64,
    /// Spill chunks written over the whole run.
    pub spill_chunks: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Every `(machine, state, event)` dispatch attempted, when
    /// [`McConfig::collect_pair_coverage`] was set.
    pub coverage: Option<PairSet>,
}

impl CheckResult {
    /// Whether the protocol passed every check over the explored space.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.hit_state_limit
    }

    /// Expected number of state pairs merged by a 64-bit fingerprint
    /// collision: `n(n-1)/2⁶⁵` (DESIGN.md §3). Every store mode relies on
    /// hash compaction, but only [`StoreMode::FpOnly`] drops the evidence
    /// needed to notice one, so the CLI surfaces this bound there.
    pub fn expected_collision_pairs(&self) -> f64 {
        let n = self.states as f64;
        n * (n - 1.0) / 2f64.powi(65)
    }
}

/// One frontier entry: a canonical encoding (`off..off+len` in the
/// arena's *global* byte space, which spans spilled chunks plus the hot
/// tail) plus the state's shard-local id and fingerprint. The fingerprint
/// rides along so expansion never touches the store.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrontEntry {
    /// Global arena offset. `usize`, not `u32`: a single shard's level
    /// arena can exceed 4 GiB at raised `--max-states` (shard capacity is
    /// 2^27 states; ~120 B of encoding each), and a truncated offset
    /// would silently decode a wrong-but-plausible state next epoch.
    pub(crate) off: usize,
    pub(crate) len: u32,
    pub(crate) lid: u32,
    /// Whether the bytes are a delta against the previous entry's full
    /// encoding rather than a full encoding themselves.
    pub(crate) delta: bool,
    pub(crate) fp: u64,
}

/// Consecutive delta entries allowed before a full-encoding restart.
/// Entries are only ever read sequentially within an epoch, so chains
/// could be unbounded for correctness; periodic restarts bound the cost
/// of a corrupt-chain blast radius and keep individual deltas honest
/// (a drifted base stops compressing and falls back to full anyway).
const DELTA_RESTART: u32 = 64;

/// One BFS level of one shard: canonical encodings in one contiguous
/// arena. Two of these per worker (current and next) are recycled for the
/// whole run — frontier states cost ~the encoding length each, with no
/// per-state allocation.
///
/// Two orthogonal tiers stack on the seed design (DESIGN.md §9): in delta
/// mode each appended encoding is stored as a sectioned diff against the
/// previous entry ([`crate::encode_delta`]), and under a memory budget
/// the hot tail is flushed to a page-aligned spill file in whole chunks,
/// streamed back in next epoch. `off` in entries is *global* — chunk
/// flushing never rewrites the index.
#[derive(Debug, Default)]
pub(crate) struct FrontierBuf {
    /// The hot tail: bytes `spilled_off..` of the global arena.
    pub(crate) bytes: Vec<u8>,
    pub(crate) index: Vec<FrontEntry>,
    /// Global offset of `bytes[0]` (= bytes already spilled).
    spilled_off: usize,
    /// `(global_off, len, file_off)` per spilled chunk, in offset order.
    /// Entries never span chunks: a flush always takes the whole hot
    /// tail, and appends are entry-atomic.
    chunks: Vec<(usize, usize, u64)>,
    spill: Option<crate::spill::SpillFile>,
    /// Delta base: the previous appended entry's *full* encoding.
    last: Vec<u8>,
    /// Consecutive delta entries since the last full one.
    since_full: u32,
}

impl FrontierBuf {
    fn clear(&mut self) {
        self.bytes.clear();
        self.index.clear();
        self.spilled_off = 0;
        self.chunks.clear();
        if let Some(s) = self.spill.as_mut() {
            s.reset().expect("frontier spill reset failed");
        }
        self.last.clear();
        self.since_full = 0;
    }

    /// Appends `full` (a complete canonical encoding) as the next entry,
    /// delta-compressing against the previous entry when `delta_mode` and
    /// the delta actually wins.
    fn append(&mut self, n_caches: usize, full: &[u8], lid: u32, fp: u64, delta_mode: bool) {
        let off = self.spilled_off + self.bytes.len();
        let start = self.bytes.len();
        let delta = if delta_mode && !self.last.is_empty() && self.since_full < DELTA_RESTART {
            let dlen = crate::delta::encode_delta(n_caches, &self.last, full, &mut self.bytes);
            if dlen >= full.len() {
                self.bytes.truncate(start);
                self.bytes.extend_from_slice(full);
                false
            } else {
                true
            }
        } else {
            self.bytes.extend_from_slice(full);
            false
        };
        self.since_full = if delta { self.since_full + 1 } else { 0 };
        if delta_mode {
            self.last.clear();
            self.last.extend_from_slice(full);
        }
        let len = (self.bytes.len() - start) as u32;
        self.index.push(FrontEntry { off, len, lid, delta, fp });
    }

    /// Flushes the whole hot tail to the spill file as one page-aligned
    /// chunk (entries stay whole: appends are entry-atomic).
    fn spill_hot(&mut self, tag: &str) -> std::io::Result<()> {
        if self.bytes.is_empty() {
            return Ok(());
        }
        let spill = match self.spill.as_mut() {
            Some(s) => s,
            None => self.spill.insert(crate::spill::SpillFile::create(tag)?),
        };
        let file_off = spill.append_chunk(&self.bytes)?;
        self.chunks.push((self.spilled_off, self.bytes.len(), file_off));
        self.spilled_off += self.bytes.len();
        self.bytes.clear();
        Ok(())
    }

    /// RAM held by this arena's allocations.
    fn mem_bytes(&self) -> usize {
        self.bytes.capacity()
            + self.index.capacity() * std::mem::size_of::<FrontEntry>()
            + self.chunks.capacity() * std::mem::size_of::<(usize, usize, u64)>()
            + self.last.capacity()
    }

    /// Cumulative `(payload bytes, chunks)` spilled by this arena.
    fn spill_totals(&self) -> (u64, u64) {
        self.spill.as_ref().map_or((0, 0), |s| (s.total_written(), s.total_chunks()))
    }

    /// Materializes the arena's *global* byte string for the checkpoint
    /// tier: spilled chunks in offset order followed by the hot tail.
    /// Because entry offsets are global, the concatenation reproduces the
    /// arena with every index offset unchanged.
    pub(crate) fn global_bytes(&self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.spilled_off + self.bytes.len());
        for &(off, len, file_off) in &self.chunks {
            debug_assert_eq!(off, out.len());
            let start = out.len();
            out.resize(start + len, 0);
            self.spill
                .as_ref()
                .ok_or_else(|| std::io::Error::other("spilled chunks without a spill file"))?
                .read_exact_at(&mut out[start..], file_off)?;
        }
        out.extend_from_slice(&self.bytes);
        Ok(out)
    }

    /// Rebuilds an arena from a checkpoint snapshot: everything hot, no
    /// spill tier. The delta-append state (`last`/`since_full`) is *not*
    /// part of a snapshot and need not be: after a restore the arena is
    /// only ever read sequentially (reads reconstruct delta chains from
    /// the entries themselves), and the first append after the next
    /// `clear()` always restarts with a full encoding.
    pub(crate) fn restored(index: Vec<FrontEntry>, bytes: Vec<u8>) -> FrontierBuf {
        FrontierBuf { bytes, index, ..FrontierBuf::default() }
    }
}

/// The model checker: explores every reachable state of N caches + the
/// directory running the generated FSMs, checking the configured
/// [`PropertySet`] (SWMR, data-value, single-writer, deadlock freedom)
/// plus protocol completeness, which is structural and always on.
///
/// Exploration is multi-threaded (see [`McConfig::threads`]) but the
/// result is thread-count- and interleaving-independent.
#[derive(Debug)]
pub struct ModelChecker<'a> {
    cache_fsm: &'a Fsm,
    dir_fsm: &'a Fsm,
    cfg: McConfig,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
    /// The materialized property objects: the built-ins selected by
    /// `cfg.properties`, in deterministic order, plus any custom ones
    /// attached via [`ModelChecker::add_property`].
    props: Vec<Box<dyn Property>>,
}

/// Per-thread exploration state: one visited-set shard, the current and
/// next frontier arenas, the outgoing candidate batches, and every
/// scratch buffer the hot path reuses (decoded state, successor state,
/// apply outcome, step list, pruned canonicalizer) — the worker-local
/// arena that makes steady-state expansion allocation-free.
struct Worker<'w, 'a> {
    mc: &'w ModelChecker<'a>,
    t: usize,
    n_shards: usize,
    store: ShardStore,
    cur: FrontierBuf,
    next: FrontierBuf,
    out: Outboxes,
    canon: Canonicalizer,
    /// Scratch: the frontier state being expanded (decoded in place).
    state: SysState,
    /// Scratch: the successor being stepped into (copy-on-write via
    /// `clone_from`, which reuses its nested allocations).
    succ: SysState,
    /// Scratch: the reusable apply outcome (outgoing-message buffer).
    outcome: ApplyOutcome,
    steps_buf: Vec<Step>,
    violations: Vec<VioCand>,
    cov: Option<PairSet>,
    new_count: usize,
    depth: u32,
    cap: usize,
    /// `store.len()` at the start of the current epoch: a duplicate hit
    /// with `lid >= epoch_start` was inserted *this* epoch (records append
    /// monotonically per epoch), which is exactly the old
    /// `rec.depth == depth + 1` parent-race condition — without reading a
    /// possibly-frozen record.
    epoch_start: u32,
    /// This worker's slice of [`McConfig::mem_budget_bytes`] (0 = no
    /// budget, spilling off).
    budget_share: usize,
    /// Minimum hot-tail size before a frontier flush is considered.
    spill_chunk: usize,
    /// [`StoreMode::delta_frontier`] / [`StoreMode::keeps_recs`], cached.
    delta_mode: bool,
    keeps_recs: bool,
    /// Scratch: the successor's full encoding (delta mode encodes here
    /// first, then diffs into the arena).
    enc_scratch: Vec<u8>,
    /// Scratch: previous frontier entry's reconstructed full encoding
    /// (the delta base while reading `cur` sequentially).
    prev_full: Vec<u8>,
    /// Scratch: the current entry's reconstructed full encoding.
    cur_full: Vec<u8>,
    /// Scratch: the spilled chunk of `cur` currently loaded.
    chunk_buf: Vec<u8>,
    /// Index into `cur.chunks` of `chunk_buf` (`usize::MAX` = none).
    chunk_at: usize,
    inboxes: &'w [Inbox],
    coord: &'w Coordinator,
}

impl<'w, 'a> Worker<'w, 'a> {
    fn new(
        mc: &'w ModelChecker<'a>,
        t: usize,
        n_shards: usize,
        inboxes: &'w [Inbox],
        coord: &'w Coordinator,
    ) -> Self {
        let n = mc.cfg.n_caches;
        let budget = mc.cfg.effective_mem_budget();
        Worker {
            mc,
            t,
            n_shards,
            store: ShardStore::new(),
            cur: FrontierBuf::default(),
            next: FrontierBuf::default(),
            out: Outboxes::new(n_shards),
            canon: Canonicalizer::new(n, mc.cfg.symmetry),
            state: SysState::initial(n),
            succ: SysState::initial(n),
            outcome: ApplyOutcome::default(),
            steps_buf: Vec::new(),
            violations: Vec::new(),
            cov: mc.cfg.collect_pair_coverage.then(PairSet::new),
            new_count: 0,
            depth: 0,
            cap: mc.cfg.effective_shard_capacity(),
            epoch_start: 0,
            budget_share: if budget == 0 { 0 } else { (budget / n_shards).max(1) },
            spill_chunk: mc.cfg.effective_spill_chunk(),
            delta_mode: mc.cfg.store.delta_frontier(),
            keeps_recs: mc.cfg.store.keeps_recs(),
            enc_scratch: Vec::new(),
            prev_full: Vec::new(),
            cur_full: Vec::new(),
            chunk_buf: Vec::new(),
            chunk_at: usize::MAX,
            inboxes,
            coord,
        }
    }

    /// Installs the canonical initial state as this shard's root.
    fn seed_root(&mut self, initial: &SysState, fp0: u64) {
        self.store.map.insert(fp0, 0);
        if self.keeps_recs {
            self.store.push_rec(StateRec {
                parent_fp: fp0,
                parent: Gid::pack(self.t, 0),
                step: STEP_NONE,
                depth: 0,
            });
        }
        let enc = initial.encode();
        self.cur.append(self.mc.cfg.n_caches, &enc, 0, fp0, self.delta_mode);
    }

    /// Installs a loaded checkpoint shard in place of a fresh start: the
    /// restored visited store and frontier, positioned at the top of the
    /// checkpointed epoch (exactly where the checkpoint was taken).
    fn restore_snapshot(&mut self, snap: crate::checkpoint::ShardSnapshot, depth: u32) {
        self.store = ShardStore::restore(&snap.fps, snap.recs);
        self.cur = FrontierBuf::restored(snap.entries, snap.arena);
        self.depth = depth;
    }

    /// The worker loop: one iteration per BFS epoch.
    ///
    /// Each phase body runs under `catch_unwind`: a panicking worker
    /// records its payload on the coordinator and keeps rendezvousing
    /// doing no work, so the fleet drains and the panic is re-raised on
    /// the calling thread instead of deadlocking the phaser.
    fn run(mut self) -> ShardStore {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        self.epoch_start = self.store.len() as u32;
        loop {
            let coord = self.coord;
            // Expand this shard's frontier, routing successor encodings
            // and draining arriving batches opportunistically.
            if !coord.aborted.load(Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.expand_epoch())) {
                    coord.record_panic(payload);
                }
            }
            // Expansion boundary: everyone's candidates are queued. While
            // waiting for stragglers, keep servicing the inbox so bounded
            // queues cannot wedge the fleet.
            coord.phaser.arrive_and_drain(|| {
                if !coord.aborted.load(Relaxed) {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                        self.drain_available();
                    })) {
                        coord.record_panic(payload);
                    }
                }
            });
            // Final drain + merge of this epoch's counts and violations.
            if !coord.aborted.load(Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.finish_epoch())) {
                    coord.record_panic(payload);
                }
            }
            // Decision boundary: the last arriver publishes the epoch
            // decision for everyone.
            let mc = self.mc;
            coord.phaser.arrive(|| {
                let dec = if coord.aborted.load(Relaxed) {
                    Decision::Stop { violation: None, hit_limit: false }
                } else {
                    match catch_unwind(AssertUnwindSafe(|| mc.decide(coord))) {
                        Ok(dec) => dec,
                        Err(payload) => {
                            coord.record_panic(payload);
                            Decision::Stop { violation: None, hit_limit: false }
                        }
                    }
                };
                // Poison-recovery: a panicking sibling already recorded
                // its payload on the coordinator; the decision value
                // itself is always written whole, so the lock's data is
                // usable even when poisoned.
                *coord.decision.lock().unwrap_or_else(|e| e.into_inner()) = dec;
            });
            if matches!(
                *coord.decision.lock().unwrap_or_else(|e| e.into_inner()),
                Decision::Stop { .. }
            ) {
                // Fold this worker's frontier spill totals into the
                // fleet counters (the store's totals travel with the
                // returned shard).
                let (cb, cc) = self.cur.spill_totals();
                let (nb, nc) = self.next.spill_totals();
                coord.spill_bytes.fetch_add(cb + nb, Relaxed);
                coord.spill_chunks.fetch_add(cc + nc, Relaxed);
                return self.store;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.clear();
            self.chunk_at = usize::MAX;
            self.prev_full.clear();
            self.depth += 1;
            self.epoch_start = self.store.len() as u32;
            // Checkpoint point: the one place in an epoch where shard
            // state is minimal and final — records frozen, `next` empty,
            // queues drained, `cur` read-only from here on. The trigger
            // depends only on (depth, config), so every worker takes the
            // extra rendezvous in lockstep.
            if let Some(dir) = mc.cfg.checkpoint_dir.as_deref() {
                if self.depth.is_multiple_of(mc.cfg.checkpoint_every.max(1)) {
                    self.write_checkpoint(dir);
                }
            }
        }
    }

    /// Writes this shard's checkpoint file, then rendezvouses; the last
    /// arriver commits the manifest. Both steps run under `catch_unwind`
    /// with the fleet's usual panic discipline; a panic anywhere means the
    /// manifest is never committed, so the previous checkpoint (if any)
    /// stays the authoritative one.
    fn write_checkpoint(&mut self, dir: &std::path::Path) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let coord = self.coord;
        if !coord.aborted.load(Relaxed) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                crate::checkpoint::write_shard(
                    dir,
                    self.depth,
                    self.t,
                    &self.store,
                    &self.cur,
                    self.keeps_recs,
                )
                .expect("checkpoint shard write failed");
            })) {
                coord.record_panic(payload);
            }
        }
        let (mc, depth, n_shards) = (self.mc, self.depth, self.n_shards);
        coord.phaser.arrive(|| {
            if !coord.aborted.load(Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                    crate::checkpoint::commit(dir, depth, n_shards, mc, &mc.cfg, coord)
                        .expect("checkpoint manifest commit failed");
                })) {
                    coord.record_panic(payload);
                }
            }
        });
    }

    /// Expands every frontier entry of the current epoch: decode into the
    /// scratch state, step each successor into the successor scratch,
    /// check invariants, and route canonical encodings to owning shards.
    fn expand_epoch(&mut self) {
        let mut local_transitions = 0usize;
        for i in 0..self.cur.index.len() {
            // Service the inbox between expansions so deduplication
            // overlaps expansion instead of serializing behind it.
            if self.n_shards > 1 && i & 0xf == 0 {
                self.drain_available();
            }
            let e = self.cur.index[i];
            self.load_entry(i);
            let gid = Gid::pack(self.t, e.lid as usize);
            let mut any_delivery = false;
            self.mc.steps_into(&self.state, &mut self.steps_buf);
            for si in 0..self.steps_buf.len() {
                let step = self.steps_buf[si];
                let observed = self.mc.successor_observed_into(
                    &self.state,
                    step,
                    &mut self.succ,
                    &mut self.outcome,
                    self.cov.as_mut(),
                );
                match observed {
                    Err(kind) => self.violations.push(VioCand {
                        parent: gid,
                        parent_fp: e.fp,
                        step: pack_step(step),
                        kind,
                    }),
                    Ok(false) => {}
                    Ok(true) => {
                        if matches!(step, Step::Deliver { .. }) {
                            any_delivery = true;
                        }
                        local_transitions += 1;
                        if let Some(kind) = self.mc.check_state(&self.succ) {
                            self.violations.push(VioCand {
                                parent: gid,
                                parent_fp: e.fp,
                                step: pack_step(step),
                                kind,
                            });
                        } else {
                            self.route_succ(e.fp, gid, pack_step(step));
                        }
                    }
                }
            }
            // Liveness hook: no deliverable message from this state. New
            // accesses can only add transactions, never unblock existing
            // ones, so they do not count as progress; the DeadlockFree
            // property flags the state if work is still pending.
            if !any_delivery {
                if let Some(kind) = self.mc.check_quiescence(&self.state) {
                    self.violations.push(VioCand {
                        parent: gid,
                        parent_fp: e.fp,
                        step: STEP_NONE,
                        kind,
                    });
                }
            }
        }
        // Seal and deliver every open batch (end of this epoch's
        // expansion), then merge the level counters.
        for shard in 0..self.n_shards {
            if shard != self.t {
                if let Some(batch) = self.out.take(shard) {
                    self.deliver(shard, batch);
                }
            }
        }
        self.coord.transitions.fetch_add(local_transitions, Relaxed);
        if let Some(c) = self.cov.as_mut() {
            if !c.is_empty() {
                let taken = std::mem::take(c);
                self.coord.coverage.lock().unwrap().extend(taken);
            }
        }
    }

    /// Decodes frontier entry `i` into the scratch state, resolving the
    /// spill tier and the delta chain. Entries are only ever read in
    /// index order within an epoch — the sequential contract the delta
    /// chain (each entry's base is its predecessor's full encoding) and
    /// the streamed chunk loads rely on.
    fn load_entry(&mut self, i: usize) {
        let n = self.mc.cfg.n_caches;
        let e = self.cur.index[i];
        if !self.delta_mode && e.off >= self.cur.spilled_off {
            // Full mode, hot arena: the seed fast path, zero copies.
            let start = e.off - self.cur.spilled_off;
            self.state.decode_into(&self.cur.bytes[start..start + e.len as usize], n);
            return;
        }
        let (in_hot, start) = if e.off >= self.cur.spilled_off {
            (true, e.off - self.cur.spilled_off)
        } else {
            let ci = self.cur.chunks.partition_point(|&(off, len, _)| off + len <= e.off);
            if self.chunk_at != ci {
                let (_, clen, file_off) = self.cur.chunks[ci];
                self.chunk_buf.resize(clen, 0);
                self.cur
                    .spill
                    .as_ref()
                    .expect("spilled frontier implies a spill file")
                    .read_exact_at(&mut self.chunk_buf, file_off)
                    .expect("frontier spill read failed");
                self.chunk_at = ci;
            }
            (false, e.off - self.cur.chunks[self.chunk_at].0)
        };
        let raw = if in_hot {
            &self.cur.bytes[start..start + e.len as usize]
        } else {
            &self.chunk_buf[start..start + e.len as usize]
        };
        self.cur_full.clear();
        if e.delta {
            crate::delta::apply_delta(n, &self.prev_full, raw, &mut self.cur_full);
        } else {
            self.cur_full.extend_from_slice(raw);
        }
        self.state.decode_into(&self.cur_full, n);
        std::mem::swap(&mut self.prev_full, &mut self.cur_full);
    }

    /// Routes the successor in `self.succ`: canonicalize, fingerprint,
    /// and either insert locally (own shard — no bytes ever copied for
    /// duplicates) or append the canonical encoding to the owner's batch.
    fn route_succ(&mut self, parent_fp: u64, parent: Gid, step: u32) {
        let fp = self.canon.canonical_fp(&self.succ);
        let owner = (fp % self.n_shards as u64) as usize;
        if owner == self.t {
            self.insert_own(fp, parent_fp, parent, step);
        } else {
            let bytes = self.out.bytes_of(owner);
            let off = bytes.len() as u32;
            self.canon.encode_best_into(&self.succ, bytes);
            let len = bytes.len() as u32 - off;
            if let Some(batch) =
                self.out.push_meta(owner, CandMeta { fp, parent_fp, parent, step, off, len })
            {
                self.deliver(owner, batch);
            }
        }
    }

    /// Dedup-or-insert for a successor this shard owns. Only a *new*
    /// state pays for encoding into the next-frontier arena.
    fn insert_own(&mut self, fp: u64, parent_fp: u64, parent: Gid, step: u32) {
        self.insert(fp, parent_fp, parent, step, None);
    }

    /// Dedup-or-insert for a candidate received from another worker: the
    /// canonical encoding already exists in the batch arena, so a new
    /// state is one `extend_from_slice` and a duplicate costs nothing.
    fn insert_enc(&mut self, m: &CandMeta, enc: &[u8]) {
        self.insert(m.fp, m.parent_fp, m.parent, m.step, Some(enc));
    }

    /// The one dedup-or-insert path (own-shard and cross-shard candidates
    /// must never diverge — the parent-race fold and the capacity check
    /// are part of the determinism contract). `enc` carries the canonical
    /// encoding when it already exists (a received candidate); `None`
    /// means "encode `self.succ` via the canonicalizer", so duplicates
    /// from this shard's own expansion never pay for byte emission.
    fn insert(&mut self, fp: u64, parent_fp: u64, parent: Gid, step: u32, enc: Option<&[u8]>) {
        if let Some(&lid) = self.store.map.get(&fp) {
            // Same-level parent race: `lid >= epoch_start` identifies a
            // this-epoch insert (== the old `rec.depth == depth + 1`
            // check) without touching a possibly-frozen record; records
            // from earlier epochs are final. No records exist to race on
            // in fingerprint-only mode.
            if self.keeps_recs && lid >= self.epoch_start {
                let rec = self.store.rec_mut(lid as usize);
                if (parent_fp, step) < (rec.parent_fp, rec.step) {
                    rec.parent_fp = parent_fp;
                    rec.parent = parent;
                    rec.step = step;
                }
            }
        } else {
            let local = self.store.len();
            if local >= self.cap || Gid::try_pack(self.t, local).is_none() {
                self.coord.exhausted_shard.fetch_min(self.t, Relaxed);
                return;
            }
            let lid = local as u32;
            self.store.map.insert(fp, lid);
            if self.keeps_recs {
                self.store.push_rec(StateRec { parent_fp, parent, step, depth: self.depth + 1 });
            }
            if self.delta_mode {
                let n = self.mc.cfg.n_caches;
                match enc {
                    Some(e) => self.next.append(n, e, lid, fp, true),
                    None => {
                        self.enc_scratch.clear();
                        self.canon.encode_best_into(&self.succ, &mut self.enc_scratch);
                        self.next.append(n, &self.enc_scratch, lid, fp, true);
                    }
                }
            } else {
                // Full mode streams the encoding straight into the arena
                // (the seed hot path: duplicates from this shard's own
                // expansion never paid for byte emission, new states pay
                // exactly once).
                let off = self.next.spilled_off + self.next.bytes.len();
                let start = self.next.bytes.len();
                match enc {
                    Some(e) => self.next.bytes.extend_from_slice(e),
                    None => self.canon.encode_best_into(&self.succ, &mut self.next.bytes),
                }
                let len = (self.next.bytes.len() - start) as u32;
                self.next.index.push(FrontEntry { off, len, lid, delta: false, fp });
            }
            self.new_count += 1;
            self.maybe_spill_frontier();
        }
    }

    /// Flushes the next-frontier hot tail to its spill file when it has
    /// reached chunk size *and* this worker is over its budget share.
    fn maybe_spill_frontier(&mut self) {
        if self.budget_share == 0 || self.next.bytes.len() < self.spill_chunk {
            return;
        }
        if self.accounted_bytes() > self.budget_share {
            self.next.spill_hot("frontier").expect("frontier spill write failed");
        }
    }

    /// RAM accounted against this worker's budget share: visited shard,
    /// both frontier arenas, and the outbox batches + recycled-arena pool
    /// (everything the old store-only figure left out).
    fn accounted_bytes(&self) -> usize {
        self.store.mem_bytes() + self.cur.mem_bytes() + self.next.mem_bytes() + self.out.mem_bytes()
    }

    /// Drains every batch currently queued for this shard. Returns
    /// whether anything was processed.
    fn drain_available(&mut self) -> bool {
        let mut any = false;
        while let Some(batch) = self.inboxes[self.t].pop() {
            for i in 0..batch.meta.len() {
                let m = batch.meta[i];
                self.insert_enc(&m, batch.enc(&m));
            }
            self.out.recycle(batch);
            any = true;
        }
        any
    }

    /// Delivers a sealed batch to `owner`'s bounded inbox, draining this
    /// worker's own inbox while backpressured (which is what makes the
    /// bound deadlock-free: if every worker is blocked pushing, every
    /// inbox is being drained).
    fn deliver(&mut self, owner: usize, batch: CandBatch) {
        let mut batch = batch;
        loop {
            match self.inboxes[owner].try_push(batch) {
                Ok(()) => return,
                Err(back) => {
                    batch = back;
                    if self.coord.aborted.load(Relaxed) {
                        // The fleet is draining after a panic; the run's
                        // results are void, so the batch can be dropped.
                        self.out.recycle(batch);
                        return;
                    }
                    if !self.drain_available() {
                        self.inboxes[owner].wait_for_space(std::time::Duration::from_micros(200));
                    }
                }
            }
        }
    }

    /// After the expansion rendezvous: ingest the last batches, sample
    /// memory, spill frozen visited records if over budget, and merge
    /// this worker's epoch results into the aggregate.
    fn finish_epoch(&mut self) {
        self.drain_available();
        // Sample accounted RAM *before* acting on the budget — the peak
        // figure should reflect what this epoch actually held. The own
        // inbox is empty right after the final drain; its term covers the
        // (rare) capacity retained across the rendezvous.
        let mem = self.accounted_bytes() + self.inboxes[self.t].mem_bytes();
        self.coord.epoch_mem.fetch_add(mem, Relaxed);
        // At this point every record is final: parent-race updates only
        // ever touch records inserted in the *current* epoch, and this
        // epoch's inserts are all in. So the whole hot vector can freeze
        // to disk in one chunk.
        if self.budget_share != 0 && self.keeps_recs && self.accounted_bytes() > self.budget_share {
            self.store.spill_frozen("visited").expect("visited spill write failed");
        }
        self.coord.total_states.fetch_add(self.new_count, Relaxed);
        let mut agg = self.coord.agg.lock().unwrap();
        agg.new_states += self.new_count;
        agg.violations.append(&mut self.violations);
        drop(agg);
        self.new_count = 0;
    }
}

impl<'a> ModelChecker<'a> {
    /// Creates a checker for the given controllers.
    pub fn new(cache_fsm: &'a Fsm, dir_fsm: &'a Fsm, cfg: McConfig) -> Self {
        let cache_idx = FsmIndex::new(cache_fsm);
        let dir_idx = FsmIndex::new(dir_fsm);
        let props = materialize(cfg.properties);
        ModelChecker { cache_fsm, dir_fsm, cfg, cache_idx, dir_idx, props }
    }

    /// Attaches a custom property (checked after the built-ins, in
    /// attachment order). The per-litmus-assertion hook.
    pub fn add_property(&mut self, p: Box<dyn Property>) {
        self.props.push(p);
    }

    /// Names of the properties this checker enforces, in check order.
    pub fn property_names(&self) -> Vec<&str> {
        self.props.iter().map(|p| p.name()).collect()
    }

    /// The generated FSM pair this checker verifies (for the checkpoint
    /// manifest's machine fingerprint).
    pub(crate) fn fsms(&self) -> (&Fsm, &Fsm) {
        (self.cache_fsm, self.dir_fsm)
    }

    fn property_ctx(&self) -> PropertyCtx<'_> {
        PropertyCtx { cache_fsm: self.cache_fsm, dir_fsm: self.dir_fsm }
    }

    /// First violation any property reports on a load hit, in check order.
    fn check_load_hit(&self, cache: u8, value: u8, ghost: u8) -> Option<ViolationKind> {
        let cx = self.property_ctx();
        self.props.iter().find_map(|p| p.check_load_hit(&cx, cache, value, ghost))
    }

    /// First violation any property reports on a quiescent (no deliverable
    /// message) state, in check order.
    fn check_quiescence(&self, state: &SysState) -> Option<ViolationKind> {
        let cx = self.property_ctx();
        self.props.iter().find_map(|p| p.check_quiescence(&cx, state))
    }

    /// Runs breadth-first exploration until exhaustion, a violation, or the
    /// state limit.
    pub fn run(&self) -> CheckResult {
        self.run_with(None)
    }

    /// Resumes exploration from the newest committed checkpoint under
    /// [`McConfig::checkpoint_dir`]. The checkpoint is fully validated
    /// first — checksums, manifest↔shard agreement, and that the
    /// configuration and generated FSMs match what the checkpoint was
    /// written under; any mismatch or corruption is a hard
    /// [`CheckpointError`], never a silent fresh start. The worker count
    /// comes from the manifest (shard assignment is `fp % threads`), so
    /// [`McConfig::threads`] is ignored on resume. A resumed run's
    /// states, transitions, violation, and counterexample trace are
    /// byte-identical to an uninterrupted run's; wall-clock and memory
    /// statistics describe only the resumed portion, and pair coverage —
    /// merged per epoch, not checkpointed — covers only re-executed
    /// epochs.
    pub fn resume(&self) -> Result<CheckResult, crate::checkpoint::CheckpointError> {
        let loaded = crate::checkpoint::load_latest(self, &self.cfg)?;
        Ok(self.run_with(Some(loaded)))
    }

    fn run_with(&self, resume: Option<crate::checkpoint::LoadedCheckpoint>) -> CheckResult {
        let start = Instant::now();
        let threads = resume.as_ref().map_or_else(|| self.cfg.effective_threads(), |r| r.threads);

        let mut canon0 = Canonicalizer::new(self.cfg.n_caches, self.cfg.symmetry);
        let initial = canon0.canonical_rep(&SysState::initial(self.cfg.n_caches));
        let fp0 = canon0.canonical_fp(&initial);
        let owner0 = (fp0 % threads as u64) as usize;

        let inboxes: Vec<Inbox> = (0..threads).map(|_| Inbox::default()).collect();
        let coord = Coordinator::new(threads);
        let (depth0, mut snaps) = match resume {
            Some(r) => {
                coord.total_states.store(r.total_states, Relaxed);
                coord.transitions.store(r.transitions, Relaxed);
                (r.depth, r.shards.into_iter().map(Some).collect())
            }
            None => {
                coord.total_states.store(1, Relaxed);
                (0, (0..threads).map(|_| None).collect::<Vec<_>>())
            }
        };

        let stores: Vec<ShardStore> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let inboxes = &inboxes;
                    let coord = &coord;
                    let initial = &initial;
                    let snap = snaps[t].take();
                    s.spawn(move || {
                        let mut w = Worker::new(self, t, threads, inboxes, coord);
                        match snap {
                            Some(snap) => w.restore_snapshot(snap, depth0),
                            None if t == owner0 => w.seed_root(initial, fp0),
                            None => {}
                        }
                        w.run()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // A worker phase panicked: all workers drained cleanly through the
        // rendezvous; surface the original panic here.
        if let Some(payload) = coord.panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            std::panic::resume_unwind(payload);
        }

        let states = stores.iter().map(|s| s.len()).sum();
        let transitions = coord.transitions.load(Relaxed);
        let store_bytes = stores.iter().map(|s| s.mem_bytes()).sum();
        let peak_mem_bytes = coord.peak_mem.load(Relaxed);
        let (mut spill_bytes, mut spill_chunks) =
            (coord.spill_bytes.load(Relaxed), coord.spill_chunks.load(Relaxed));
        for s in &stores {
            let (b, c) = s.spill_totals();
            spill_bytes += b;
            spill_chunks += c;
        }
        let (violation, hit_limit) =
            match coord.decision.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Decision::Stop { violation, hit_limit } => {
                    let v = violation.map(|v| Violation {
                        kind: v.kind.clone(),
                        trace: self.build_trace(&stores, &v),
                    });
                    (v, hit_limit)
                }
                Decision::Continue => (None, false),
            };
        let limit = if hit_limit {
            let shard = coord.exhausted_shard.load(Relaxed);
            if shard == usize::MAX {
                Some(ResourceLimit::StateBudget)
            } else {
                Some(ResourceLimit::ShardCapacity { shard })
            }
        } else {
            None
        };

        let coverage = self
            .cfg
            .collect_pair_coverage
            .then(|| std::mem::take(&mut *coord.coverage.lock().unwrap()));
        CheckResult {
            states,
            transitions,
            violation,
            hit_state_limit: hit_limit,
            limit,
            seconds: start.elapsed().as_secs_f64(),
            store_bytes,
            peak_mem_bytes,
            spill_bytes,
            spill_chunks,
            threads,
            coverage,
        }
    }

    /// Decision (run by the last arriver at the dedup rendezvous):
    /// selects the minimum-key violation of the epoch, or stops on
    /// exhaustion / the state budget.
    fn decide(&self, coord: &Coordinator) -> Decision {
        // Fold the epoch's fleet-wide memory sample into the running peak
        // and reset the accumulator for the next epoch.
        let epoch_mem = coord.epoch_mem.swap(0, Relaxed);
        coord.peak_mem.fetch_max(epoch_mem, Relaxed);
        let mut agg = coord.agg.lock().unwrap();
        let mut vios = std::mem::take(&mut agg.violations);
        let new_states = std::mem::take(&mut agg.new_states);
        drop(agg);
        if !vios.is_empty() {
            vios.sort_by(|a, b| vio_key(a).cmp(&vio_key(b)));
            Decision::Stop { violation: Some(vios.remove(0)), hit_limit: false }
        } else if coord.exhausted_shard.load(Relaxed) != usize::MAX {
            // A shard refused inserts this level: the frontier is
            // incomplete, so "no new states" below would falsely read as
            // exhaustion. Stop with the limit flag.
            Decision::Stop { violation: None, hit_limit: true }
        } else if new_states == 0 {
            Decision::Stop { violation: None, hit_limit: false }
        } else if coord.total_states.load(Relaxed) >= self.cfg.max_states {
            Decision::Stop { violation: None, hit_limit: true }
        } else {
            Decision::Continue
        }
    }

    /// All candidate steps from `state`, in canonical order: deliveries
    /// first, sorted by `(src, dst, idx)`, then accesses sorted by
    /// `(cache, access)`. The order is a pure function of `state` — never
    /// of thread interleaving — which keeps counterexample traces
    /// byte-identical run to run.
    pub fn steps(&self, state: &SysState) -> Vec<Step> {
        let mut out = Vec::new();
        self.steps_into(state, &mut out);
        out
    }

    fn steps_into(&self, state: &SysState, out: &mut Vec<Step>) {
        out.clear();
        let n = state.n_caches() + 1;
        for src in 0..n {
            for dst in 0..n {
                let q = &state.channels[src][dst];
                if q.is_empty() {
                    continue;
                }
                let last = if self.cfg.ordered { 1 } else { q.len() };
                for idx in 0..last {
                    out.push(Step::Deliver { src: src as u8, dst: dst as u8, idx: idx as u8 });
                }
            }
        }
        for cache in 0..state.n_caches() {
            for access in Access::ALL {
                out.push(Step::IssueAccess { cache: cache as u8, access });
            }
        }
    }

    /// [`Self::successor_into`] plus pair-coverage recording: notes which
    /// `(machine, state, event)` pair the step dispatches on before
    /// computing the successor. Pairs are permutation-invariant (all
    /// caches run the same FSM and message types survive renaming), so
    /// recording them on canonical representatives covers every orbit
    /// member.
    fn successor_observed_into(
        &self,
        state: &SysState,
        step: Step,
        succ: &mut SysState,
        outcome: &mut ApplyOutcome,
        cov: Option<&mut PairSet>,
    ) -> Result<bool, ViolationKind> {
        if let Some(cov) = cov {
            match step {
                Step::Deliver { src, dst, idx } => {
                    let msg = state.channels[src as usize][dst as usize][idx as usize];
                    if dst as usize == state.n_caches() {
                        cov.insert((MachineTag::DIRECTORY, state.dir.state, Event::Msg(msg.mtype)));
                    } else {
                        cov.insert((
                            MachineTag::CACHE,
                            state.caches[dst as usize].state,
                            Event::Msg(msg.mtype),
                        ));
                    }
                }
                Step::IssueAccess { cache, access } => {
                    cov.insert((
                        MachineTag::CACHE,
                        state.caches[cache as usize].state,
                        Event::Access(access),
                    ));
                }
            }
        }
        self.successor_into(state, step, succ, outcome)
    }

    /// Computes the successor of `state` for `step` into the scratch
    /// state `succ` (copy-on-write: `succ.clone_from(state)` reuses its
    /// nested allocations, so steady-state stepping allocates nothing).
    /// Returns `Ok(false)` when the step is not enabled (stalled message,
    /// absent access arc, busy cache) — `succ` is garbage then and must
    /// not be read.
    fn successor_into(
        &self,
        state: &SysState,
        step: Step,
        succ: &mut SysState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        match step {
            Step::Deliver { src, dst, idx } => {
                self.deliver_into(state, src, dst, idx, succ, outcome)
            }
            Step::IssueAccess { cache, access } => {
                self.issue_into(state, cache, access, succ, outcome)
            }
        }
    }

    /// The clone-per-step successor as a standalone state (`Ok(None)`
    /// when the step is not enabled). A cold-path convenience over the
    /// internal scratch-stepping path, public for tests and the
    /// canonicalization proptests/microbenchmark, which random-walk the
    /// reachable space outside the explorer.
    pub fn successor_state(
        &self,
        state: &SysState,
        step: Step,
    ) -> Result<Option<SysState>, ViolationKind> {
        self.successor(state, step)
    }

    /// The clone-per-step successor (cold paths: counterexample replay,
    /// [`Self::sample_states`]).
    fn successor(&self, state: &SysState, step: Step) -> Result<Option<SysState>, ViolationKind> {
        let mut succ = SysState::initial(self.cfg.n_caches);
        let mut outcome = ApplyOutcome::default();
        match self.successor_into(state, step, &mut succ, &mut outcome)? {
            true => Ok(Some(succ)),
            false => Ok(None),
        }
    }

    fn deliver_into(
        &self,
        state: &SysState,
        src: u8,
        dst: u8,
        idx: u8,
        succ: &mut SysState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        let msg = state.channels[src as usize][dst as usize][idx as usize];
        let is_dir = dst as usize == state.n_caches();
        let event = Event::Msg(msg.mtype);
        let arc = if is_dir {
            select_arc_indexed(
                self.dir_fsm,
                &self.dir_idx,
                state.dir.state,
                event,
                Some(&msg),
                None,
                Some(&state.dir),
            )
        } else {
            let block = &state.caches[dst as usize];
            select_arc_indexed(
                self.cache_fsm,
                &self.cache_idx,
                block.state,
                event,
                Some(&msg),
                Some(block),
                None,
            )
        };
        let Some(arc) = arc else {
            let holder = if is_dir {
                format!("directory in {}", self.dir_fsm.state(state.dir.state).full_name())
            } else {
                format!(
                    "cache n{dst} in {}",
                    self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                )
            };
            return Err(ViolationKind::UnexpectedMessage(format!("{msg} at {holder}")));
        };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(false);
        }
        succ.clone_from(state);
        succ.channels[src as usize][dst as usize].remove(idx as usize);
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        if is_dir {
            let dir_id = succ.dir_id();
            apply_into(
                self.dir_fsm,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut succ.dir, self_id: dir_id },
                store_value,
                outcome,
            )
        } else {
            let dir_id = succ.dir_id();
            apply_into(
                self.cache_fsm,
                arc,
                Some(&msg),
                MachineCtx::Cache {
                    block: &mut succ.caches[dst as usize],
                    self_id: NodeId(dst),
                    dir_id,
                },
                store_value,
                outcome,
            )
        }
        .map_err(exec_violation)?;
        if let Some((Access::Store, _)) = outcome.performed {
            succ.ghost = store_value;
        }
        // Completion loads (e.g. the single access after invalidation in
        // IS_D_I) read the response data by construction; the physical
        // data-value check applies to hits only (design note in DESIGN.md).
        self.route(succ, outcome)?;
        Ok(true)
    }

    fn issue_into(
        &self,
        state: &SysState,
        cache: u8,
        access: Access,
        succ: &mut SysState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        let block = &state.caches[cache as usize];
        let arc = select_arc_indexed(
            self.cache_fsm,
            &self.cache_idx,
            block.state,
            Event::Access(access),
            None,
            Some(block),
            None,
        );
        let Some(arc) = arc else { return Ok(false) };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(false);
        }
        let is_hit = arc.actions.iter().any(|a| matches!(a, protogen_spec::Action::PerformAccess));
        if !is_hit && block.pending.is_some() {
            // One outstanding transaction per block per cache (§V-F).
            return Ok(false);
        }
        succ.clone_from(state);
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let dir_id = succ.dir_id();
        apply_into(
            self.cache_fsm,
            arc,
            None,
            MachineCtx::Cache {
                block: &mut succ.caches[cache as usize],
                self_id: NodeId(cache),
                dir_id,
            },
            store_value,
            outcome,
        )
        .map_err(exec_violation)?;
        match outcome.performed {
            Some((Access::Store, _)) => succ.ghost = store_value,
            Some((Access::Load, Some(v))) => {
                if let Some(kind) = self.check_load_hit(cache, v, state.ghost) {
                    return Err(kind);
                }
            }
            _ => {}
        }
        self.route(succ, outcome)?;
        Ok(true)
    }

    /// Injects the outcome's outgoing messages into `succ`'s channels,
    /// checking the capacity bound.
    fn route(&self, succ: &mut SysState, outcome: &ApplyOutcome) -> Result<(), ViolationKind> {
        for i in 0..outcome.outgoing.len() {
            let m = outcome.outgoing[i];
            succ.send(m);
            let q = &succ.channels[m.src.as_usize()][m.dst.as_usize()];
            if q.len() > self.cfg.channel_cap {
                return Err(ViolationKind::ChannelOverflow(format!(
                    "channel n{}→n{} exceeded {}",
                    m.src.0, m.dst.0, self.cfg.channel_cap
                )));
            }
        }
        Ok(())
    }

    /// State-level properties (checked on every new state): the first
    /// violation any configured property reports, in check order.
    fn check_state(&self, state: &SysState) -> Option<ViolationKind> {
        let cx = self.property_ctx();
        self.props.iter().find_map(|p| p.check_state(&cx, state))
    }

    /// A breadth-first sample of reachable canonical representatives
    /// (`limit` states starting from the initial state, in deterministic
    /// BFS order). Violating or disabled successors are skipped. Exposed
    /// for the canonicalization proptests and microbenchmark, which need
    /// realistic states rather than synthetic ones.
    pub fn sample_states(&self, limit: usize) -> Vec<SysState> {
        let mut canon = Canonicalizer::new(self.cfg.n_caches, self.cfg.symmetry);
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<SysState> = Vec::new();
        let initial = canon.canonical_rep(&SysState::initial(self.cfg.n_caches));
        seen.insert(canon.canonical_fp(&initial));
        out.push(initial);
        let mut at = 0usize;
        while at < out.len() && out.len() < limit {
            let steps = self.steps(&out[at]);
            for step in steps {
                if out.len() >= limit {
                    break;
                }
                if let Ok(Some(next)) = self.successor(&out[at], step) {
                    if self.check_state(&next).is_none() && seen.insert(canon.canonical_fp(&next)) {
                        out.push(canon.canonical_rep(&next));
                    }
                }
            }
            at += 1;
        }
        out
    }

    /// Rebuilds the step chain to the violation by walking the packed
    /// parent-pointer records across shards, then renders it by replaying
    /// from the initial state through canonical representatives.
    fn build_trace(&self, stores: &[ShardStore], v: &VioCand) -> Vec<String> {
        if !self.cfg.store.keeps_recs() {
            return vec![
                "no counterexample trace: the fingerprint-only store keeps no parent records \
                 (rerun with --store=full or --store=delta to reconstruct one)"
                    .into(),
            ];
        }
        let mut steps = Vec::new();
        let mut cur = v.parent;
        loop {
            let rec = stores[cur.shard()].rec(cur.local());
            if rec.depth == 0 {
                break;
            }
            steps.push(unpack_step(rec.step));
            cur = rec.parent;
        }
        steps.reverse();
        if v.step != STEP_NONE {
            steps.push(unpack_step(v.step));
        }
        let mut canon = Canonicalizer::new(self.cfg.n_caches, self.cfg.symmetry);
        let mut lines = Vec::new();
        let mut state = canon.canonical_rep(&SysState::initial(self.cfg.n_caches));
        for step in steps {
            let desc = self.describe(&state, step);
            match self.successor(&state, step) {
                Ok(Some(next)) => {
                    lines.push(desc);
                    state = canon.canonical_rep(&next);
                }
                Ok(None) => lines.push(format!("{desc} (not enabled?)")),
                Err(kind) => {
                    lines.push(format!("{desc} => {kind}"));
                    break;
                }
            }
        }
        lines
    }

    fn describe(&self, state: &SysState, step: Step) -> String {
        match step {
            Step::Deliver { src, dst, idx } => {
                let msg = state.channels[src as usize][dst as usize][idx as usize];
                let mname = &self.cache_fsm.msg(msg.mtype).name;
                let holder = if dst as usize == state.n_caches() {
                    format!("dir[{}]", self.dir_fsm.state(state.dir.state).full_name())
                } else {
                    format!(
                        "n{dst}[{}]",
                        self.cache_fsm.state(state.caches[dst as usize].state).full_name()
                    )
                };
                format!("{mname} {msg} -> {holder}")
            }
            Step::IssueAccess { cache, access } => {
                format!(
                    "n{cache}[{}] {access}",
                    self.cache_fsm.state(state.caches[cache as usize].state).full_name()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_packing_round_trips_and_preserves_order() {
        let steps = [
            Step::Deliver { src: 0, dst: 1, idx: 0 },
            Step::Deliver { src: 0, dst: 2, idx: 1 },
            Step::Deliver { src: 3, dst: 0, idx: 0 },
            Step::IssueAccess { cache: 0, access: Access::Load },
            Step::IssueAccess { cache: 0, access: Access::Replacement },
            Step::IssueAccess { cache: 2, access: Access::Store },
        ];
        for w in steps.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
            assert!(pack_step(w[0]) < pack_step(w[1]), "packed order broken at {:?}", w[0]);
        }
        for s in steps {
            assert_eq!(unpack_step(pack_step(s)), s);
            assert_ne!(pack_step(s), STEP_NONE);
        }
    }

    #[test]
    fn effective_threads_resolves_and_clamps() {
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 0;
        assert!(cfg.effective_threads() >= 1);
        cfg.threads = 1_000;
        assert_eq!(cfg.effective_threads(), crate::store::MAX_SHARDS);
        cfg.threads = 3;
        assert_eq!(cfg.effective_threads(), 3);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        use protogen_spec::{
            Arc, ArcKind, ArcNote, FsmState, FsmStateId, FsmStateKind, MachineKind, Perm, StableId,
        };
        let state = |name: &str| FsmState {
            name: name.into(),
            kind: FsmStateKind::Stable(StableId(0)),
            state_sets: vec![],
            perm: Perm::None,
            data_valid: false,
            merged_names: vec![],
        };
        // A deliberately corrupt FSM: the Load arc targets a state id that
        // does not exist, so applying it panics inside a worker.
        let cache = Fsm {
            protocol: "broken".into(),
            machine: MachineKind::Cache,
            messages: vec![],
            states: vec![state("I")],
            arcs: vec![Arc {
                from: FsmStateId(0),
                event: Event::Access(Access::Load),
                guards: vec![],
                actions: vec![],
                to: FsmStateId(99),
                kind: ArcKind::Normal,
                note: ArcNote::Ssp,
            }],
        };
        let dir = Fsm {
            protocol: "broken".into(),
            machine: MachineKind::Directory,
            messages: vec![],
            states: vec![state("D")],
            arcs: vec![],
        };
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 4;
        let mc = ModelChecker::new(&cache, &dir, cfg);
        // The fleet must drain through the epoch rendezvous and re-raise
        // the worker's panic on this thread — a deadlocked phaser would
        // hang the test instead.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mc.run()));
        assert!(result.is_err(), "corrupt arc target must panic, not pass");
    }

    #[test]
    fn state_limit_stops_exploration_deterministically() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let run = |threads: usize| {
            let mut cfg = McConfig::with_caches(2);
            cfg.max_states = 100;
            cfg.threads = threads;
            ModelChecker::new(&g.cache, &g.directory, cfg).run()
        };
        let (r1, r4) = (run(1), run(4));
        assert!(r1.hit_state_limit && !r1.passed());
        assert_eq!(r1.limit, Some(ResourceLimit::StateBudget));
        // The budget is enforced at level granularity, so the count may
        // overshoot by one level but must still be reached…
        assert!(r1.states >= 100, "stopped below the budget: {}", r1.states);
        // …and be identical at any thread count.
        assert_eq!(r1.states, r4.states);
        assert_eq!(r1.transitions, r4.transitions);
        assert_eq!(r1.hit_state_limit, r4.hit_state_limit);
        assert!(r1.store_bytes > 0);
    }

    #[test]
    fn store_modes_agree_on_results() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let run = |store: StoreMode| {
            let mut cfg = McConfig::with_caches(3);
            cfg.threads = 2;
            cfg.store = store;
            ModelChecker::new(&g.cache, &g.directory, cfg).run()
        };
        let full = run(StoreMode::Full);
        let delta = run(StoreMode::Delta);
        let fp = run(StoreMode::FpOnly);
        assert!(full.passed());
        for r in [&delta, &fp] {
            assert_eq!(full.states, r.states);
            assert_eq!(full.transitions, r.transitions);
            assert!(r.passed());
        }
        assert!(fp.expected_collision_pairs() > 0.0);
        assert!(fp.expected_collision_pairs() < 1e-9, "tiny space, tiny bound");
    }

    #[test]
    fn budgeted_run_spills_and_matches_unbudgeted() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let run = |budget: usize, store: StoreMode| {
            let mut cfg = McConfig::with_caches(3);
            cfg.threads = 2;
            cfg.store = store;
            cfg.mem_budget_bytes = budget;
            cfg.spill_chunk_bytes = 1; // clamps up to one page
            ModelChecker::new(&g.cache, &g.directory, cfg).run()
        };
        let unbudgeted = run(0, StoreMode::Full);
        assert!(unbudgeted.passed());
        assert_eq!(unbudgeted.spill_bytes, 0, "no budget, no spilling");
        for store in [StoreMode::Full, StoreMode::Delta] {
            // A 1-byte budget forces the spill path everywhere it exists.
            let budgeted = run(1, store);
            assert_eq!(budgeted.states, unbudgeted.states, "{store:?}");
            assert_eq!(budgeted.transitions, unbudgeted.transitions, "{store:?}");
            assert!(budgeted.passed(), "{store:?}");
            if crate::spill::SPILL_SUPPORTED {
                assert!(budgeted.spill_bytes > 0, "{store:?}: budget never spilled");
                assert!(budgeted.spill_chunks > 0, "{store:?}");
            }
        }
    }

    #[test]
    fn peak_mem_accounts_for_more_than_the_store() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let mut cfg = McConfig::with_caches(3);
        cfg.threads = 2;
        let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
        assert!(r.passed());
        // The rolled-up figure includes frontier arenas and batch pools,
        // so it must exceed the store-only figure the seed reported.
        assert!(
            r.peak_mem_bytes > r.store_bytes,
            "peak {} should exceed store-only {}",
            r.peak_mem_bytes,
            r.store_bytes
        );
    }

    #[test]
    fn full_shard_reports_resource_exhaustion_instead_of_aborting() {
        // The seed design `assert!`ed inside `Gid::pack` when a shard
        // exceeded its packed-id capacity, killing the whole process
        // mid-run. The overflow must now surface as a structured
        // `ResourceLimit::ShardCapacity` outcome with partial stats.
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let mut cfg = McConfig::with_caches(2);
        cfg.threads = 1;
        cfg.shard_capacity = 40;
        let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
        assert!(!r.passed(), "an incomplete exploration must not pass");
        assert!(r.hit_state_limit);
        assert_eq!(r.limit, Some(ResourceLimit::ShardCapacity { shard: 0 }));
        assert_eq!(r.states, 40, "the shard stops growing exactly at capacity");
        assert!(r.transitions > 0, "partial stats survive the early stop");
        assert!(r.violation.is_none());
    }

    #[test]
    fn shard_capacity_resolves_and_clamps() {
        let mut cfg = McConfig::with_caches(2);
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = 0;
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = usize::MAX;
        assert_eq!(cfg.effective_shard_capacity(), crate::store::SHARD_CAPACITY);
        cfg.shard_capacity = 100;
        assert_eq!(cfg.effective_shard_capacity(), 100);
    }

    #[test]
    fn sample_states_are_distinct_canonical_representatives() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2));
        let states = mc.sample_states(50);
        assert_eq!(states.len(), 50);
        let mut canon = Canonicalizer::new(2, true);
        let mut seen = std::collections::HashSet::new();
        for s in &states {
            assert_eq!(s.encode(), canon.canonical_rep(s).encode(), "not a representative");
            assert!(seen.insert(canon.canonical_fp(s)), "duplicate sample");
        }
    }
}
