//! Pruned symmetry canonicalization.
//!
//! The seed canonicalizer swept all n! cache-id permutations per
//! successor state (24 streamed encodings at 4 caches, 120 at 5). This
//! module collapses that sweep with *orbit pruning*: every cache gets a
//! permutation-invariant local sort key ([`cache_sort_key`] — its FSM
//! state, its scalar block fields, and a commutative fingerprint of the
//! messages and chain slots that touch it), the canonical representative
//! is required to list caches in ascending key order, and only the
//! permutations *within* equal-key groups are enumerated. For typical
//! states every cache key is distinct and exactly one permutation
//! remains; fully symmetric states (all caches idle in the same state)
//! degenerate to the full sweep, which is then cheap because such states
//! are rare and maximally shrunk by the reduction anyway.
//!
//! **Correctness argument (DESIGN.md §8).** Define the selection key of a
//! permutation `p` as the pair `(K(p), fp(p))` where `K(p)` is the
//! sequence of cache sort keys in slot order under `p` and `fp(p)` the
//! fingerprint of the permuted encoding. The canonical representative is
//! the minimum over all n! permutations. (1) The permutations minimizing
//! `K(p)` lexicographically are *exactly* those that sort caches by key —
//! pure combinatorics, so restricting the `fp` search to the sorted
//! arrangements loses nothing. (2) For the representative to be constant
//! across a symmetry orbit, the key must be permutation-invariant:
//! `key(i, s) == key(p[i], s.permuted(p))`. [`cache_sort_key`] guarantees
//! this by never hashing a concrete cache id — other endpoints are
//! classified as *self*/*directory*/*other cache*, and per-partner
//! message-queue hashes are combined with a commutative sum so the
//! partner order cannot leak in. Both properties are pinned by the
//! `canon_prop` proptests (pruned ≡ full sweep byte-for-byte, and orbit
//! stability under random permutations).

use crate::store::{mix64, Fingerprinter, GOLDEN};
use crate::system::{EncodeSink, SysState};
use protogen_runtime::{Msg, NodeId};
use protogen_spec::Access;

/// How an encoded node id relates to the cache whose key is being built.
fn role(node: NodeId, this: usize, n: usize) -> u64 {
    if node.as_usize() == this {
        0
    } else if node.as_usize() >= n {
        1 // the directory — a fixed point of every permutation
    } else {
        2 // some other cache; *which* one must not enter the key
    }
}

/// Chained absorption, same avalanche discipline as the fingerprinter.
fn absorb(h: u64, v: u64) -> u64 {
    mix64(h ^ v).wrapping_add(GOLDEN)
}

/// One message as seen from cache `this`, packed into a single word —
/// type, payload, and the *roles* of its endpoints, never their concrete
/// ids — so a message costs the key one absorption, not six.
fn msg_word(m: &Msg, this: usize, n: usize) -> u64 {
    (m.mtype.0 as u64)
        | role(m.src, this, n) << 16
        | role(m.dst, this, n) << 18
        | role(m.req, this, n) << 20
        | m.ack_count.map_or(0x1ff, |v| v as u64) << 22
        | m.data.map_or(0x1ff, |v| v as u64) << 31
}

/// Order-preserving hash of one channel queue from cache `this`'s view.
fn queue_hash(q: &[Msg], this: usize, n: usize) -> u64 {
    let mut h = absorb(GOLDEN, q.len() as u64);
    for m in q {
        h = absorb(h, msg_word(m, this, n));
    }
    h
}

/// The permutation-invariant symmetry sort key of cache `i` in `s`: a
/// 64-bit hash of the cache's FSM state, its scalar block fields, its
/// chain slots (endpoint roles only), and the multiset of in-flight
/// messages on every channel touching it. Queue order *within* a channel
/// is preserved (channels move wholesale under a permutation); the
/// combination *across* same-role partners is a commutative sum, because
/// a permutation may reorder which other cache is "first".
///
/// Invariance contract: `cache_sort_key(s, i) ==
/// cache_sort_key(&s.permuted(p), p[i])` for every permutation `p` — the
/// property that makes orbit pruning sound (DESIGN.md §8).
pub fn cache_sort_key(s: &SysState, i: usize) -> u64 {
    let n = s.n_caches();
    let c = &s.caches[i];
    // Every scalar block field plus the directory-facing bits that name
    // this cache, packed into one word (fields are tiny by the bounding
    // discipline; 0x1ff/0x3 are the `None` sentinels).
    let block = (c.state.0 as u64)
        | c.data.map_or(0x1ff, |v| v as u64) << 16
        | (c.acks_received as u64) << 25
        | c.acks_expected.map_or(0x1ff, |v| v as u64) << 33
        | match c.pending {
            None => 0x3u64,
            Some(Access::Load) => 0,
            Some(Access::Store) => 1,
            Some(Access::Replacement) => 2,
        } << 42
        | ((s.dir.owner == Some(NodeId(i as u8))) as u64) << 44
        | ((s.dir.sharers >> i & 1) as u64) << 45
        | (s.dir.chain_slots.iter().filter(|(nd, _)| nd.as_usize() == i).count() as u64) << 46
        | (c.chain_slots.len() as u64) << 50;
    let mut h = absorb(GOLDEN, block);
    for (node, a) in &c.chain_slots {
        h = absorb(h, role(*node, i, n) | (*a as u64) << 2);
    }
    // Channels to/from the directory keep their (fixed) direction.
    let dir = n;
    h = absorb(h, queue_hash(&s.channels[i][dir], i, n));
    h = absorb(h, queue_hash(&s.channels[dir][i], i, n));
    // Channels to/from other caches: combine per-partner pair hashes
    // commutatively, since a permutation may reorder the partners.
    let mut peers: u64 = 0;
    for j in 0..n {
        if j == i {
            continue;
        }
        let out_q = &s.channels[i][j];
        let in_q = &s.channels[j][i];
        if out_q.is_empty() && in_q.is_empty() {
            continue; // idle peers contribute one shared constant
        }
        let pair = absorb(queue_hash(out_q, i, n), queue_hash(in_q, i, n));
        peers = peers.wrapping_add(pair);
    }
    absorb(h, peers)
}

/// The pruned symmetry canonicalizer: one per worker thread, owning the
/// scratch buffers the sweep reuses across millions of states.
///
/// [`Canonicalizer::canonical_fp`] selects the same representative as the
/// full-sweep [`SysState::canonical_encoding`] over all n! permutations —
/// minimum `(key sequence, fingerprint)`, ties broken by enumeration
/// order — while enumerating only the arrangements that sort caches by
/// [`cache_sort_key`].
#[derive(Debug)]
pub struct Canonicalizer {
    n: usize,
    symmetry: bool,
    /// Per-group-size permutation tables, `perm_tables[k]` = all
    /// permutations of `0..k` (memoized; group sizes are tiny).
    perm_tables: Vec<Vec<Vec<u8>>>,
    keys: Vec<u64>,
    /// Cache indices sorted by `(key, index)` — the base arrangement.
    base: Vec<u8>,
    /// Equal-key runs in `base`, as `(start, len)`.
    groups: Vec<(u8, u8)>,
    /// Scratch: candidate slot→cache assignment and its inverse.
    inv: Vec<u8>,
    perm: Vec<u8>,
    best_inv: Vec<u8>,
    best_perm: Vec<u8>,
    /// Mixed-radix counter over within-group permutations.
    counters: Vec<u32>,
}

impl Canonicalizer {
    /// A canonicalizer for `n_caches` caches. With `symmetry` off it
    /// degenerates to the identity map (fingerprint of the raw encoding).
    pub fn new(n_caches: usize, symmetry: bool) -> Self {
        Canonicalizer {
            n: n_caches,
            symmetry,
            perm_tables: (0..=n_caches).map(crate::system::permutations).collect(),
            keys: vec![0; n_caches],
            base: (0..n_caches as u8).collect(),
            groups: Vec::with_capacity(n_caches),
            inv: (0..n_caches as u8).collect(),
            perm: (0..n_caches as u8).collect(),
            best_inv: (0..n_caches as u8).collect(),
            best_perm: (0..n_caches as u8).collect(),
            counters: vec![0; n_caches],
        }
    }

    /// The canonical fingerprint of `s` — identical for every member of
    /// its symmetry orbit. Also remembers the canonicalizing permutation,
    /// which [`Canonicalizer::encode_canonical_into`] and
    /// [`Canonicalizer::canonical_rep`] reuse.
    pub fn canonical_fp(&mut self, s: &SysState) -> u64 {
        if !self.symmetry {
            for i in 0..self.n as u8 {
                self.best_perm[i as usize] = i;
                self.best_inv[i as usize] = i;
            }
            let mut h = Fingerprinter::new();
            s.encode_permuted_to(&self.best_perm, &self.best_inv, &mut h);
            return h.finish();
        }
        // Sort caches by (key, index): the base arrangement. Insertion
        // sort — n is at most a handful and mostly sorted keys are common.
        for i in 0..self.n {
            self.keys[i] = cache_sort_key(s, i);
            self.base[i] = i as u8;
        }
        let keys = &self.keys;
        self.base.sort_by_key(|&c| (keys[c as usize], c));
        // Equal-key runs.
        self.groups.clear();
        let mut start = 0usize;
        for i in 1..=self.n {
            if i == self.n || keys[self.base[i] as usize] != keys[self.base[start] as usize] {
                self.groups.push((start as u8, (i - start) as u8));
                start = i;
            }
        }
        // Enumerate the product of within-group permutations with a
        // mixed-radix counter; minimize (fp, enumeration index). The key
        // sequence is constant across candidates by construction, so it
        // never needs comparing here.
        let mut best_fp = u64::MAX;
        self.counters[..self.groups.len()].fill(0);
        loop {
            for (gi, &(gstart, glen)) in self.groups.iter().enumerate() {
                let table = &self.perm_tables[glen as usize][self.counters[gi] as usize];
                for (off, &k) in table.iter().enumerate() {
                    self.inv[gstart as usize + off] = self.base[gstart as usize + k as usize];
                }
            }
            for (slot, &src) in self.inv.iter().enumerate() {
                self.perm[src as usize] = slot as u8;
            }
            let mut h = Fingerprinter::new();
            s.encode_permuted_to(&self.perm, &self.inv, &mut h);
            let fp = h.finish();
            if fp < best_fp {
                best_fp = fp;
                self.best_inv.copy_from_slice(&self.inv);
                self.best_perm.copy_from_slice(&self.perm);
            }
            // Advance the counter; done when it wraps.
            let mut gi = self.groups.len();
            loop {
                if gi == 0 {
                    return best_fp;
                }
                gi -= 1;
                let radix = self.perm_tables[self.groups[gi].1 as usize].len() as u32;
                self.counters[gi] += 1;
                if self.counters[gi] < radix {
                    break;
                }
                self.counters[gi] = 0;
            }
        }
    }

    /// [`Canonicalizer::canonical_fp`] plus the canonical encoding bytes,
    /// streamed into `sink` — the expand path's one-stop call.
    pub fn encode_canonical_into<S: EncodeSink>(&mut self, s: &SysState, sink: &mut S) -> u64 {
        let fp = self.canonical_fp(s);
        s.encode_permuted_to(&self.best_perm, &self.best_inv, sink);
        fp
    }

    /// Streams the canonical encoding selected by the *most recent*
    /// [`Canonicalizer::canonical_fp`] call into `sink`. The expand path
    /// needs the fingerprint first (it decides the owning shard, and thus
    /// which batch arena to encode into), so the sweep and the byte
    /// emission are split; `s` must be the state that call canonicalized.
    pub fn encode_best_into<S: EncodeSink>(&self, s: &SysState, sink: &mut S) {
        s.encode_permuted_to(&self.best_perm, &self.best_inv, sink);
    }

    /// Materializes the canonical orbit representative (cold paths:
    /// initial state, counterexample replay).
    pub fn canonical_rep(&mut self, s: &SysState) -> SysState {
        self.canonical_fp(s);
        s.permuted(&self.best_perm)
    }

    /// The number of permutations the pruned sweep would enumerate for
    /// `s` (the full sweep always enumerates n!): the product of the
    /// factorials of the equal-key group sizes. Exposed for the
    /// canonicalization microbenchmark and tests.
    pub fn pruned_candidates(&mut self, s: &SysState) -> usize {
        if !self.symmetry {
            return 1;
        }
        self.canonical_fp(s);
        self.groups
            .iter()
            .map(|&(_, len)| self.perm_tables[len as usize].len())
            .product::<usize>()
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{invert, permutations};
    use protogen_spec::MsgId;

    fn msg(mtype: u16, src: u8, dst: u8, req: u8) -> Msg {
        Msg {
            mtype: MsgId(mtype),
            src: NodeId(src),
            dst: NodeId(dst),
            req: NodeId(req),
            ack_count: None,
            data: None,
        }
    }

    /// A state exercising keys: distinct cache states, messages, sharers.
    fn busy_state() -> SysState {
        let mut s = SysState::initial(3);
        s.caches[0].state = protogen_spec::FsmStateId(2);
        s.caches[0].data = Some(1);
        s.caches[1].pending = Some(Access::Store);
        s.dir.add_sharer(NodeId(0));
        s.dir.owner = Some(NodeId(2));
        s.send(msg(1, 0, 3, 0));
        s.send(msg(2, 3, 1, 1));
        s.send(msg(4, 2, 1, 2));
        s.ghost = 1;
        s
    }

    #[test]
    fn sort_key_is_permutation_invariant() {
        let s = busy_state();
        for p in permutations(3) {
            let sp = s.permuted(&p);
            for i in 0..3 {
                assert_eq!(
                    cache_sort_key(&s, i),
                    cache_sort_key(&sp, p[i] as usize),
                    "key of cache {i} not invariant under {p:?}"
                );
            }
        }
    }

    #[test]
    fn pruned_matches_full_sweep_on_busy_state() {
        let s = busy_state();
        let mut canon = Canonicalizer::new(3, true);
        let mut pruned = Vec::new();
        let fp = canon.encode_canonical_into(&s, &mut pruned);
        let full = s.canonical_encoding(&permutations(3));
        assert_eq!(pruned, full, "pruned representative differs from the full sweep");
        assert_eq!(fp, crate::store::fingerprint_bytes(&full));
        // Distinct keys: the sweep collapses to a single candidate.
        assert_eq!(canon.pruned_candidates(&s), 1);
    }

    #[test]
    fn pruned_fp_is_orbit_invariant() {
        let s = busy_state();
        let mut canon = Canonicalizer::new(3, true);
        let fp = canon.canonical_fp(&s);
        for p in permutations(3) {
            assert_eq!(canon.canonical_fp(&s.permuted(&p)), fp, "fp drifts under {p:?}");
        }
    }

    #[test]
    fn symmetric_state_degenerates_to_full_group() {
        // All caches identical: one group of 3, 3! candidates.
        let s = SysState::initial(3);
        let mut canon = Canonicalizer::new(3, true);
        assert_eq!(canon.pruned_candidates(&s), 6);
        assert_eq!(
            {
                let mut out = Vec::new();
                canon.encode_canonical_into(&s, &mut out);
                out
            },
            s.canonical_encoding(&permutations(3))
        );
    }

    #[test]
    fn symmetry_off_is_identity() {
        let s = busy_state();
        let mut canon = Canonicalizer::new(3, false);
        let mut out = Vec::new();
        let fp = canon.encode_canonical_into(&s, &mut out);
        assert_eq!(out, s.encode());
        assert_eq!(fp, crate::store::fingerprint_bytes(&s.encode()));
    }

    #[test]
    fn canonical_rep_encodes_to_canonical_encoding() {
        let s = busy_state();
        let mut canon = Canonicalizer::new(3, true);
        let rep = canon.canonical_rep(&s);
        assert_eq!(rep.encode(), s.canonical_encoding(&permutations(3)));
        // Idempotent: the representative is its own representative.
        assert_eq!(canon.canonical_rep(&rep).encode(), rep.encode());
    }

    #[test]
    fn invert_consistency_of_best_perm() {
        let s = busy_state();
        let mut canon = Canonicalizer::new(3, true);
        canon.canonical_fp(&s);
        assert_eq!(invert(&canon.best_perm), canon.best_inv);
    }
}
