//! The sharded visited-state store: 64-bit fingerprints, packed
//! parent-pointer records, and the per-shard hash map that deduplicates
//! them.
//!
//! Instead of keying the visited set by an owned byte encoding of each
//! state (the seed design: an owned `Vec<u8>` of ~100–250 bytes per state
//! plus `HashMap` overhead), each state is reduced to a 64-bit fingerprint
//! of its canonical encoding, and the only per-state storage is one packed
//! [`StateRec`] (24 bytes) plus a `u64 → u32` map entry. States are
//! partitioned across shards by `fingerprint % n_shards`, so a given state
//! is only ever inserted, deduplicated, or parent-updated by its owning
//! shard — no locking on the store itself.
//!
//! Fingerprinting is lossy by construction (hash compaction, as in Murϕ's
//! `-b` mode): two distinct states may collide and be treated as one, in
//! which case part of the state space is silently pruned. DESIGN.md §3
//! carries the collision-risk arithmetic; at the default 20 M-state budget
//! the expected number of colliding pairs is ≈ 1.1 × 10⁻⁵.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::system::EncodeSink;

/// Upper bound on worker threads / shards (the global-id packing gives a
/// shard 5 bits).
pub const MAX_SHARDS: usize = 32;

const LOCAL_BITS: u32 = 27;
const LOCAL_MASK: u32 = (1 << LOCAL_BITS) - 1;

/// The most states one shard's record vector can hold (the packed global
/// id gives a local index 27 bits). The explorer's dedup phase enforces
/// this bound *before* inserting — overflow surfaces as a structured
/// [`crate::ResourceLimit::ShardCapacity`] outcome, never as a panic
/// mid-run.
pub const SHARD_CAPACITY: usize = LOCAL_MASK as usize + 1;

/// A packed global state id: 5 bits of owning shard, 27 bits of index into
/// that shard's record vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Gid(u32);

impl Gid {
    pub(crate) fn pack(shard: usize, local: usize) -> Gid {
        // Only for ids that exist by construction (frontier entries carry
        // lids the checked insert path already admitted). The insert path
        // itself goes through `try_pack`: a `debug_assert!` alone would
        // let a release-mode overflow wrap silently into a *wrong but
        // valid-looking* Gid and corrupt parent chains.
        Gid::try_pack(shard, local).expect("unpackable global state id")
    }

    /// Checked pack: `None` when `shard` or `local` exceeds its packed
    /// field — in release builds too. The dedup path uses this as the
    /// authoritative capacity guard, surfacing overflow as a structured
    /// [`crate::ResourceLimit::ShardCapacity`] outcome with partial stats
    /// instead of wrapping.
    pub(crate) fn try_pack(shard: usize, local: usize) -> Option<Gid> {
        if shard < MAX_SHARDS && local < SHARD_CAPACITY {
            Some(Gid(((shard as u32) << LOCAL_BITS) | local as u32))
        } else {
            None
        }
    }

    pub(crate) fn shard(self) -> usize {
        (self.0 >> LOCAL_BITS) as usize
    }

    pub(crate) fn local(self) -> usize {
        (self.0 & LOCAL_MASK) as usize
    }

    /// The packed representation, for the checkpoint codec.
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a Gid from its packed representation. Only the checkpoint
    /// loader uses this, and only for bytes that already passed the
    /// checksum gate — the id was packed by `try_pack` when the
    /// checkpoint was written.
    pub(crate) fn from_raw(raw: u32) -> Gid {
        Gid(raw)
    }
}

/// Sentinel for "no step" in a packed step slot (the root record, and
/// deadlock violations which have no final step).
pub(crate) const STEP_NONE: u32 = u32::MAX;

/// One visited state, packed to 24 bytes. The state itself is *not*
/// stored — only the (parent, step) edge used for counterexample-trace
/// reconstruction (the state's own fingerprint lives in the `FpMap` key
/// and in the frontier entry, so the record does not repeat it).
/// `parent_fp` is kept so that when the same state is reached from
/// several parents within one BFS level, the surviving edge is the
/// minimum of `(parent_fp, step)` — a thread-interleaving-independent
/// choice that keeps traces byte-identical run to run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateRec {
    /// Fingerprint of the parent state (tie-break key for same-level
    /// parent races).
    pub parent_fp: u64,
    /// The parent's global id; self-referential for the root.
    pub parent: Gid,
    /// Packed step taken from the parent ([`STEP_NONE`] for the root).
    pub step: u32,
    /// BFS depth (the root is 0). A state's depth is its true BFS
    /// distance: level synchronization guarantees first insertion happens
    /// at the minimal level.
    pub depth: u32,
}

/// Pass-through hasher for fingerprint keys: the fingerprint is already a
/// well-mixed 64-bit hash, so re-hashing it would be pure waste.
#[derive(Debug, Default, Clone)]
pub struct FpPassthroughHasher(u64);

impl Hasher for FpPassthroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        // SAFETY OF THE UNREACHABLE: this hasher is only ever installed
        // in `FpMap` (`HashMap<u64, u32, _>`), whose key type hashes
        // exclusively through `write_u64`. No byte-slice key can reach
        // here without changing the map's key type, which would fail to
        // compile against `FpMap`'s alias anyway — so this is a checker
        // bug, not an input condition, and panicking is correct.
        unreachable!("fingerprint maps only hash u64 keys");
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x;
    }
}

type FpBuild = BuildHasherDefault<FpPassthroughHasher>;

/// `fingerprint → shard-local record index`.
pub(crate) type FpMap = HashMap<u64, u32, FpBuild>;

/// Serialized width of one [`StateRec`] in the spill tier.
const REC_BYTES: usize = 20;

/// One shard of the visited set: the fingerprint map plus the packed
/// record vector it indexes. Owned exclusively by one worker thread.
///
/// Under a memory budget the record vector is *tiered*: at epoch
/// boundaries every record is frozen (BFS level synchronization means
/// only records inserted in the current epoch are ever parent-updated),
/// so the explorer may flush the whole hot vector to a page-aligned
/// spill chunk and keep exploring. [`ShardStore::rec`] reads through the
/// tier transparently; only counterexample-trace reconstruction ever
/// touches frozen records. The fingerprint map itself always stays in
/// RAM — it is the dedup hot path. In fingerprint-only mode no records
/// exist at all and the map is the entire shard.
#[derive(Debug, Default)]
pub(crate) struct ShardStore {
    pub map: FpMap,
    /// Hot records, `spilled..spilled + recs.len()` in shard-local ids.
    recs: Vec<StateRec>,
    /// Records frozen to the spill file (they precede `recs`).
    spilled: usize,
    /// `(first_local_id, count, file_offset)` per frozen chunk, in id
    /// order.
    chunks: Vec<(usize, usize, u64)>,
    spill: Option<crate::spill::SpillFile>,
}

impl ShardStore {
    pub(crate) fn new() -> Self {
        ShardStore::default()
    }

    /// States this shard holds (identical in every store mode: each
    /// admitted state is exactly one map entry).
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Appends the record for the next shard-local id.
    pub(crate) fn push_rec(&mut self, rec: StateRec) {
        self.recs.push(rec);
    }

    /// The record for `local`, reading the spill tier when it is frozen.
    pub(crate) fn rec(&self, local: usize) -> StateRec {
        if local >= self.spilled {
            return self.recs[local - self.spilled];
        }
        let ci = self.chunks.partition_point(|&(first, count, _)| first + count <= local);
        let (first, _, file_off) = self.chunks[ci];
        let mut buf = [0u8; REC_BYTES];
        self.spill
            .as_ref()
            .expect("frozen records imply a spill file")
            .read_exact_at(&mut buf, file_off + ((local - first) * REC_BYTES) as u64)
            .expect("spill read failed");
        StateRec {
            parent_fp: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            parent: Gid(u32::from_le_bytes(buf[8..12].try_into().unwrap())),
            step: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            depth: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
        }
    }

    /// Mutable access to a *hot* record (same-epoch parent-race updates
    /// only touch records inserted this epoch, which are never frozen).
    pub(crate) fn rec_mut(&mut self, local: usize) -> &mut StateRec {
        &mut self.recs[local - self.spilled]
    }

    /// Freezes every hot record to one spill chunk and clears the hot
    /// vector. Called only at epoch boundaries, where all existing
    /// records are final.
    pub(crate) fn spill_frozen(&mut self, tag: &str) -> std::io::Result<()> {
        if self.recs.is_empty() {
            return Ok(());
        }
        let spill = match self.spill.as_mut() {
            Some(s) => s,
            None => self.spill.insert(crate::spill::SpillFile::create(tag)?),
        };
        let mut bytes = Vec::with_capacity(self.recs.len() * REC_BYTES);
        for r in &self.recs {
            bytes.extend_from_slice(&r.parent_fp.to_le_bytes());
            bytes.extend_from_slice(&r.parent.0.to_le_bytes());
            bytes.extend_from_slice(&r.step.to_le_bytes());
            bytes.extend_from_slice(&r.depth.to_le_bytes());
        }
        let file_off = spill.append_chunk(&bytes)?;
        self.chunks.push((self.spilled, self.recs.len(), file_off));
        self.spilled += self.recs.len();
        self.recs.clear();
        Ok(())
    }

    /// Estimated RAM held by this shard's visited set (map entries at
    /// key+value+control width, hot records at their packed size; frozen
    /// records live on disk and cost one chunk descriptor each).
    pub(crate) fn mem_bytes(&self) -> usize {
        self.map.capacity() * (std::mem::size_of::<(u64, u32)>() + 1)
            + self.recs.capacity() * std::mem::size_of::<StateRec>()
            + self.chunks.capacity() * std::mem::size_of::<(usize, usize, u64)>()
    }

    /// Cumulative `(payload bytes, chunks)` written to this shard's spill
    /// file.
    pub(crate) fn spill_totals(&self) -> (u64, u64) {
        self.spill.as_ref().map_or((0, 0), |s| (s.total_written(), s.total_chunks()))
    }

    /// Snapshot for the checkpoint tier: fingerprints in shard-local id
    /// order (the map inverted — lids are dense `0..len`), plus every
    /// record when the store mode keeps them, frozen ones read back
    /// through the spill tier. Called only at an epoch boundary, where
    /// all records are final.
    pub(crate) fn snapshot(&self, keeps_recs: bool) -> (Vec<u64>, Vec<StateRec>) {
        let mut fps = vec![0u64; self.len()];
        for (&fp, &lid) in &self.map {
            fps[lid as usize] = fp;
        }
        let recs =
            if keeps_recs { (0..self.len()).map(|i| self.rec(i)).collect() } else { Vec::new() };
        (fps, recs)
    }

    /// Rebuilds a shard from a checkpoint snapshot. Everything comes back
    /// hot (no spill tier): a resumed run re-freezes under its own memory
    /// budget exactly as a fresh one would.
    pub(crate) fn restore(fps: &[u64], recs: Vec<StateRec>) -> ShardStore {
        let mut s = ShardStore::new();
        s.map.reserve(fps.len());
        for (lid, &fp) in fps.iter().enumerate() {
            s.map.insert(fp, lid as u32);
        }
        s.recs = recs;
        s
    }
}

pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`. Shared
/// with the canonicalizer's sort-key hashing (`crate::canon`).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming 64-bit state fingerprinter.
///
/// Bytes are packed little-endian into 8-byte chunks; each chunk passes
/// through the splitmix64 finalizer chained with the running accumulator,
/// so every input byte avalanches across all 64 output bits. The final
/// digest also absorbs the stream length, separating prefixes. The seed is
/// fixed — fingerprints (and therefore exploration results) are identical
/// run to run.
#[derive(Debug)]
pub struct Fingerprinter {
    h: u64,
    buf: u64,
    buf_len: u32,
    len: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher (fixed seed).
    pub fn new() -> Self {
        Fingerprinter { h: GOLDEN, buf: 0, buf_len: 0, len: 0 }
    }

    fn absorb(&mut self, chunk: u64) {
        self.h = mix64(self.h ^ chunk).wrapping_add(GOLDEN);
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(mut self) -> u64 {
        if self.buf_len > 0 {
            let chunk = self.buf;
            self.absorb(chunk);
        }
        mix64(self.h ^ self.len)
    }
}

impl EncodeSink for Fingerprinter {
    fn put(&mut self, byte: u8) {
        self.buf |= (byte as u64) << (8 * self.buf_len);
        self.buf_len += 1;
        self.len += 1;
        if self.buf_len == 8 {
            let chunk = self.buf;
            self.absorb(chunk);
            self.buf = 0;
            self.buf_len = 0;
        }
    }
}

/// Fingerprints a byte slice in one call (tests and non-streaming users).
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut f = Fingerprinter::new();
    f.put_slice(bytes);
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_packs_and_unpacks() {
        let g = Gid::pack(31, 0x7FF_FFFF);
        assert_eq!(g.shard(), 31);
        assert_eq!(g.local(), 0x7FF_FFFF);
        let g = Gid::pack(0, 0);
        assert_eq!(g.shard(), 0);
        assert_eq!(g.local(), 0);
    }

    #[test]
    fn gid_try_pack_rejects_overflow_in_release_builds_too() {
        // The former debug_assert!-only guard wrapped silently in release;
        // the checked path must reject at the exact field boundaries
        // regardless of build profile.
        assert!(Gid::try_pack(MAX_SHARDS - 1, SHARD_CAPACITY - 1).is_some());
        assert!(Gid::try_pack(0, SHARD_CAPACITY).is_none());
        assert!(Gid::try_pack(MAX_SHARDS, 0).is_none());
        assert!(Gid::try_pack(usize::MAX, usize::MAX).is_none());
    }

    #[test]
    fn fingerprint_is_chunking_independent() {
        // The digest must depend only on the byte stream, not on how it
        // was fed in.
        let data: Vec<u8> = (0u8..=200).collect();
        let whole = fingerprint_bytes(&data);
        let mut f = Fingerprinter::new();
        for chunk in data.chunks(3) {
            f.put_slice(chunk);
        }
        assert_eq!(whole, f.finish());
    }

    #[test]
    fn fingerprint_separates_prefixes_and_permutations() {
        assert_ne!(fingerprint_bytes(b"ab"), fingerprint_bytes(b"abc"));
        assert_ne!(fingerprint_bytes(b"abc"), fingerprint_bytes(b"acb"));
        assert_ne!(fingerprint_bytes(b""), fingerprint_bytes(b"\0"));
        assert_ne!(fingerprint_bytes(b"\0"), fingerprint_bytes(b"\0\0"));
    }

    #[test]
    fn fingerprint_has_no_collisions_over_systematic_corpus() {
        // 256 × 257 ≈ 66k near-identical short strings (the adversarial
        // case for weak multiply-only hashes): all distinct digests.
        let mut seen = std::collections::HashSet::new();
        for a in 0u16..=255 {
            for b in 0u16..=256 {
                let mut v = vec![0u8; 12];
                v[3] = a as u8;
                if b <= 255 {
                    v[9] = b as u8;
                } else {
                    v.push(0);
                }
                assert!(seen.insert(fingerprint_bytes(&v)), "collision at ({a},{b})");
            }
        }
    }

    #[test]
    fn shard_store_reports_mem_bytes() {
        let mut s = ShardStore::new();
        assert_eq!(s.mem_bytes(), 0);
        s.map.insert(7, 0);
        s.push_rec(StateRec { parent_fp: 7, parent: Gid::pack(0, 0), step: STEP_NONE, depth: 0 });
        assert!(s.mem_bytes() >= std::mem::size_of::<StateRec>());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shard_store_reads_through_the_spill_tier() {
        if !crate::spill::SPILL_SUPPORTED {
            return;
        }
        let mut s = ShardStore::new();
        let rec = |i: u64| StateRec {
            parent_fp: i * 31,
            parent: Gid::pack(1, i as usize),
            step: i as u32,
            depth: i as u32 / 3,
        };
        for i in 0..10 {
            s.push_rec(rec(i));
        }
        s.spill_frozen("test").unwrap();
        for i in 10..25 {
            s.push_rec(rec(i));
        }
        s.spill_frozen("test").unwrap();
        for i in 25..30 {
            s.push_rec(rec(i));
        }
        // Hot reads, frozen reads across both chunks, and mutation of a
        // hot record must all agree with what was pushed.
        for i in 0..30u64 {
            let r = s.rec(i as usize);
            let want = rec(i);
            assert_eq!(
                (r.parent_fp, r.parent, r.step, r.depth),
                (want.parent_fp, want.parent, want.step, want.depth),
                "record {i}"
            );
        }
        s.rec_mut(27).step = 999;
        assert_eq!(s.rec(27).step, 999);
        let (bytes, chunks) = s.spill_totals();
        assert_eq!(chunks, 2);
        assert_eq!(bytes, 25 * REC_BYTES as u64);
    }
}
