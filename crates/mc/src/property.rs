//! Pluggable correctness properties.
//!
//! The checker originally hard-wired SWMR, data-value coherence, and
//! deadlock freedom — correct for SC protocols and wrong for everything
//! else: TSO-CC *intentionally* breaks physical SWMR (stale shared copies
//! are its whole trade), and SI/SD protocols break even the single-writer
//! discipline between sync points. Holding every protocol to SC's
//! invariants would reject the weak-memory families as buggy; holding none
//! would verify nothing.
//!
//! This module makes the invariant layer pluggable: each invariant is a
//! [`Property`] implementation, and [`PropertySet`] selects the built-ins a
//! run enforces. The set a protocol *promises* is derived from its declared
//! [`MemoryModel`] via [`PropertySet::promised`]:
//!
//! | model | properties |
//! |---|---|
//! | `sc`   | SWMR + data-value + deadlock-free |
//! | `tso`  | single-writer + deadlock-free |
//! | `weak` | deadlock-free |
//!
//! Custom properties (per-litmus assertions, experiment-specific
//! predicates) implement [`Property`] directly — or use [`Predicate`] for
//! closure-based one-offs — and are attached with
//! [`crate::ModelChecker::add_property`].

use crate::explore::ViolationKind;
use crate::system::SysState;
use protogen_spec::{Fsm, MemoryModel, Perm};
use std::fmt;

/// Read-only context handed to property checks: the FSMs give permission
/// and stability information for the states a [`SysState`] references.
#[derive(Debug, Clone, Copy)]
pub struct PropertyCtx<'a> {
    /// The generated cache controller.
    pub cache_fsm: &'a Fsm,
    /// The generated directory controller.
    pub dir_fsm: &'a Fsm,
}

/// A correctness property checked during exploration.
///
/// Hooks default to "no violation"; a property implements the ones it
/// needs. All three are called on the exploration hot path, so
/// implementations should be cheap and allocation-free until they actually
/// find a violation.
pub trait Property: fmt::Debug + Send + Sync {
    /// Short name for reports and taxonomy labels (e.g. `"swmr"`).
    fn name(&self) -> &str;

    /// Checked on every newly reached state.
    fn check_state(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        let _ = (cx, state);
        None
    }

    /// Checked when a load *hits* in cache `cache` returning `value` while
    /// the ghost memory holds `ghost`. (Completion loads read the response
    /// data by construction and are not routed here.)
    fn check_load_hit(
        &self,
        cx: &PropertyCtx<'_>,
        cache: u8,
        value: u8,
        ghost: u8,
    ) -> Option<ViolationKind> {
        let _ = (cx, cache, value, ghost);
        None
    }

    /// Checked on states where no message delivery is possible — the
    /// liveness hook. `state` still has whatever in-flight work exists.
    fn check_quiescence(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        let _ = (cx, state);
        None
    }
}

/// Which built-in properties a run enforces. Cloneable/Copy so it travels
/// in [`crate::McConfig`]; the checker materializes it into boxed
/// [`Property`] objects at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertySet {
    /// Physical single-writer/multiple-reader over permission states.
    pub swmr: bool,
    /// Readable copies and load hits must equal the latest store.
    pub data_value: bool,
    /// At most one cache holds write permission (no constraint on stale
    /// readers) — what TSO-CC actually promises.
    pub single_writer: bool,
    /// Non-quiescent states must have a deliverable message.
    pub deadlock_free: bool,
}

impl PropertySet {
    /// The SC contract: SWMR + data-value + deadlock freedom.
    pub fn sc() -> Self {
        PropertySet { swmr: true, data_value: true, single_writer: false, deadlock_free: true }
    }

    /// The TSO contract: single writer + deadlock freedom. SWMR and
    /// data-value are deliberately absent — stale shared copies are legal.
    pub fn tso() -> Self {
        PropertySet { swmr: false, data_value: false, single_writer: true, deadlock_free: true }
    }

    /// The weak contract: deadlock freedom only. Coherence is promised only
    /// at SI/SD sync points, which the litmus harness (not the state
    /// checker) verifies.
    pub fn weak() -> Self {
        PropertySet { swmr: false, data_value: false, single_writer: false, deadlock_free: true }
    }

    /// No properties at all (completeness/overflow checking still applies).
    pub fn none() -> Self {
        PropertySet { swmr: false, data_value: false, single_writer: false, deadlock_free: false }
    }

    /// The property set a protocol promises, from its declared memory
    /// model. This is the `--property auto` resolution.
    pub fn promised(model: MemoryModel) -> Self {
        match model {
            MemoryModel::Sc => PropertySet::sc(),
            MemoryModel::Tso => PropertySet::tso(),
            MemoryModel::Weak => PropertySet::weak(),
        }
    }
}

impl Default for PropertySet {
    fn default() -> Self {
        PropertySet::sc()
    }
}

impl fmt::Display for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PropertySet::sc() {
            return f.write_str("sc");
        }
        if *self == PropertySet::tso() {
            return f.write_str("tso");
        }
        if *self == PropertySet::weak() {
            return f.write_str("weak");
        }
        if *self == PropertySet::none() {
            return f.write_str("none");
        }
        let mut parts = Vec::new();
        if self.swmr {
            parts.push("swmr");
        }
        if self.data_value {
            parts.push("data-value");
        }
        if self.single_writer {
            parts.push("single-writer");
        }
        if self.deadlock_free {
            parts.push("deadlock");
        }
        f.write_str(&parts.join("+"))
    }
}

impl std::str::FromStr for PropertySet {
    type Err = String;

    /// Parses a named contract (`sc`, `tso`, `weak`, `none`) or a
    /// `+`-joined combination of individual properties (`swmr`,
    /// `data-value`, `single-writer`, `deadlock`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sc" => return Ok(PropertySet::sc()),
            "tso" => return Ok(PropertySet::tso()),
            "weak" => return Ok(PropertySet::weak()),
            "none" => return Ok(PropertySet::none()),
            _ => {}
        }
        let mut set = PropertySet::none();
        for part in s.split('+') {
            match part {
                "swmr" => set.swmr = true,
                "data-value" => set.data_value = true,
                "single-writer" => set.single_writer = true,
                "deadlock" => set.deadlock_free = true,
                other => {
                    return Err(format!(
                        "unknown property `{other}` (expected sc|tso|weak|none or a \
                         +-combination of swmr|data-value|single-writer|deadlock)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

/// Materializes the built-in [`Property`] objects a [`PropertySet`]
/// selects, in deterministic check order (safety before liveness).
pub fn materialize(set: PropertySet) -> Vec<Box<dyn Property>> {
    let mut props: Vec<Box<dyn Property>> = Vec::new();
    if set.swmr {
        props.push(Box::new(Swmr));
    }
    if set.single_writer {
        props.push(Box::new(SingleWriter));
    }
    if set.data_value {
        props.push(Box::new(DataValue));
    }
    if set.deadlock_free {
        props.push(Box::new(DeadlockFree));
    }
    props
}

/// Single-writer/multiple-reader: no cache holds write permission while
/// any other cache holds any permission.
#[derive(Debug, Clone, Copy)]
pub struct Swmr;

impl Property for Swmr {
    fn name(&self) -> &str {
        "swmr"
    }

    fn check_state(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        let mut writer: Option<usize> = None;
        let mut reader: Option<usize> = None;
        for (i, c) in state.caches.iter().enumerate() {
            match cx.cache_fsm.state(c.state).perm {
                Perm::ReadWrite => {
                    if let Some(w) = writer {
                        return Some(ViolationKind::Swmr(format!(
                            "caches n{w} and n{i} both hold write permission"
                        )));
                    }
                    writer = Some(i);
                }
                Perm::Read => reader = Some(i),
                Perm::None => {}
            }
        }
        if let (Some(w), Some(r)) = (writer, reader) {
            return Some(ViolationKind::Swmr(format!(
                "cache n{w} holds write permission while n{r} holds read permission"
            )));
        }
        None
    }
}

/// At most one cache holds write permission at a time; read copies may be
/// stale. The half of SWMR that lazy-coherence protocols keep: writes stay
/// serialized even though readers are not invalidated.
#[derive(Debug, Clone, Copy)]
pub struct SingleWriter;

impl Property for SingleWriter {
    fn name(&self) -> &str {
        "single-writer"
    }

    fn check_state(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        let mut writer: Option<usize> = None;
        for (i, c) in state.caches.iter().enumerate() {
            if cx.cache_fsm.state(c.state).perm == Perm::ReadWrite {
                if let Some(w) = writer {
                    return Some(ViolationKind::Swmr(format!(
                        "caches n{w} and n{i} both hold write permission"
                    )));
                }
                writer = Some(i);
            }
        }
        None
    }
}

/// Data-value coherence: every readable stable copy, and every load hit,
/// returns the latest store (tracked by the ghost memory).
#[derive(Debug, Clone, Copy)]
pub struct DataValue;

impl Property for DataValue {
    fn name(&self) -> &str {
        "data-value"
    }

    fn check_state(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        for (i, c) in state.caches.iter().enumerate() {
            let st = cx.cache_fsm.state(c.state);
            if st.is_stable()
                && st.perm >= Perm::Read
                && st.data_valid
                && c.data != Some(state.ghost)
            {
                return Some(ViolationKind::DataValue(format!(
                    "cache n{i} in {} holds {:?}, expected {}",
                    st.full_name(),
                    c.data,
                    state.ghost
                )));
            }
        }
        None
    }

    fn check_load_hit(
        &self,
        _cx: &PropertyCtx<'_>,
        cache: u8,
        value: u8,
        ghost: u8,
    ) -> Option<ViolationKind> {
        if value != ghost {
            return Some(ViolationKind::DataValue(format!(
                "cache n{cache} load hit returned {value}, expected {ghost}"
            )));
        }
        None
    }
}

/// Deadlock freedom: a state with in-flight messages or pending accesses
/// must have at least one deliverable message. New accesses can only add
/// transactions, never unblock existing ones, so they do not count as
/// progress.
#[derive(Debug, Clone, Copy)]
pub struct DeadlockFree;

impl Property for DeadlockFree {
    fn name(&self) -> &str {
        "deadlock"
    }

    fn check_quiescence(&self, _cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        if state.messages_in_flight() > 0 || state.has_pending_access() {
            return Some(ViolationKind::Deadlock);
        }
        None
    }
}

/// A closure-based custom property over whole states — the per-litmus
/// assertion hook. Returns `Some(detail)` to report a violation.
pub struct Predicate {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&PropertyCtx<'_>, &SysState) -> Option<String> + Send + Sync>,
}

impl Predicate {
    /// Builds a predicate property named `name`.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&PropertyCtx<'_>, &SysState) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        Predicate { name: name.into(), f: Box::new(f) }
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Predicate").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Property for Predicate {
    fn name(&self) -> &str {
        &self.name
    }

    fn check_state(&self, cx: &PropertyCtx<'_>, state: &SysState) -> Option<ViolationKind> {
        (self.f)(cx, state)
            .map(|detail| ViolationKind::Property { property: self.name.clone(), detail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_sets_round_trip_through_strings() {
        for name in ["sc", "tso", "weak", "none"] {
            let set: PropertySet = name.parse().unwrap();
            assert_eq!(set.to_string(), name);
        }
    }

    #[test]
    fn combinations_parse() {
        let set: PropertySet = "swmr+deadlock".parse().unwrap();
        assert!(set.swmr && set.deadlock_free && !set.data_value && !set.single_writer);
        assert!("swmr+bogus".parse::<PropertySet>().is_err());
    }

    #[test]
    fn promised_follows_the_model() {
        assert_eq!(PropertySet::promised(MemoryModel::Sc), PropertySet::sc());
        assert_eq!(PropertySet::promised(MemoryModel::Tso), PropertySet::tso());
        assert_eq!(PropertySet::promised(MemoryModel::Weak), PropertySet::weak());
    }

    #[test]
    fn materialize_orders_safety_before_liveness() {
        let props = materialize(PropertySet::sc());
        let names: Vec<&str> = props.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["swmr", "data-value", "deadlock"]);
    }
}
