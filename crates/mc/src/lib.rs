//! Explicit-state model checking for generated coherence protocols — the
//! Murϕ substrate of the ProtoGen paper (§VI, reference \[5\]).
//!
//! The paper verifies every generated protocol with the Murϕ model checker
//! at 3 caches for SWMR and deadlock freedom. This crate implements the
//! equivalent explicit-state checker natively: asynchronous interleaving of
//! message deliveries and core accesses, bounded channels, invariant
//! evaluation on every reachable state, Murϕ-style symmetry reduction over
//! cache identities, and counterexample traces.
//!
//! Exploration is a multi-threaded, epoch-synchronized, sharded-frontier
//! BFS ([`McConfig::threads`] workers, each owning one fingerprint-keyed
//! shard of the visited set, exchanging successor *encodings* through
//! bounded batch queues and rendezvousing only at epoch boundaries) with
//! pruned symmetry canonicalization ([`Canonicalizer`]) and clone-free
//! scratch stepping. Its results — states, transitions, the chosen
//! violation, and the counterexample trace — are identical for every
//! thread count and run. See DESIGN.md §3 for the store and §8 for the
//! hot-path design and its correctness arguments.
//!
//! Checked properties:
//!
//! * **SWMR** — at any time a block has one writer or any number of
//!   readers, judged over the permission assignment of Step 4;
//! * **data-value invariant** — a load hit returns the value of the most
//!   recent store in serialization order (ghost memory), and every
//!   readable stable copy matches it;
//! * **deadlock freedom** — every state with in-flight messages or
//!   outstanding transactions has a deliverable message;
//! * **completeness** — no controller ever receives a message it has no
//!   transition for (the "architect forgot a case" bug class ProtoGen
//!   eliminates).
//!
//! # Example
//!
//! ```
//! use protogen_mc::{McConfig, ModelChecker};
//! use protogen_core::{generate, GenConfig};
//!
//! let ssp = protogen_protocols::msi();
//! let g = generate(&ssp, &GenConfig::stalling()).unwrap();
//! let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(2));
//! let result = mc.run();
//! assert!(result.passed(), "{:?}", result.violation);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod checkpoint;
mod delta;
mod explore;
mod frontier;
mod hier;
mod property;
mod spill;
mod store;
mod system;

pub use canon::{cache_sort_key, Canonicalizer};
pub use checkpoint::CheckpointError;
pub use delta::{apply_delta, encode_delta, SectionMap};
pub use explore::{
    CheckResult, McConfig, ModelChecker, ResourceLimit, Step, StoreMode, Violation, ViolationKind,
};
pub use hier::{HStep, HierChecker, HierConfig, HierResult, HierState, MAX_GROUP};
pub use property::{
    DataValue, DeadlockFree, Predicate, Property, PropertyCtx, PropertySet, SingleWriter, Swmr,
};
pub use store::{
    fingerprint_bytes, Fingerprinter, FpPassthroughHasher, MAX_SHARDS, SHARD_CAPACITY,
};
pub use system::{invert, permutations, EncodeSink, SysState};
