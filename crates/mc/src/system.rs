//! The model-checked system: N caches + directory + channels.

use protogen_runtime::{CacheBlock, DirEntry, Msg, NodeId, Val};
use protogen_spec::Access;

/// A complete system configuration (one explored state).
///
/// Channels are one FIFO per ordered `(src, dst)` pair carrying every
/// message class: the protocols of §VI-A/B assume point-to-point ordering
/// between each pair of nodes *across* classes (a response from the
/// directory never overtakes an earlier forward to the same cache). The
/// generated controllers guarantee a stalled head is always serialized
/// after whatever the stalling machine is waiting for, so head-of-line
/// blocking cannot deadlock. In unordered mode (§VI-C) delivery may take
/// any queue position, which models arbitrary reordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SysState {
    /// Per-cache block state; index = cache id.
    pub caches: Vec<CacheBlock>,
    /// The directory entry.
    pub dir: DirEntry,
    /// `channels[src][dst]` = in-flight messages, oldest first.
    pub channels: Vec<Vec<Vec<Msg>>>,
    /// Ghost memory: the value of the most recent store in serialization
    /// order. Loads performed with read permission must return it.
    pub ghost: Val,
}

impl SysState {
    /// The initial state: every cache invalid, directory in its initial
    /// state holding value 0, no messages.
    pub fn initial(n_caches: usize) -> Self {
        let n = n_caches + 1;
        SysState {
            caches: vec![CacheBlock::new(); n_caches],
            dir: DirEntry::new(0),
            channels: vec![vec![Vec::new(); n]; n],
            ghost: 0,
        }
    }

    /// Number of caches.
    pub fn n_caches(&self) -> usize {
        self.caches.len()
    }

    /// The directory's node id.
    pub fn dir_id(&self) -> NodeId {
        NodeId(self.caches.len() as u8)
    }

    /// Total number of in-flight messages.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().flatten().map(|q| q.len()).sum()
    }

    /// Whether any cache has an outstanding transaction.
    pub fn has_pending_access(&self) -> bool {
        self.caches.iter().any(|c| c.pending.is_some())
    }

    /// Pushes `msg` onto its channel.
    pub fn send(&mut self, msg: Msg) {
        self.channels[msg.src.as_usize()][msg.dst.as_usize()].push(msg);
    }

    /// A compact, canonical byte encoding for hashing and deduplication.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for c in &self.caches {
            out.extend_from_slice(&(c.state.0).to_le_bytes());
            out.push(c.data.map_or(0xff, |v| v));
            out.push(c.acks_received);
            out.push(c.acks_expected.map_or(0xff, |v| v));
            out.push(match c.pending {
                None => 0xff,
                Some(Access::Load) => 0,
                Some(Access::Store) => 1,
                Some(Access::Replacement) => 2,
            });
            out.push(c.chain_slots.len() as u8);
            for (n, a) in &c.chain_slots {
                out.push(n.0);
                out.push(*a);
            }
        }
        out.extend_from_slice(&(self.dir.state.0).to_le_bytes());
        out.push(self.dir.owner.map_or(0xff, |n| n.0));
        out.push(self.dir.sharers);
        out.push(self.dir.data);
        out.push(self.dir.chain_slots.len() as u8);
        for (n, a) in &self.dir.chain_slots {
            out.push(n.0);
            out.push(*a);
        }
        for row in &self.channels {
            for q in row.iter() {
                out.push(q.len() as u8);
                for m in q {
                    out.extend_from_slice(&m.mtype.0.to_le_bytes());
                    out.push(m.src.0);
                    out.push(m.dst.0);
                    out.push(m.req.0);
                    out.push(m.ack_count.map_or(0xff, |v| v));
                    out.push(m.data.map_or(0xff, |v| v));
                }
            }
        }
        out.push(self.ghost);
        out
    }

    /// The canonical encoding under cache-identity symmetry: the
    /// lexicographically least encoding over all permutations of cache ids
    /// (the Murϕ scalarset reduction).
    pub fn canonical_encoding(&self, perms: &[Vec<u8>]) -> Vec<u8> {
        let mut best: Option<Vec<u8>> = None;
        for p in perms {
            let enc = self.permuted(p).encode();
            if best.as_ref().is_none_or(|b| enc < *b) {
                best = Some(enc);
            }
        }
        best.unwrap_or_else(|| self.encode())
    }

    /// Applies a cache-id permutation: cache `i` becomes cache `perm[i]`.
    pub fn permuted(&self, perm: &[u8]) -> SysState {
        let n = self.n_caches();
        let map = |id: NodeId| -> NodeId {
            if id.as_usize() < n {
                NodeId(perm[id.as_usize()])
            } else {
                id
            }
        };
        let map_msg = |m: &Msg| Msg { src: map(m.src), dst: map(m.dst), req: map(m.req), ..*m };
        let mut caches = vec![CacheBlock::new(); n];
        for (i, c) in self.caches.iter().enumerate() {
            let mut c2 = c.clone();
            c2.chain_slots = c.chain_slots.iter().map(|(n, a)| (map(*n), *a)).collect();
            caches[perm[i] as usize] = c2;
        }
        let mut dir = self.dir.clone();
        dir.owner = dir.owner.map(map);
        dir.chain_slots = self.dir.chain_slots.iter().map(|(n, a)| (map(*n), *a)).collect();
        dir.sharers = (0..n)
            .filter(|&i| self.dir.sharers & (1 << i) != 0)
            .fold(0u8, |acc, i| acc | (1 << perm[i]));
        let total = n + 1;
        let mut channels = vec![vec![Vec::new(); total]; total];
        for (s, row) in self.channels.iter().enumerate() {
            for (d, q) in row.iter().enumerate() {
                let s2 = if s < n { perm[s] as usize } else { s };
                let d2 = if d < n { perm[d] as usize } else { d };
                channels[s2][d2] = q.iter().map(map_msg).collect();
            }
        }
        SysState { caches, dir, channels, ghost: self.ghost }
    }
}

/// All permutations of `0..n` (n is tiny: at most 4 caches).
pub fn permutations(n: usize) -> Vec<Vec<u8>> {
    fn go(acc: &mut Vec<Vec<u8>>, cur: &mut Vec<u8>, used: &mut Vec<bool>, n: usize) {
        if cur.len() == n {
            acc.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i as u8);
                go(acc, cur, used, n);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut acc = Vec::new();
    go(&mut acc, &mut Vec::new(), &mut vec![false; n], n);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::MsgId;

    #[test]
    fn initial_state_is_quiescent() {
        let s = SysState::initial(3);
        assert_eq!(s.messages_in_flight(), 0);
        assert!(!s.has_pending_access());
        assert_eq!(s.dir_id(), NodeId(3));
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(2).len(), 2);
    }

    #[test]
    fn canonical_encoding_identifies_symmetric_states() {
        let perms = permutations(2);
        // Cache 0 has a message to the directory.
        let mut a = SysState::initial(2);
        a.send(Msg {
            mtype: MsgId(0),
            src: NodeId(0),
            dst: NodeId(2),
            req: NodeId(0),
            ack_count: None,
            data: None,
        });
        // The mirror image: cache 1 sent it instead.
        let mut b = SysState::initial(2);
        b.send(Msg {
            mtype: MsgId(0),
            src: NodeId(1),
            dst: NodeId(2),
            req: NodeId(1),
            ack_count: None,
            data: None,
        });
        assert_ne!(a.encode(), b.encode());
        assert_eq!(a.canonical_encoding(&perms), b.canonical_encoding(&perms));
    }

    #[test]
    fn permutation_remaps_sharers_and_owner() {
        let mut s = SysState::initial(3);
        s.dir.add_sharer(NodeId(0));
        s.dir.owner = Some(NodeId(2));
        let p = s.permuted(&[1, 0, 2]);
        assert!(p.dir.is_sharer(NodeId(1)));
        assert!(!p.dir.is_sharer(NodeId(0)));
        assert_eq!(p.dir.owner, Some(NodeId(2)));
    }
}
