//! The model-checked system: N caches + directory + channels.

use protogen_runtime::{CacheBlock, DirEntry, Msg, NodeId, Val};
use protogen_spec::Access;

/// A byte sink for state encoding: either a plain buffer or a streaming
/// fingerprint hasher, so symmetry canonicalization never has to
/// materialize permuted states or intermediate byte vectors.
pub trait EncodeSink {
    /// Consumes one byte.
    fn put(&mut self, byte: u8);

    /// Consumes a run of bytes.
    fn put_slice(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.put(b);
        }
    }
}

impl EncodeSink for Vec<u8> {
    fn put(&mut self, byte: u8) {
        self.push(byte);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// The inverse of a permutation over `0..n`: `invert(p)[p[i]] == i`.
pub fn invert(perm: &[u8]) -> Vec<u8> {
    let mut inv = vec![0u8; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as u8;
    }
    inv
}

/// A complete system configuration (one explored state).
///
/// Channels are one FIFO per ordered `(src, dst)` pair carrying every
/// message class: the protocols of §VI-A/B assume point-to-point ordering
/// between each pair of nodes *across* classes (a response from the
/// directory never overtakes an earlier forward to the same cache). The
/// generated controllers guarantee a stalled head is always serialized
/// after whatever the stalling machine is waiting for, so head-of-line
/// blocking cannot deadlock. In unordered mode (§VI-C) delivery may take
/// any queue position, which models arbitrary reordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SysState {
    /// Per-cache block state; index = cache id.
    pub caches: Vec<CacheBlock>,
    /// The directory entry.
    pub dir: DirEntry,
    /// `channels[src][dst]` = in-flight messages, oldest first.
    pub channels: Vec<Vec<Vec<Msg>>>,
    /// Ghost memory: the value of the most recent store in serialization
    /// order. Loads performed with read permission must return it.
    pub ghost: Val,
}

impl SysState {
    /// The initial state: every cache invalid, directory in its initial
    /// state holding value 0, no messages.
    pub fn initial(n_caches: usize) -> Self {
        let n = n_caches + 1;
        SysState {
            caches: vec![CacheBlock::new(); n_caches],
            dir: DirEntry::new(0),
            channels: vec![vec![Vec::new(); n]; n],
            ghost: 0,
        }
    }

    /// Number of caches.
    pub fn n_caches(&self) -> usize {
        self.caches.len()
    }

    /// The directory's node id.
    pub fn dir_id(&self) -> NodeId {
        NodeId(self.caches.len() as u8)
    }

    /// Total number of in-flight messages.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().flatten().map(|q| q.len()).sum()
    }

    /// Whether any cache has an outstanding transaction.
    pub fn has_pending_access(&self) -> bool {
        self.caches.iter().any(|c| c.pending.is_some())
    }

    /// Pushes `msg` onto its channel.
    pub fn send(&mut self, msg: Msg) {
        self.channels[msg.src.as_usize()][msg.dst.as_usize()].push(msg);
    }

    /// A compact, canonical byte encoding for hashing and deduplication.
    pub fn encode(&self) -> Vec<u8> {
        let ident: Vec<u8> = (0..self.n_caches() as u8).collect();
        let mut out = Vec::with_capacity(96);
        self.encode_permuted_to(&ident, &ident, &mut out);
        out
    }

    /// Streams the byte encoding of `self.permuted(perm)` into `sink`
    /// without materializing the permuted state — the model checker's
    /// canonicalization hot path. `inv` must be the inverse permutation of
    /// `perm` (see [`invert`]); the bytes produced are exactly
    /// `self.permuted(perm).encode()`.
    ///
    /// The layout is fixed-width per field — u16 state ids, one byte per
    /// scalar with `0xff` as the `None` sentinel — with explicit length
    /// prefixes for the (bounded) chain-slot and channel-queue sequences,
    /// so the encoding is injective and a 64-bit fingerprint of it can
    /// stand in for the full state.
    pub fn encode_permuted_to<S: EncodeSink>(&self, perm: &[u8], inv: &[u8], sink: &mut S) {
        let n = self.n_caches();
        debug_assert_eq!(perm.len(), n);
        debug_assert_eq!(inv.len(), n);
        let map = |id: NodeId| -> u8 {
            if id.as_usize() < n {
                perm[id.as_usize()]
            } else {
                id.0
            }
        };
        for &src_cache in inv.iter() {
            let c = &self.caches[src_cache as usize];
            let state = u16::try_from(c.state.0).expect("state id exceeds u16");
            sink.put_slice(&state.to_le_bytes());
            sink.put(c.data.map_or(0xff, |v| v));
            sink.put(c.acks_received);
            sink.put(c.acks_expected.map_or(0xff, |v| v));
            sink.put(match c.pending {
                None => 0xff,
                Some(Access::Load) => 0,
                Some(Access::Store) => 1,
                Some(Access::Replacement) => 2,
            });
            sink.put(c.chain_slots.len() as u8);
            for (node, a) in &c.chain_slots {
                sink.put(map(*node));
                sink.put(*a);
            }
        }
        let dstate = u16::try_from(self.dir.state.0).expect("state id exceeds u16");
        sink.put_slice(&dstate.to_le_bytes());
        sink.put(self.dir.owner.map_or(0xff, &map));
        let mut sharers = 0u8;
        for (i, &p) in perm.iter().enumerate() {
            if self.dir.sharers & (1 << i) != 0 {
                sharers |= 1 << p;
            }
        }
        sink.put(sharers);
        sink.put(self.dir.data);
        sink.put(self.dir.chain_slots.len() as u8);
        for (node, a) in &self.dir.chain_slots {
            sink.put(map(*node));
            sink.put(*a);
        }
        let total = n + 1;
        let src_of = |x: usize| if x < n { inv[x] as usize } else { x };
        for s2 in 0..total {
            let s = src_of(s2);
            for d2 in 0..total {
                let d = src_of(d2);
                let q = &self.channels[s][d];
                sink.put(q.len() as u8);
                for m in q {
                    sink.put_slice(&m.mtype.0.to_le_bytes());
                    sink.put(map(m.src));
                    sink.put(map(m.dst));
                    sink.put(map(m.req));
                    sink.put(m.ack_count.map_or(0xff, |v| v));
                    sink.put(m.data.map_or(0xff, |v| v));
                }
            }
        }
        sink.put(self.ghost);
    }

    /// The canonical encoding under cache-identity symmetry (the Murϕ
    /// scalarset reduction): the encoding of the orbit representative the
    /// model checker itself selects. The selection key is two-level —
    /// first the sequence of per-cache symmetry sort keys in slot order
    /// (see [`crate::cache_sort_key`]), then the 64-bit fingerprint of the
    /// permuted encoding, ties broken by permutation index. Putting the
    /// key sequence first is what lets the checker's pruned canonicalizer
    /// ([`crate::Canonicalizer`]) skip every permutation that does not
    /// sort the caches by key and still select the *same* representative
    /// as this full sweep — the equivalence the `canon_prop` proptest
    /// pins. Using the same representative here keeps every notion of
    /// "canonical" in this crate interchangeable.
    pub fn canonical_encoding(&self, perms: &[Vec<u8>]) -> Vec<u8> {
        let n = self.n_caches();
        let keys: Vec<u64> = (0..n).map(|i| crate::cache_sort_key(self, i)).collect();
        let mut best: Option<(Vec<u64>, u64, Vec<u8>)> = None;
        let mut key_seq = vec![0u64; n];
        for p in perms {
            let inv = invert(p);
            for (slot, &src) in inv.iter().enumerate() {
                key_seq[slot] = keys[src as usize];
            }
            let mut h = crate::store::Fingerprinter::new();
            self.encode_permuted_to(p, &inv, &mut h);
            let fp = h.finish();
            if best.as_ref().is_none_or(|(bk, bfp, _)| (&key_seq, fp) < (bk, *bfp)) {
                let mut enc = Vec::with_capacity(96);
                self.encode_permuted_to(p, &inv, &mut enc);
                best = Some((key_seq.clone(), fp, enc));
            }
        }
        best.map(|(_, _, enc)| enc).unwrap_or_else(|| self.encode())
    }

    /// Decodes an [`SysState::encode`]-produced byte string back into a
    /// state, reusing `self`'s allocations — the inverse the clone-free
    /// expand path relies on: successor candidates travel between shards
    /// as canonical encodings, and only states that turn out to be *new*
    /// are ever materialized, through this method.
    ///
    /// The `0xff` byte is the `None` sentinel for optional scalars, which
    /// is unambiguous because every value domain in the checker is tiny
    /// (the standard Murϕ bounding discipline keeps values, ack counts,
    /// and ids far below 255).
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is not a complete encoding for `n_caches`
    /// caches — encodings come only from [`SysState::encode_permuted_to`],
    /// so a mismatch is a checker bug, not an input condition.
    pub fn decode_into(&mut self, bytes: &[u8], n_caches: usize) {
        let mut pos = 0usize;
        let u8 = |pos: &mut usize| {
            let b = bytes[*pos];
            *pos += 1;
            b
        };
        let opt = |b: u8| if b == 0xff { None } else { Some(b) };
        self.caches.resize_with(n_caches, CacheBlock::new);
        for c in &mut self.caches {
            let lo = u8(&mut pos);
            let hi = u8(&mut pos);
            c.state = protogen_spec::FsmStateId(u16::from_le_bytes([lo, hi]) as u32);
            c.data = opt(u8(&mut pos));
            c.acks_received = u8(&mut pos);
            c.acks_expected = opt(u8(&mut pos));
            c.pending = match u8(&mut pos) {
                0xff => None,
                0 => Some(Access::Load),
                1 => Some(Access::Store),
                2 => Some(Access::Replacement),
                // SAFETY OF THE PANIC: every byte string reaching this
                // decoder was produced in-process by
                // `encode_permuted_to`, which only emits 0/1/2/0xff here.
                // Checkpoint-fed bytes pass the manifest + shard checksum
                // gate (`crate::checkpoint`) before any decode, so a
                // corrupt file errors out long before this line. A bad
                // byte here is therefore a checker bug and must abort
                // loudly rather than decode a wrong-but-plausible state.
                b => panic!("bad pending-access byte {b}"),
            };
            let slots = u8(&mut pos);
            c.chain_slots.clear();
            for _ in 0..slots {
                let node = NodeId(u8(&mut pos));
                let a = u8(&mut pos);
                c.chain_slots.push((node, a));
            }
        }
        let lo = u8(&mut pos);
        let hi = u8(&mut pos);
        self.dir.state = protogen_spec::FsmStateId(u16::from_le_bytes([lo, hi]) as u32);
        self.dir.owner = opt(u8(&mut pos)).map(NodeId);
        self.dir.sharers = u8(&mut pos);
        self.dir.data = u8(&mut pos);
        let slots = u8(&mut pos);
        self.dir.chain_slots.clear();
        for _ in 0..slots {
            let node = NodeId(u8(&mut pos));
            let a = u8(&mut pos);
            self.dir.chain_slots.push((node, a));
        }
        let total = n_caches + 1;
        self.channels.resize_with(total, Vec::new);
        for row in &mut self.channels {
            row.resize_with(total, Vec::new);
            for q in row {
                let len = u8(&mut pos);
                q.clear();
                for _ in 0..len {
                    let lo = u8(&mut pos);
                    let hi = u8(&mut pos);
                    q.push(Msg {
                        mtype: protogen_spec::MsgId(u16::from_le_bytes([lo, hi])),
                        src: NodeId(u8(&mut pos)),
                        dst: NodeId(u8(&mut pos)),
                        req: NodeId(u8(&mut pos)),
                        ack_count: opt(u8(&mut pos)),
                        data: opt(u8(&mut pos)),
                    });
                }
            }
        }
        self.ghost = u8(&mut pos);
        assert_eq!(pos, bytes.len(), "trailing bytes after a complete state decode");
    }

    /// [`SysState::decode_into`] into a fresh state.
    pub fn decode(bytes: &[u8], n_caches: usize) -> SysState {
        let mut s = SysState::initial(n_caches);
        s.decode_into(bytes, n_caches);
        s
    }

    /// Applies a cache-id permutation: cache `i` becomes cache `perm[i]`.
    pub fn permuted(&self, perm: &[u8]) -> SysState {
        let n = self.n_caches();
        let map = |id: NodeId| -> NodeId {
            if id.as_usize() < n {
                NodeId(perm[id.as_usize()])
            } else {
                id
            }
        };
        let map_msg = |m: &Msg| Msg { src: map(m.src), dst: map(m.dst), req: map(m.req), ..*m };
        let mut caches = vec![CacheBlock::new(); n];
        for (i, c) in self.caches.iter().enumerate() {
            let mut c2 = c.clone();
            c2.chain_slots = c.chain_slots.iter().map(|(n, a)| (map(*n), *a)).collect();
            caches[perm[i] as usize] = c2;
        }
        let mut dir = self.dir.clone();
        dir.owner = dir.owner.map(map);
        dir.chain_slots = self.dir.chain_slots.iter().map(|(n, a)| (map(*n), *a)).collect();
        dir.sharers = (0..n)
            .filter(|&i| self.dir.sharers & (1 << i) != 0)
            .fold(0u8, |acc, i| acc | (1 << perm[i]));
        let total = n + 1;
        let mut channels = vec![vec![Vec::new(); total]; total];
        for (s, row) in self.channels.iter().enumerate() {
            for (d, q) in row.iter().enumerate() {
                let s2 = if s < n { perm[s] as usize } else { s };
                let d2 = if d < n { perm[d] as usize } else { d };
                channels[s2][d2] = q.iter().map(map_msg).collect();
            }
        }
        SysState { caches, dir, channels, ghost: self.ghost }
    }
}

/// All permutations of `0..n` (n is tiny: at most 4 caches).
pub fn permutations(n: usize) -> Vec<Vec<u8>> {
    fn go(acc: &mut Vec<Vec<u8>>, cur: &mut Vec<u8>, used: &mut Vec<bool>, n: usize) {
        if cur.len() == n {
            acc.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i as u8);
                go(acc, cur, used, n);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut acc = Vec::new();
    go(&mut acc, &mut Vec::new(), &mut vec![false; n], n);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::MsgId;

    #[test]
    fn initial_state_is_quiescent() {
        let s = SysState::initial(3);
        assert_eq!(s.messages_in_flight(), 0);
        assert!(!s.has_pending_access());
        assert_eq!(s.dir_id(), NodeId(3));
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(2).len(), 2);
    }

    #[test]
    fn canonical_encoding_identifies_symmetric_states() {
        let perms = permutations(2);
        // Cache 0 has a message to the directory.
        let mut a = SysState::initial(2);
        a.send(Msg {
            mtype: MsgId(0),
            src: NodeId(0),
            dst: NodeId(2),
            req: NodeId(0),
            ack_count: None,
            data: None,
        });
        // The mirror image: cache 1 sent it instead.
        let mut b = SysState::initial(2);
        b.send(Msg {
            mtype: MsgId(0),
            src: NodeId(1),
            dst: NodeId(2),
            req: NodeId(1),
            ack_count: None,
            data: None,
        });
        assert_ne!(a.encode(), b.encode());
        assert_eq!(a.canonical_encoding(&perms), b.canonical_encoding(&perms));
    }

    #[test]
    fn streamed_permuted_encoding_matches_materialized() {
        // A state exercising every encoded field: messages in flight,
        // chain slots, owner, sharers, pending accesses.
        let mut s = SysState::initial(3);
        s.dir.add_sharer(NodeId(1));
        s.dir.owner = Some(NodeId(2));
        s.dir.chain_slots.push((NodeId(0), 2));
        s.caches[0].data = Some(1);
        s.caches[0].pending = Some(Access::Store);
        s.caches[1].chain_slots.push((NodeId(2), 1));
        s.caches[2].acks_expected = Some(2);
        s.ghost = 1;
        s.send(Msg {
            mtype: MsgId(4),
            src: NodeId(0),
            dst: NodeId(3),
            req: NodeId(0),
            ack_count: Some(1),
            data: Some(1),
        });
        s.send(Msg {
            mtype: MsgId(2),
            src: NodeId(3),
            dst: NodeId(2),
            req: NodeId(1),
            ack_count: None,
            data: None,
        });
        for p in permutations(3) {
            let inv = invert(&p);
            let mut streamed = Vec::new();
            s.encode_permuted_to(&p, &inv, &mut streamed);
            assert_eq!(streamed, s.permuted(&p).encode(), "perm {p:?}");
        }
    }

    #[test]
    fn invert_round_trips() {
        for p in permutations(4) {
            let inv = invert(&p);
            for i in 0..4u8 {
                assert_eq!(inv[p[i as usize] as usize], i);
            }
        }
    }

    #[test]
    fn permutation_remaps_sharers_and_owner() {
        let mut s = SysState::initial(3);
        s.dir.add_sharer(NodeId(0));
        s.dir.owner = Some(NodeId(2));
        let p = s.permuted(&[1, 0, 2]);
        assert!(p.dir.is_sharer(NodeId(1)));
        assert!(!p.dir.is_sharer(NodeId(0)));
        assert_eq!(p.dir.owner, Some(NodeId(2)));
    }
}
