//! Epoch-boundary checkpoint/resume for long verifications.
//!
//! A checkpoint captures the explorer's complete logical state at the one
//! point in an epoch where it is both minimal and final: the top of the
//! epoch, immediately after the frontier swap. There, every visited
//! record is frozen (same-level parent races only ever touch records of
//! the epoch that just closed), the next-frontier arena is empty, all
//! batch queues are drained, and the current frontier is read-only for
//! the rest of the run — so a shard's state is exactly its fingerprint
//! map, its record vector, and one encoding arena. Those are written
//! verbatim (delta-compressed arenas stay delta-compressed — the §9 codec
//! is reused as the on-disk format), each shard to its own checksummed
//! file, with a versioned manifest committed last via rename. A process
//! killed at any instant — including `kill -9` mid-write — therefore
//! leaves either a complete committed checkpoint or none: shard files
//! without a manifest are invisible to resume.
//!
//! Resume rebuilds the workers from the newest committed checkpoint and
//! re-enters the epoch loop at the recorded depth. Because the checkpoint
//! is a byte-faithful copy of the deterministic explorer state, a resumed
//! run produces byte-identical states, transitions, violation, and
//! counterexample trace to an uninterrupted one (pinned by
//! `tests/checkpoint_conformance.rs` and the CI `resume` job). The one
//! caveat: pair coverage ([`crate::McConfig::collect_pair_coverage`]) is
//! merged per epoch and not checkpointed, so a resumed run only reports
//! coverage for the epochs it actually executed.
//!
//! DESIGN.md §13 carries the consistency argument in full.

use crate::explore::{FrontEntry, FrontierBuf, McConfig, ModelChecker};
use crate::frontier::Coordinator;
use crate::store::{fingerprint_bytes, Gid, ShardStore, StateRec, MAX_SHARDS};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;

/// Shard-file magic ("PGCK") and manifest magic ("PGMF"), little-endian.
const SHARD_MAGIC: u32 = 0x4B43_4750;
const MANIFEST_MAGIC: u32 = 0x464D_4750;
/// Bump on any layout change: resume refuses other versions outright
/// rather than misreading them.
const VERSION: u32 = 1;

/// Why a checkpoint could not be loaded. Always a hard, descriptive
/// error: a checkpoint that fails validation must never be silently
/// skipped or partially applied — resuming from wrong bytes would
/// *pass* verification of a space that was never explored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(String);

impl CheckpointError {
    fn new(m: impl Into<String>) -> CheckpointError {
        CheckpointError(m.into())
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// One shard's restored state: fingerprints in shard-local id order, the
/// full record vector (empty in fingerprint-only mode), and the frontier
/// index + arena for the epoch about to run.
pub(crate) struct ShardSnapshot {
    pub fps: Vec<u64>,
    pub recs: Vec<StateRec>,
    pub entries: Vec<FrontEntry>,
    pub arena: Vec<u8>,
}

/// A committed checkpoint, loaded and validated, ready to seed workers.
pub(crate) struct LoadedCheckpoint {
    pub depth: u32,
    pub threads: usize,
    pub total_states: usize,
    pub transitions: usize,
    pub shards: Vec<ShardSnapshot>,
}

// ---------------------------------------------------------------------
// Little-endian byte codec (append-only writer, checked reader).

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked sequential reader over a checkpoint byte string. Every read
/// is bounds-checked so a truncated file surfaces as a structured error,
/// never a panic or a silent short read.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], what: &'a str) -> Reader<'a> {
        Reader { bytes, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            CheckpointError::new(format!(
                "{} is truncated (wanted {} bytes at offset {}, file has {})",
                self.what,
                n,
                self.pos,
                self.bytes.len()
            ))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// A `u64` length field validated against what the file could
    /// possibly hold, so a corrupt count errors instead of attempting a
    /// multi-exabyte allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if elem_bytes != 0 && n > remaining / elem_bytes.max(1) + 1 {
            return Err(CheckpointError::new(format!(
                "{} is corrupt: implausible element count {} at offset {}",
                self.what, n, self.pos
            )));
        }
        Ok(n)
    }
}

/// Splits `bytes` into (payload, trailing checksum) and verifies the
/// checksum — the first gate every checkpoint file passes before any
/// field is interpreted.
fn checked_payload<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8], CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::new(format!("{what} is truncated ({} bytes)", bytes.len())));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte slice"));
    let actual = fingerprint_bytes(payload);
    if stored != actual {
        return Err(CheckpointError::new(format!(
            "{what} is corrupt: checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Writing.

fn ck_dir(dir: &Path, depth: u32) -> PathBuf {
    dir.join(format!("ck-{depth}"))
}

fn shard_path(dir: &Path, depth: u32, shard: usize) -> PathBuf {
    ck_dir(dir, depth).join(format!("shard-{shard}.bin"))
}

/// Serializes one shard (visited store + current frontier) and writes it
/// under the (not-yet-committed) checkpoint directory for `depth`.
pub(crate) fn write_shard(
    dir: &Path,
    depth: u32,
    shard: usize,
    store: &ShardStore,
    cur: &FrontierBuf,
    keeps_recs: bool,
) -> io::Result<()> {
    std::fs::create_dir_all(ck_dir(dir, depth))?;
    let (fps, recs) = store.snapshot(keeps_recs);
    let arena = cur.global_bytes()?;

    let mut out = Vec::with_capacity(64 + fps.len() * 28 + cur.index.len() * 25 + arena.len());
    put_u32(&mut out, SHARD_MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, shard as u32);
    put_u32(&mut out, depth);
    put_u64(&mut out, fps.len() as u64);
    for &fp in &fps {
        put_u64(&mut out, fp);
    }
    put_u8(&mut out, keeps_recs as u8);
    if keeps_recs {
        for r in &recs {
            put_u64(&mut out, r.parent_fp);
            put_u32(&mut out, r.parent.raw());
            put_u32(&mut out, r.step);
            put_u32(&mut out, r.depth);
        }
    }
    put_u64(&mut out, cur.index.len() as u64);
    for e in &cur.index {
        put_u64(&mut out, e.off as u64);
        put_u32(&mut out, e.len);
        put_u32(&mut out, e.lid);
        put_u8(&mut out, e.delta as u8);
        put_u64(&mut out, e.fp);
    }
    put_u64(&mut out, arena.len() as u64);
    out.extend_from_slice(&arena);
    let sum = fingerprint_bytes(&out);
    put_u64(&mut out, sum);
    std::fs::write(shard_path(dir, depth, shard), &out)
}

/// Fingerprint binding a checkpoint to the exact configuration whose
/// exploration it froze: resuming under any other configuration would
/// deterministically produce *different* results, so it must be refused.
fn config_fp(mc: &ModelChecker, cfg: &McConfig) -> u64 {
    let desc = format!(
        "caches={} domain={} cap={} ordered={} symmetry={} store={:?} props={}",
        cfg.n_caches,
        cfg.value_domain,
        cfg.channel_cap,
        cfg.ordered,
        cfg.symmetry,
        cfg.store,
        mc.property_names().join(","),
    );
    fingerprint_bytes(desc.as_bytes())
}

/// Fingerprint of the generated FSM pair (the checkpoint is meaningless
/// against any other machine).
fn fsm_fp(mc: &ModelChecker) -> u64 {
    let (cache, dir) = mc.fsms();
    fingerprint_bytes(format!("{cache:?}\x1f{dir:?}").as_bytes())
}

/// Commits the checkpoint for `depth`: writes the manifest (last, via
/// tmp-file + rename, so a kill can only leave a complete manifest or
/// none) and prunes every other `ck-*` directory. Run by the last
/// arriver at the checkpoint rendezvous, after all shard files exist.
pub(crate) fn commit(
    dir: &Path,
    depth: u32,
    threads: usize,
    mc: &ModelChecker,
    cfg: &McConfig,
    coord: &Coordinator,
) -> io::Result<()> {
    let mut out = Vec::with_capacity(96 + threads * 16);
    put_u32(&mut out, MANIFEST_MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, depth);
    put_u32(&mut out, threads as u32);
    put_u64(&mut out, coord.total_states.load(Relaxed) as u64);
    put_u64(&mut out, coord.transitions.load(Relaxed) as u64);
    put_u64(&mut out, config_fp(mc, cfg));
    put_u64(&mut out, fsm_fp(mc));
    for t in 0..threads {
        let bytes = std::fs::metadata(shard_path(dir, depth, t))?.len();
        // The shard's own trailing checksum, lifted into the manifest so
        // resume can verify each file against an independently-committed
        // record of it.
        let mut f = std::fs::read(shard_path(dir, depth, t))?;
        let tail = f.split_off(f.len().saturating_sub(8));
        let sum = u64::from_le_bytes(
            tail.as_slice().try_into().map_err(|_| io::Error::other("short shard file"))?,
        );
        put_u64(&mut out, bytes);
        put_u64(&mut out, sum);
    }
    let sum = fingerprint_bytes(&out);
    put_u64(&mut out, sum);
    let tmp = ck_dir(dir, depth).join("manifest.tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, ck_dir(dir, depth).join("manifest.bin"))?;
    // The new checkpoint is committed: older (and any orphaned) ones are
    // dead weight. Pruning is best-effort — a leftover directory without
    // a newer manifest is ignored by resume anyway.
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ck-") && name != format!("ck-{depth}") {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Loading.

/// Depths of committed checkpoints (manifest present) under `dir`,
/// ascending.
fn committed_depths(dir: &Path) -> Result<Vec<u32>, CheckpointError> {
    let rd = std::fs::read_dir(dir).map_err(|e| {
        CheckpointError::new(format!("cannot read checkpoint dir {}: {e}", dir.display()))
    })?;
    let mut depths = Vec::new();
    for entry in rd.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(d) = name.strip_prefix("ck-").and_then(|d| d.parse::<u32>().ok()) {
            if entry.path().join("manifest.bin").is_file() {
                depths.push(d);
            }
        }
    }
    depths.sort_unstable();
    Ok(depths)
}

/// Loads and fully validates the newest committed checkpoint under the
/// configured directory. Every validation failure is a hard error with a
/// description of what did not match — a questionable checkpoint is
/// never silently skipped in favour of an older one.
pub(crate) fn load_latest(
    mc: &ModelChecker,
    cfg: &McConfig,
) -> Result<LoadedCheckpoint, CheckpointError> {
    let dir = cfg
        .checkpoint_dir
        .as_deref()
        .ok_or_else(|| CheckpointError::new("resume requires checkpoint_dir to be set"))?;
    let depths = committed_depths(dir)?;
    let &depth = depths.last().ok_or_else(|| {
        CheckpointError::new(format!("no committed checkpoint found in {}", dir.display()))
    })?;

    let mpath = ck_dir(dir, depth).join("manifest.bin");
    let mbytes = std::fs::read(&mpath)
        .map_err(|e| CheckpointError::new(format!("cannot read {}: {e}", mpath.display())))?;
    let payload = checked_payload(&mbytes, "manifest")?;
    let mut r = Reader::new(payload, "manifest");
    if r.u32()? != MANIFEST_MAGIC {
        return Err(CheckpointError::new("manifest has wrong magic (not a checkpoint manifest)"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::new(format!(
            "manifest version {version} unsupported (this build reads version {VERSION})"
        )));
    }
    let mdepth = r.u32()?;
    if mdepth != depth {
        return Err(CheckpointError::new(format!(
            "manifest depth {mdepth} does not match its directory ck-{depth}"
        )));
    }
    let threads = r.u32()? as usize;
    if threads == 0 || threads > MAX_SHARDS {
        return Err(CheckpointError::new(format!("manifest thread count {threads} out of range")));
    }
    let total_states = r.u64()? as usize;
    let transitions = r.u64()? as usize;
    let want_cfg = r.u64()?;
    if want_cfg != config_fp(mc, cfg) {
        return Err(CheckpointError::new(
            "checkpoint was written under a different checker configuration (cache count, \
             value domain, channel cap, ordering, symmetry, store mode, and property set \
             must all match)",
        ));
    }
    let want_fsm = r.u64()?;
    if want_fsm != fsm_fp(mc) {
        return Err(CheckpointError::new(
            "checkpoint was written for different generated FSMs (protocol or generation \
             config mismatch)",
        ));
    }
    let mut shard_meta = Vec::with_capacity(threads);
    for _ in 0..threads {
        shard_meta.push((r.u64()?, r.u64()?));
    }

    let mut shards = Vec::with_capacity(threads);
    for (t, &(want_len, want_sum)) in shard_meta.iter().enumerate() {
        shards.push(load_shard(dir, depth, t, want_len, want_sum, cfg)?);
    }
    Ok(LoadedCheckpoint { depth, threads, total_states, transitions, shards })
}

fn load_shard(
    dir: &Path,
    depth: u32,
    shard: usize,
    want_len: u64,
    want_sum: u64,
    cfg: &McConfig,
) -> Result<ShardSnapshot, CheckpointError> {
    let path = shard_path(dir, depth, shard);
    let what = format!("shard file {}", path.display());
    let bytes = std::fs::read(&path)
        .map_err(|e| CheckpointError::new(format!("cannot read {}: {e}", path.display())))?;
    if bytes.len() as u64 != want_len {
        return Err(CheckpointError::new(format!(
            "{what} is truncated or altered: {} bytes on disk, manifest recorded {want_len}",
            bytes.len()
        )));
    }
    let payload = checked_payload(&bytes, &what)?;
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte slice"));
    if stored != want_sum {
        return Err(CheckpointError::new(format!(
            "{what} does not match the manifest (checksum {stored:#018x}, manifest {want_sum:#018x})"
        )));
    }
    let mut r = Reader::new(payload, &what);
    if r.u32()? != SHARD_MAGIC {
        return Err(CheckpointError::new(format!("{what} has wrong magic")));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::new(format!("{what} has unsupported version {version}")));
    }
    let fshard = r.u32()? as usize;
    let fdepth = r.u32()?;
    if fshard != shard || fdepth != depth {
        return Err(CheckpointError::new(format!(
            "{what} labels itself shard {fshard} depth {fdepth}, expected shard {shard} \
             depth {depth}"
        )));
    }
    let n = r.len(8)?;
    let mut fps = Vec::with_capacity(n);
    for _ in 0..n {
        fps.push(r.u64()?);
    }
    let file_keeps = r.u8()? != 0;
    if file_keeps != cfg.store.keeps_recs() {
        return Err(CheckpointError::new(format!(
            "{what} was written {} parent records but the configured store mode {} them",
            if file_keeps { "with" } else { "without" },
            if cfg.store.keeps_recs() { "requires" } else { "omits" },
        )));
    }
    let mut recs = Vec::new();
    if file_keeps {
        recs.reserve(n);
        for _ in 0..n {
            let parent_fp = r.u64()?;
            let parent = Gid::from_raw(r.u32()?);
            let step = r.u32()?;
            let rdepth = r.u32()?;
            recs.push(StateRec { parent_fp, parent, step, depth: rdepth });
        }
    }
    let n_entries = r.len(25)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let off = r.u64()? as usize;
        let len = r.u32()?;
        let lid = r.u32()?;
        let delta = r.u8()? != 0;
        let fp = r.u64()?;
        entries.push(FrontEntry { off, len, lid, delta, fp });
    }
    let arena_len = r.len(1)?;
    let arena = r.take(arena_len)?.to_vec();
    // Structural cross-checks: entry offsets must tile the arena, lids
    // must be in range. Cheap, and they turn "checksum passed but the
    // writer had a bug" into an error instead of a wrong resume.
    let mut expect_off = 0usize;
    for e in &entries {
        if e.off != expect_off || e.lid as usize >= n {
            return Err(CheckpointError::new(format!(
                "{what} frontier index is inconsistent (entry at offset {}, expected {}, \
                 lid {} of {} states)",
                e.off, expect_off, e.lid, n
            )));
        }
        expect_off += e.len as usize;
    }
    if expect_off != arena.len() {
        return Err(CheckpointError::new(format!(
            "{what} frontier arena is {} bytes but the index spans {expect_off}",
            arena.len()
        )));
    }
    Ok(ShardSnapshot { fps, recs, entries, arena })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "protogen-ck-test-{}-{tag}-{:x}",
            std::process::id(),
            fingerprint_bytes(tag.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: u64) -> StateRec {
        StateRec {
            parent_fp: i.wrapping_mul(0x9E37_79B9),
            parent: Gid::from_raw(i as u32 & 0x0FFF_FFFF),
            step: i as u32,
            depth: (i / 7) as u32,
        }
    }

    /// Builds a (store, frontier) pair from proptest-chosen shapes.
    fn build(
        fps: &[u64],
        entry_lens: &[u16],
        keeps_recs: bool,
    ) -> (ShardStore, FrontierBuf, Vec<u8>) {
        let mut store = ShardStore::new();
        for (lid, &fp) in fps.iter().enumerate() {
            store.map.insert(fp, lid as u32);
            if keeps_recs {
                store.push_rec(rec(lid as u64));
            }
        }
        let mut cur = FrontierBuf::default();
        let mut arena = Vec::new();
        let mut off = 0usize;
        for (i, &len) in entry_lens.iter().enumerate() {
            let len = len as usize;
            let lid = (i % fps.len().max(1)) as u32;
            for k in 0..len {
                arena.push((k as u8).wrapping_mul(31).wrapping_add(i as u8));
            }
            cur.index.push(FrontEntry {
                off,
                len: len as u32,
                lid,
                delta: i % 3 == 0 && i > 0,
                fp: fps.get(lid as usize).copied().unwrap_or(0),
            });
            off += len;
        }
        cur.bytes = arena.clone();
        (store, cur, arena)
    }

    /// Round-trip one shard through write_shard + load_shard directly
    /// (the manifest path is exercised by the explorer integration
    /// tests).
    fn roundtrip(fps: Vec<u64>, entry_lens: Vec<u16>, keeps_recs: bool) {
        // Deduplicate fingerprints: the map inverts them by lid.
        let mut fps = fps;
        fps.sort_unstable();
        fps.dedup();
        if fps.is_empty() {
            fps.push(7);
        }
        let (store, cur, arena) = build(&fps, &entry_lens, keeps_recs);
        let dir = tmpdir("roundtrip");
        write_shard(&dir, 3, 0, &store, &cur, keeps_recs).unwrap();
        let path = shard_path(&dir, 3, 0);
        let bytes = std::fs::read(&path).unwrap();
        let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let mut cfg = McConfig::with_caches(2);
        cfg.store = if keeps_recs { crate::StoreMode::Full } else { crate::StoreMode::FpOnly };
        let snap = load_shard(&dir, 3, 0, bytes.len() as u64, sum, &cfg).unwrap();
        let mut want_fps = vec![0u64; store.len()];
        for (&fp, &lid) in &store.map {
            want_fps[lid as usize] = fp;
        }
        assert_eq!(snap.fps, want_fps);
        assert_eq!(snap.arena, arena);
        assert_eq!(snap.entries.len(), cur.index.len());
        for (a, b) in snap.entries.iter().zip(cur.index.iter()) {
            assert_eq!((a.off, a.len, a.lid, a.delta, a.fp), (b.off, b.len, b.lid, b.delta, b.fp));
        }
        if keeps_recs {
            assert_eq!(snap.recs.len(), store.len());
            for (lid, r) in snap.recs.iter().enumerate() {
                let w = rec(lid as u64);
                assert_eq!(
                    (r.parent_fp, r.parent.raw(), r.step, r.depth),
                    (w.parent_fp, w.parent.raw(), w.step, w.depth)
                );
            }
        } else {
            assert!(snap.recs.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The snapshot codec is an exact round-trip for arbitrary store
        /// and frontier shapes, with and without parent records
        /// (mirroring the delta codec's `delta_prop.rs` discipline).
        #[test]
        fn shard_snapshot_round_trips(
            fps in proptest::collection::vec(any::<u64>(), 1..200),
            lens in proptest::collection::vec(0u16..300, 0..60),
            keeps in any::<bool>(),
        ) {
            roundtrip(fps, lens, keeps);
        }

        /// Any single corrupted byte in a shard file is detected — the
        /// checksum gate runs before any field is interpreted.
        #[test]
        fn corrupted_shard_fails_with_a_clear_error(
            at_pct in 0u16..1000,
            flip in 1u16..256,
        ) {
            let flip = flip as u8;
            let fps = vec![11, 22, 33, 44];
            let (store, cur, _) = build(&fps, &[5, 9, 0, 17], true);
            let dir = tmpdir("corrupt");
            write_shard(&dir, 1, 0, &store, &cur, true).unwrap();
            let path = shard_path(&dir, 1, 0);
            let mut bytes = std::fs::read(&path).unwrap();
            let at = (at_pct as usize * (bytes.len() - 1)) / 1000;
            bytes[at] ^= flip;
            std::fs::write(&path, &bytes).unwrap();
            let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
            let cfg = McConfig::with_caches(2);
            // Whether the flip landed in the payload or the trailing
            // checksum itself, load must fail; use the *original* sum as
            // the manifest record so a tail flip is caught either way.
            let err = load_shard(&dir, 1, 0, bytes.len() as u64, sum, &cfg)
                .err()
                .expect("corrupt shard must not load");
            let msg = err.to_string();
            prop_assert!(
                msg.contains("corrupt") || msg.contains("truncated") || msg.contains("manifest"),
                "unhelpful error: {msg}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn truncated_shard_fails_with_a_clear_error() {
        let fps = vec![5, 6, 7];
        let (store, cur, _) = build(&fps, &[4, 4], true);
        let dir = tmpdir("trunc");
        write_shard(&dir, 2, 0, &store, &cur, true).unwrap();
        let path = shard_path(&dir, 2, 0);
        let full = std::fs::read(&path).unwrap();
        for keep in [0, 3, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let cfg = McConfig::with_caches(2);
            let err = load_shard(&dir, 2, 0, keep as u64, 0, &cfg)
                .err()
                .expect("truncated shard must not load");
            assert!(
                err.to_string().contains("truncated") || err.to_string().contains("corrupt"),
                "unhelpful error at {keep}: {err}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_and_empty_dir_error_clearly() {
        let ssp = protogen_protocols::msi();
        let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::stalling()).unwrap();
        let mut cfg = McConfig::with_caches(2);
        cfg.checkpoint_dir = Some(PathBuf::from("/nonexistent/protogen-ck"));
        let mc = ModelChecker::new(&g.cache, &g.directory, cfg.clone());
        let err = mc.resume().expect_err("missing dir must error");
        assert!(err.to_string().contains("cannot read checkpoint dir"), "{err}");

        let empty = tmpdir("empty");
        cfg.checkpoint_dir = Some(empty.clone());
        let mc = ModelChecker::new(&g.cache, &g.directory, cfg);
        let err = mc.resume().expect_err("empty dir must error");
        assert!(err.to_string().contains("no committed checkpoint"), "{err}");
        let _ = std::fs::remove_dir_all(&empty);
    }
}
