//! Work distribution for the parallel explorer: encoded-candidate batch
//! queues between shards and the epoch-synchronization phaser.
//!
//! Exploration proceeds in BFS epochs (levels). Within an epoch every
//! worker expands its own frontier, routing successor *encodings* (never
//! cloned states — see [`crate::system::SysState::decode_into`]) to the
//! owning shard's bounded inbox in batches, and opportunistically drains
//! its own inbox between expansions, so deduplication overlaps expansion
//! instead of waiting for a phase barrier. Workers synchronize only at
//! epoch boundaries — once when the epoch's expansion is complete (a
//! *draining* rendezvous: waiting workers keep servicing their inbox, so
//! bounded queues cannot deadlock the fleet) and once when its
//! deduplication is complete (where the last arriver publishes the
//! budget/violation decision). Candidate arrival order varies run to run,
//! but every quantity the checker reports is arrival-order-independent:
//! states dedup by fingerprint, same-level parent races resolve by
//! minimum `(parent fingerprint, step)`, and violations are selected by a
//! deterministic minimum at the epoch boundary. DESIGN.md §8 carries the
//! determinism proof sketch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::explore::ViolationKind;
use crate::store::Gid;
use protogen_runtime::PairSet;

/// One successor candidate en route to its owning shard: the fixed-width
/// part. The state itself travels as its canonical encoding in the
/// batch's shared byte arena (`off..off + len`), so a candidate that
/// turns out to be a duplicate never materializes a state at all.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandMeta {
    /// Canonical fingerprint (identical for every member of the orbit).
    pub fp: u64,
    /// The parent's fingerprint (deterministic parent-selection key).
    pub parent_fp: u64,
    /// Global id of the expanded parent.
    pub parent: Gid,
    /// Packed step that produced this successor.
    pub step: u32,
    /// Offset of the canonical encoding in the batch arena.
    pub off: u32,
    /// Length of the canonical encoding.
    pub len: u32,
}

/// A batch of candidates bound for one shard: parallel metadata records
/// plus one contiguous byte arena holding their canonical encodings —
/// two allocations per ~[`BATCH`] candidates instead of a boxed state
/// each, and both buffers are recycled through [`Outboxes::recycle`].
#[derive(Debug, Default)]
pub(crate) struct CandBatch {
    pub meta: Vec<CandMeta>,
    pub bytes: Vec<u8>,
}

impl CandBatch {
    /// Empties the batch, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.meta.clear();
        self.bytes.clear();
    }

    /// The encoding of candidate `m`.
    pub fn enc(&self, m: &CandMeta) -> &[u8] {
        &self.bytes[m.off as usize..(m.off + m.len) as usize]
    }

    /// RAM held by this batch's two allocations.
    pub fn mem_bytes(&self) -> usize {
        self.meta.capacity() * std::mem::size_of::<CandMeta>() + self.bytes.capacity()
    }
}

/// Candidates per batch before it is sealed and delivered.
pub(crate) const BATCH: usize = 256;

/// Most batches one inbox may queue before producers are backpressured.
/// Bounds frontier-routing memory to `threads² × MAX_QUEUED_BATCHES ×
/// BATCH` candidates; producers blocked on a full inbox drain their own
/// inbox while they wait, so the bound cannot deadlock the fleet.
pub(crate) const MAX_QUEUED_BATCHES: usize = 64;

/// One shard's bounded inbox of candidate batches, filled by every worker
/// during expansion and drained exclusively by the owner.
#[derive(Debug, Default)]
pub(crate) struct Inbox {
    q: Mutex<VecDeque<CandBatch>>,
    space: Condvar,
}

impl Inbox {
    /// Queues `batch` unless the inbox is at capacity (the batch is
    /// handed back for the caller's backpressure loop).
    pub fn try_push(&self, batch: CandBatch) -> Result<(), CandBatch> {
        let mut q = self.q.lock().unwrap();
        if q.len() >= MAX_QUEUED_BATCHES {
            return Err(batch);
        }
        q.push_back(batch);
        Ok(())
    }

    /// Takes the oldest queued batch, waking one backpressured producer.
    pub fn pop(&self) -> Option<CandBatch> {
        let popped = self.q.lock().unwrap().pop_front();
        if popped.is_some() {
            self.space.notify_all();
        }
        popped
    }

    /// Blocks until the inbox has space or `dur` elapses (backpressured
    /// producers park here between drain attempts of their own inbox).
    pub fn wait_for_space(&self, dur: Duration) {
        let q = self.q.lock().unwrap();
        if q.len() >= MAX_QUEUED_BATCHES {
            let _ = self.space.wait_timeout(q, dur).unwrap();
        }
    }

    /// RAM held by queued batches right now (taken under the queue lock;
    /// sampled once per epoch for peak-memory accounting).
    pub fn mem_bytes(&self) -> usize {
        self.q.lock().unwrap().iter().map(CandBatch::mem_bytes).sum()
    }
}

/// Per-worker outboxes: one open batch per destination shard plus a pool
/// of recycled empties, so steady-state routing allocates nothing.
#[derive(Debug)]
pub(crate) struct Outboxes {
    bufs: Vec<CandBatch>,
    pool: Vec<CandBatch>,
}

impl Outboxes {
    pub fn new(n_shards: usize) -> Self {
        Outboxes { bufs: (0..n_shards).map(|_| CandBatch::default()).collect(), pool: Vec::new() }
    }

    /// The byte arena of `shard`'s open batch — encode the candidate here
    /// first, then seal its metadata with [`Outboxes::push_meta`].
    pub fn bytes_of(&mut self, shard: usize) -> &mut Vec<u8> {
        &mut self.bufs[shard].bytes
    }

    /// Records `meta` for `shard`. When the batch reaches [`BATCH`]
    /// candidates it is sealed and returned for delivery (a fresh or
    /// pooled batch takes its place).
    pub fn push_meta(&mut self, shard: usize, meta: CandMeta) -> Option<CandBatch> {
        let buf = &mut self.bufs[shard];
        buf.meta.push(meta);
        if buf.meta.len() >= BATCH {
            let fresh = self.pool.pop().unwrap_or_default();
            Some(std::mem::replace(&mut self.bufs[shard], fresh))
        } else {
            None
        }
    }

    /// Seals and takes `shard`'s open batch if it is non-empty (end of
    /// the epoch's expansion).
    pub fn take(&mut self, shard: usize) -> Option<CandBatch> {
        if self.bufs[shard].meta.is_empty() {
            None
        } else {
            let fresh = self.pool.pop().unwrap_or_default();
            Some(std::mem::replace(&mut self.bufs[shard], fresh))
        }
    }

    /// Returns a drained batch's allocations to the pool. Batches
    /// received from *other* workers land here too — cross-thread arena
    /// recycling, so the fleet's batch allocations reach a fixed point
    /// after the first few epochs.
    pub fn recycle(&mut self, mut batch: CandBatch) {
        batch.clear();
        if self.pool.len() < 2 * MAX_QUEUED_BATCHES {
            self.pool.push(batch);
        }
    }

    /// RAM held by the open batches *and* the recycled-empties pool —
    /// the pool retains up to `2 × MAX_QUEUED_BATCHES` arenas per worker,
    /// which the old "peak store bytes" figure never counted.
    pub fn mem_bytes(&self) -> usize {
        self.bufs.iter().chain(self.pool.iter()).map(CandBatch::mem_bytes).sum()
    }
}

/// A violation discovered during expansion, waiting for the end-of-epoch
/// deterministic minimum-selection.
#[derive(Debug)]
pub(crate) struct VioCand {
    /// Global id of the state being expanded when the violation fired.
    pub parent: Gid,
    /// That state's fingerprint (primary selection key).
    pub parent_fp: u64,
    /// Packed final step ([`crate::store::STEP_NONE`] for deadlocks).
    pub step: u32,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// End-of-epoch aggregation, merged under one lock by every worker.
#[derive(Debug, Default)]
pub(crate) struct LevelAgg {
    /// States newly inserted this epoch, summed over shards.
    pub new_states: usize,
    /// Violations discovered this epoch, across all workers.
    pub violations: Vec<VioCand>,
}

/// What the whole fleet does after the current epoch.
#[derive(Debug, Default)]
pub(crate) enum Decision {
    /// Explore the next level.
    #[default]
    Continue,
    /// Stop: either a violation was selected, the space is exhausted, or
    /// the state budget is spent.
    Stop {
        /// The deterministically chosen violation, if any.
        violation: Option<VioCand>,
        /// Whether `max_states` was exceeded.
        hit_limit: bool,
    },
}

/// Epoch-boundary rendezvous: `n` workers arrive; the *last* arriver runs
/// the leader closure (publishing the epoch decision) before releasing
/// the fleet. A generation counter makes the phaser reusable, and
/// [`Phaser::arrive_and_drain`] lets waiting workers keep servicing their
/// inbox — the piece that makes bounded queues deadlock-free.
#[derive(Debug)]
pub(crate) struct Phaser {
    n: usize,
    /// `(arrived, generation)`.
    state: Mutex<(usize, u64)>,
    cv: Condvar,
}

impl Phaser {
    pub fn new(n: usize) -> Self {
        Phaser { n, state: Mutex::new((0, 0)), cv: Condvar::new() }
    }

    /// Arrives at the rendezvous and blocks until every worker has. The
    /// last arriver runs `leader` (under the phaser lock — keep it short)
    /// before waking the fleet.
    pub fn arrive<F: FnOnce()>(&self, leader: F) {
        let mut st = self.state.lock().unwrap();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 = gen.wrapping_add(1);
            leader();
            self.cv.notify_all();
        } else {
            while st.1 == gen {
                st = self.cv.wait(st).unwrap();
            }
        }
    }

    /// [`Phaser::arrive`] for the expansion boundary: while waiting for
    /// stragglers, periodically runs `service` (the caller drains its own
    /// inbox there), so a worker that finished its frontier early still
    /// consumes the batches stragglers route to it — without this, a full
    /// inbox whose owner is parked at the rendezvous would deadlock every
    /// backpressured producer.
    pub fn arrive_and_drain<F: FnMut()>(&self, mut service: F) {
        let mut st = self.state.lock().unwrap();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 = gen.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        loop {
            let (guard, _) = self.cv.wait_timeout(st, Duration::from_micros(200)).unwrap();
            st = guard;
            if st.1 != gen {
                return;
            }
            drop(st);
            service();
            st = self.state.lock().unwrap();
            if st.1 != gen {
                return;
            }
        }
    }
}

/// Shared coordination state for one exploration run. (No `Debug`: the
/// captured panic payload is an opaque `Box<dyn Any>`.)
pub(crate) struct Coordinator {
    /// Epoch-boundary rendezvous; one slot per worker.
    pub phaser: Phaser,
    /// Total states inserted across shards (read for the budget check).
    pub total_states: AtomicUsize,
    /// Total transitions fired across workers.
    pub transitions: AtomicUsize,
    /// Per-epoch merge target.
    pub agg: Mutex<LevelAgg>,
    /// Union of `(machine, state, event)` dispatches, merged by every
    /// worker at the end of its expansion (only populated when
    /// [`crate::McConfig::collect_pair_coverage`] is set). A `BTreeSet`,
    /// so the union is identical for every merge order.
    pub coverage: Mutex<PairSet>,
    /// Decision published at the dedup rendezvous each epoch.
    pub decision: Mutex<Decision>,
    /// Lowest shard id whose visited set reached its capacity bound
    /// (`usize::MAX` while none has). Checked by the decision so a full
    /// shard stops exploration with a structured outcome.
    pub exhausted_shard: AtomicUsize,
    /// Accounted RAM summed by workers over the current epoch (store +
    /// frontier arenas + outbox pools + queued inbox batches); the
    /// decision leader folds it into `peak_mem` and zeroes it.
    pub epoch_mem: AtomicUsize,
    /// Running maximum of `epoch_mem` over all epochs — the run's peak
    /// accounted memory.
    pub peak_mem: AtomicUsize,
    /// Payload bytes spilled by frontier arenas fleet-wide (visited-record
    /// spill totals are summed from the returned shards instead).
    pub spill_bytes: AtomicU64,
    /// Chunks spilled by frontier arenas fleet-wide.
    pub spill_chunks: AtomicU64,
    /// Set when any worker's phase panicked: every worker keeps hitting
    /// the rendezvous but skips real work, so the fleet drains instead of
    /// deadlocking the phaser.
    pub aborted: AtomicBool,
    /// The first captured panic payload, re-raised by the main thread.
    pub panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Coordinator {
    pub fn new(n_workers: usize) -> Self {
        Coordinator {
            phaser: Phaser::new(n_workers),
            total_states: AtomicUsize::new(0),
            transitions: AtomicUsize::new(0),
            agg: Mutex::new(LevelAgg::default()),
            coverage: Mutex::new(PairSet::new()),
            decision: Mutex::new(Decision::Continue),
            exhausted_shard: AtomicUsize::new(usize::MAX),
            epoch_mem: AtomicUsize::new(0),
            peak_mem: AtomicUsize::new(0),
            spill_bytes: AtomicU64::new(0),
            spill_chunks: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Records a worker-phase panic (first one wins) and flips the abort
    /// flag so every worker exits at the next decision point.
    pub fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.aborted.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::STEP_NONE;

    fn meta(fp: u64, off: u32, len: u32) -> CandMeta {
        CandMeta { fp, parent_fp: 0, parent: Gid::pack(0, 0), step: STEP_NONE, off, len }
    }

    #[test]
    fn outboxes_seal_on_batch_boundary_and_on_demand() {
        let mut out = Outboxes::new(2);
        for i in 0..BATCH - 1 {
            out.bytes_of(1).push(i as u8);
            assert!(out.push_meta(1, meta(i as u64, i as u32, 1)).is_none());
        }
        // The BATCH-th candidate seals the batch.
        let sealed = out.push_meta(1, meta(9, 0, 0)).expect("sealed at the batch bound");
        assert_eq!(sealed.meta.len(), BATCH);
        assert_eq!(sealed.bytes.len(), BATCH - 1);
        // Encodings are addressable through the metadata.
        assert_eq!(sealed.enc(&sealed.meta[3]), &[3]);
        // Nothing open for shard 0 yet; one candidate then takes it.
        assert!(out.take(0).is_none());
        out.push_meta(0, meta(1, 0, 0));
        assert_eq!(out.take(0).unwrap().meta.len(), 1);
        // Recycled batches come back empty with their allocations.
        out.recycle(sealed);
        out.bytes_of(1).push(7);
        assert!(out.push_meta(1, meta(1, 0, 1)).is_none());
        assert!(out.take(1).unwrap().bytes.capacity() > 0);
    }

    #[test]
    fn inbox_is_bounded_and_pop_frees_space() {
        let inbox = Inbox::default();
        for _ in 0..MAX_QUEUED_BATCHES {
            inbox.try_push(CandBatch::default()).expect("under the bound");
        }
        let rejected = inbox.try_push(CandBatch::default());
        assert!(rejected.is_err(), "the bound must backpressure");
        // wait_for_space with a full queue returns after the timeout
        // without panicking, and after a pop the push goes through.
        inbox.wait_for_space(Duration::from_millis(1));
        assert!(inbox.pop().is_some());
        inbox.try_push(rejected.unwrap_err()).expect("space after pop");
    }

    #[test]
    fn phaser_releases_fleet_and_leader_runs_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phaser = Phaser::new(4);
        let leads = AtomicUsize::new(0);
        let services = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    phaser.arrive_and_drain(|| {
                        services.fetch_add(1, Ordering::Relaxed);
                    });
                    phaser.arrive(|| {
                        leads.fetch_add(1, Ordering::Relaxed);
                    });
                    // Reusable: a second epoch goes through the same phaser.
                    phaser.arrive(|| {
                        leads.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(leads.load(Ordering::Relaxed), 2, "exactly one leader per rendezvous");
    }
}
