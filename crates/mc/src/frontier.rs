//! Work distribution for the parallel explorer: candidate routing between
//! shards and the level-synchronization coordinator.
//!
//! Exploration proceeds in BFS levels with three phases per level —
//! *expand* (every worker expands its own frontier, routing successor
//! candidates to the owning shard's inbox in batches), *dedup* (every
//! worker drains its own inbox into its shard store), and *decide* (worker
//! 0 aggregates violations and counts, then all workers read the shared
//! decision). A barrier separates the phases, which is what makes the
//! result — states, transitions, violation choice, counterexample trace —
//! independent of thread count and interleaving.

use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::{Barrier, Mutex};

use crate::explore::ViolationKind;
use crate::store::Gid;
use crate::system::SysState;
use protogen_runtime::PairSet;

/// A successor state en route to its owning shard. The state is carried in
/// raw (as-computed) form together with the index of the permutation that
/// canonicalizes it, so the owning shard materializes the canonical
/// representative only for states that turn out to be new.
#[derive(Debug)]
pub(crate) struct Candidate {
    /// The raw successor state.
    pub state: SysState,
    /// Index into the permutation table of the canonicalizing permutation.
    pub perm_idx: u32,
    /// Canonical fingerprint (identical for every member of the orbit).
    pub fp: u64,
    /// Global id of the expanded parent.
    pub parent: Gid,
    /// The parent's fingerprint (deterministic parent-selection key).
    pub parent_fp: u64,
    /// Packed step that produced this successor.
    pub step: u32,
}

/// A violation discovered during expansion, waiting for the end-of-level
/// deterministic minimum-selection.
#[derive(Debug)]
pub(crate) struct VioCand {
    /// Global id of the state being expanded when the violation fired.
    pub parent: Gid,
    /// That state's fingerprint (primary selection key).
    pub parent_fp: u64,
    /// Packed final step ([`crate::store::STEP_NONE`] for deadlocks).
    pub step: u32,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// One shard's inbox of candidates, filled by every worker during the
/// expand phase and drained exclusively by the owner during dedup.
#[derive(Debug, Default)]
pub(crate) struct Inbox {
    queue: Mutex<Vec<Candidate>>,
}

impl Inbox {
    /// Appends a batch, emptying `batch` for reuse.
    pub fn push_batch(&self, batch: &mut Vec<Candidate>) {
        let mut q = self.queue.lock().unwrap();
        q.append(batch);
    }

    /// Takes everything currently queued.
    pub fn drain(&self) -> Vec<Candidate> {
        std::mem::take(&mut self.queue.lock().unwrap())
    }
}

/// How many candidates a worker buffers per destination shard before
/// taking that shard's inbox lock.
const BATCH: usize = 256;

/// Per-worker outboxes, one buffer per destination shard, flushed in
/// batches to amortize inbox locking.
#[derive(Debug)]
pub(crate) struct Outboxes {
    bufs: Vec<Vec<Candidate>>,
}

impl Outboxes {
    pub fn new(n_shards: usize) -> Self {
        Outboxes { bufs: (0..n_shards).map(|_| Vec::with_capacity(BATCH)).collect() }
    }

    /// Queues `cand` for `shard`, flushing that buffer if it is full.
    pub fn push(&mut self, shard: usize, cand: Candidate, inboxes: &[Inbox]) {
        let buf = &mut self.bufs[shard];
        buf.push(cand);
        if buf.len() >= BATCH {
            inboxes[shard].push_batch(buf);
        }
    }

    /// Flushes every non-empty buffer (end of the expand phase).
    pub fn flush_all(&mut self, inboxes: &[Inbox]) {
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                inboxes[shard].push_batch(buf);
            }
        }
    }
}

/// End-of-level aggregation, merged under one lock by every worker.
#[derive(Debug, Default)]
pub(crate) struct LevelAgg {
    /// States newly inserted this level, summed over shards.
    pub new_states: usize,
    /// Violations discovered this level, across all workers.
    pub violations: Vec<VioCand>,
}

/// What the whole fleet does after the current level.
#[derive(Debug, Default)]
pub(crate) enum Decision {
    /// Explore the next level.
    #[default]
    Continue,
    /// Stop: either a violation was selected, the space is exhausted, or
    /// the state budget is spent.
    Stop {
        /// The deterministically chosen violation, if any.
        violation: Option<VioCand>,
        /// Whether `max_states` was exceeded.
        hit_limit: bool,
    },
}

/// Shared coordination state for one exploration run. (No `Debug`: the
/// captured panic payload is an opaque `Box<dyn Any>`.)
pub(crate) struct Coordinator {
    /// Phase separator; one slot per worker.
    pub barrier: Barrier,
    /// Total states inserted across shards (read for the budget check).
    pub total_states: AtomicUsize,
    /// Total transitions fired across workers.
    pub transitions: AtomicUsize,
    /// Per-level merge target.
    pub agg: Mutex<LevelAgg>,
    /// Union of `(machine, state, event)` dispatches, merged by every
    /// worker at the end of its expand phase (only populated when
    /// [`crate::McConfig::collect_pair_coverage`] is set). A `BTreeSet`,
    /// so the union is identical for every merge order.
    pub coverage: Mutex<PairSet>,
    /// Decision published by worker 0 each level.
    pub decision: Mutex<Decision>,
    /// Lowest shard id whose visited set reached its capacity bound
    /// (`usize::MAX` while none has). Checked by the decide phase so a
    /// full shard stops exploration with a structured outcome.
    pub exhausted_shard: AtomicUsize,
    /// Set when any worker's phase panicked: every worker keeps hitting
    /// the barriers but skips real work, so the fleet drains instead of
    /// deadlocking on the [`Barrier`] (std barriers have no poisoning).
    pub aborted: AtomicBool,
    /// The first captured panic payload, re-raised by the main thread.
    pub panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Coordinator {
    pub fn new(n_workers: usize) -> Self {
        Coordinator {
            barrier: Barrier::new(n_workers),
            total_states: AtomicUsize::new(0),
            transitions: AtomicUsize::new(0),
            agg: Mutex::new(LevelAgg::default()),
            coverage: Mutex::new(PairSet::new()),
            decision: Mutex::new(Decision::Continue),
            exhausted_shard: AtomicUsize::new(usize::MAX),
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Records a worker-phase panic (first one wins) and flips the abort
    /// flag so every worker exits at the next decision point.
    pub fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.aborted.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::STEP_NONE;

    fn cand(fp: u64) -> Candidate {
        Candidate {
            state: SysState::initial(1),
            perm_idx: 0,
            fp,
            parent: Gid::pack(0, 0),
            parent_fp: 0,
            step: STEP_NONE,
        }
    }

    #[test]
    fn outboxes_flush_on_batch_boundary_and_on_demand() {
        let inboxes = vec![Inbox::default(), Inbox::default()];
        let mut out = Outboxes::new(2);
        for i in 0..BATCH {
            out.push(1, cand(i as u64), &inboxes);
        }
        // A full batch flushed itself.
        assert_eq!(inboxes[1].drain().len(), BATCH);
        out.push(0, cand(9), &inboxes);
        assert!(inboxes[0].drain().is_empty());
        out.flush_all(&inboxes);
        assert_eq!(inboxes[0].drain().len(), 1);
        // Drain empties the queue.
        assert!(inboxes[0].drain().is_empty());
    }
}
