//! Hierarchical model checking: a composed protocol stack explored as one
//! leveled system (DESIGN.md §12).
//!
//! The flat checker ([`crate::ModelChecker`]) verifies one protocol level:
//! `n` caches under one directory. This module verifies a
//! [`protogen_core::Composed`] stack — every *machine level* `jm` hosts
//! `counts[jm]` nodes, each running the cache side of protocol level `jm`
//! against its parent's directory, while (for `jm ≥ 1`) also hosting the
//! directory of protocol level `jm - 1` for its own children. The cache
//! side of level N *is* the directory side of level N+1.
//!
//! The glue between levels is never hand-specified; it is synthesized here
//! from the [`protogen_core::GlueSpec`] needed-permission table:
//!
//! * **acquire** (outer-miss → inner-request forwarding): a request into
//!   an inner directory is deliverable only while the hosting node's
//!   *outer* block is in a stable state with at least the needed
//!   permission; while it is not, the hosting node issues the
//!   corresponding access (`Store` under the exclusive-at-parent
//!   discipline) on its outer machine;
//! * **release** (copy draining): a forward-class outer message into a
//!   node is deliverable only once the node's inner subnet holds no data —
//!   no child block and no in-flight inner message carries a value — so a
//!   parent never gives up permission its children still use;
//! * **writeback** (inner-eviction → outer-writeback): a node whose inner
//!   subnet is fully quiescent may issue `Replacement` on its outer
//!   machine, carrying the (synced) data back out.
//!
//! Parents are *data-transparent*: the ghost-memory discipline — store
//! values cycle through the domain, the data-value invariant compares
//! copies against the latest store — applies at machine level 0 (the
//! leaves) only. A parent performing its glue `Store` keeps the data value
//! delivered by the outer protocol instead of minting a new one, and data
//! is synced between a node's outer block and its inner directory in both
//! directions, so a value written by a leaf in one subnet flows up through
//! writebacks and back down into another subnet unchanged. SWMR is checked
//! per level (it is a per-protocol invariant); data-value and load-hit
//! checks are leaf-only.
//!
//! Symmetry reduction uses the *wreath product* of per-level sibling
//! permutations: children may be permuted within a parent and parents
//! within their own level (children moving with them), but never across
//! subtrees. Canonicalization is an exact minimum over the whole group
//! (bounded; falls back to no reduction past [`MAX_GROUP`]), so — like the
//! flat checker's exact sweep — the orbit partition is exact and a
//! one-level composition visits exactly as many canonical states as the
//! flat checker at the same cache count (pinned by the conformance tests).

use crate::explore::{exec_violation, Violation, ViolationKind};
use crate::property::PropertySet;
use crate::store::fingerprint_bytes;
use protogen_core::Composed;
use protogen_runtime::{
    apply_into, select_arc_indexed, ApplyOutcome, CacheBlock, DirEntry, FsmIndex, MachineCtx, Msg,
    NodeId, Val,
};
use protogen_spec::{Access, Event, Fsm, FsmStateId, MsgClass, Perm};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Largest wreath-product group the canonicalizer sweeps exactly; stacks
/// whose group is bigger run without symmetry reduction. 8! covers every
/// single-level system the flat checker handles and all the bundled
/// compositions (2×2 MSI-under-MSI has a group of 8).
pub const MAX_GROUP: usize = 40_320;

/// Hierarchical checker configuration. Channel ordering is per level —
/// taken from each level's SSP — so it is not configured here.
#[derive(Debug, Clone)]
pub struct HierConfig {
    /// Abort exploration after this many canonical states.
    pub max_states: usize,
    /// Store values cycle through `0..value_domain` (leaf stores only;
    /// parents are data-transparent).
    pub value_domain: u8,
    /// Error out when any subnet channel exceeds this length.
    pub channel_cap: usize,
    /// Which built-in properties to enforce. `swmr`/`single_writer` are
    /// checked per level; `data_value` at the leaves; `deadlock_free`
    /// with glue issues and copy-draining evictions counted as progress.
    pub properties: PropertySet,
    /// Canonicalize under the per-level sibling permutation group.
    pub symmetry: bool,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            max_states: 20_000_000,
            value_domain: 2,
            channel_cap: 8,
            properties: PropertySet::sc(),
            symmetry: true,
        }
    }
}

/// One protocol level at runtime.
struct LevelRt {
    label: String,
    fanout: usize,
    ordered: bool,
    cache_fsm: Fsm,
    dir_fsm: Fsm,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
    /// Message class by `MsgId`, for glue gating.
    classes: Vec<MsgClass>,
    /// Needed outer permission by `MsgId` — `None` for the root level,
    /// whose directory is never gated.
    needed: Option<Vec<Perm>>,
}

/// A complete configuration of the leveled system (one explored state).
///
/// Indexing: `caches[jm][g]` is the outer block of machine-level-`jm` node
/// `g`; `dirs[j][p]` is the directory of protocol level `j` serving subnet
/// `p` (hosted by machine-level-`j+1` node `p`); `chans[j][p][src][dst]`
/// is the subnet-local FIFO, where ids `0..fanout` are the children and
/// `fanout` is the directory.
#[derive(Debug, PartialEq, Eq)]
pub struct HierState {
    /// Outer cache blocks per machine level.
    pub caches: Vec<Vec<CacheBlock>>,
    /// Directory entries per protocol level.
    pub dirs: Vec<Vec<DirEntry>>,
    /// Subnet channels per protocol level.
    pub chans: Vec<Vec<Vec<Vec<Vec<Msg>>>>>,
    /// Ghost memory: the value of the most recent *leaf* store.
    pub ghost: Val,
}

impl Clone for HierState {
    fn clone(&self) -> Self {
        HierState {
            caches: self.caches.clone(),
            dirs: self.dirs.clone(),
            chans: self.chans.clone(),
            ghost: self.ghost,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.caches.clone_from(&src.caches);
        self.dirs.clone_from(&src.dirs);
        self.chans.clone_from(&src.chans);
        self.ghost = src.ghost;
    }
}

impl HierState {
    /// Total in-flight messages across every subnet.
    pub fn messages_in_flight(&self) -> usize {
        self.chans.iter().flatten().flatten().flatten().map(|q| q.len()).sum()
    }

    /// Whether any node at any level has an outstanding transaction.
    pub fn has_pending_access(&self) -> bool {
        self.caches.iter().flatten().any(|c| c.pending.is_some())
    }
}

/// One step of the leveled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HStep {
    /// Deliver `chans[level][parent][src][dst][idx]`.
    Deliver {
        /// Protocol level of the subnet.
        level: u8,
        /// Subnet (= hosting parent) index.
        parent: u8,
        /// Subnet-local source id.
        src: u8,
        /// Subnet-local destination id (`fanout` = the directory).
        dst: u8,
        /// Queue position.
        idx: u8,
    },
    /// Node `node` at machine level `mlevel` issues `access` on its outer
    /// cache machine. Leaf issues model core accesses; parent issues are
    /// glue (acquire/writeback).
    Issue {
        /// Machine level of the issuing node.
        mlevel: u8,
        /// Node index within the level.
        node: u8,
        /// The access issued.
        access: Access,
    },
}

impl fmt::Display for HStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HStep::Deliver { level, parent, src, dst, idx } => {
                write!(f, "deliver L{level}/p{parent}: n{src} -> n{dst} [{idx}]")
            }
            HStep::Issue { mlevel, node, access } => {
                write!(f, "node L{mlevel}.{node} issues {access:?}")
            }
        }
    }
}

/// One element of the wreath-product symmetry group: a node-index map per
/// machine level (the root's is trivially `[0]`), with children always
/// moving with their parents.
struct HierPerm {
    /// `maps[jm][old] = new` node index at machine level `jm`.
    maps: Vec<Vec<u8>>,
    /// `invs[jm][new] = old`.
    invs: Vec<Vec<u8>>,
}

/// Outcome of a hierarchical checking run.
#[derive(Debug, Clone)]
pub struct HierResult {
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// The first violation in deterministic BFS order, if any.
    pub violation: Option<Violation>,
    /// Whether the state budget stopped exploration early.
    pub hit_state_limit: bool,
    /// Wall-clock seconds spent exploring.
    pub seconds: f64,
}

impl HierResult {
    /// Whether the stack passed every check over the whole space.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.hit_state_limit
    }
}

/// Explicit-state checker for a composed protocol stack.
pub struct HierChecker {
    levels: Vec<LevelRt>,
    /// Node count per machine level (`counts[depth()] == 1`, the root).
    counts: Vec<usize>,
    cfg: HierConfig,
    perms: Vec<HierPerm>,
}

impl HierChecker {
    /// Builds a checker for `composed` under `cfg`.
    pub fn new(composed: &Composed, cfg: HierConfig) -> Self {
        let k = composed.depth();
        let levels: Vec<LevelRt> = composed
            .levels
            .iter()
            .enumerate()
            .map(|(j, l)| {
                let g = &l.generated;
                LevelRt {
                    label: l.label.clone(),
                    fanout: l.fanout,
                    ordered: g.ssp.network_ordered,
                    cache_idx: FsmIndex::new(&g.cache),
                    dir_idx: FsmIndex::new(&g.directory),
                    cache_fsm: g.cache.clone(),
                    dir_fsm: g.directory.clone(),
                    classes: g.ssp.messages.iter().map(|m| m.class).collect(),
                    needed: (j + 1 < k).then(|| composed.glue[j].needed_perm.clone()),
                }
            })
            .collect();
        let counts: Vec<usize> = (0..=k).map(|jm| composed.node_count(jm)).collect();
        let perms = if cfg.symmetry {
            wreath_group(&levels, &counts).unwrap_or_else(|| vec![identity_perm(&counts)])
        } else {
            vec![identity_perm(&counts)]
        };
        HierChecker { levels, counts, cfg, perms }
    }

    /// Number of protocol levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Node counts per machine level, leaves first (the last entry is the
    /// root's 1).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Size of the symmetry group actually in use (1 when reduction is off
    /// or the group exceeded [`MAX_GROUP`]).
    pub fn group_size(&self) -> usize {
        self.perms.len()
    }

    /// Cache counts per machine level paired with each level's subnet
    /// shape `(parents, fanout)` — the topology the delta store's section
    /// map is derived from.
    pub fn topology(&self) -> (Vec<usize>, Vec<(usize, usize)>) {
        let k = self.depth();
        let caches = self.counts[..k].to_vec();
        let subnets = (0..k).map(|j| (self.counts[j + 1], self.levels[j].fanout)).collect();
        (caches, subnets)
    }

    /// The delta-compression section layout of this stack's encodings.
    pub fn section_map(&self) -> crate::delta::SectionMap {
        let (caches, subnets) = self.topology();
        crate::delta::SectionMap::leveled(&caches, &subnets)
    }

    /// The initial state: every block invalid, every directory initial
    /// holding value 0, no messages.
    pub fn initial(&self) -> HierState {
        let k = self.depth();
        HierState {
            caches: (0..k).map(|jm| vec![CacheBlock::new(); self.counts[jm]]).collect(),
            dirs: (0..k).map(|j| vec![DirEntry::new(0); self.counts[j + 1]]).collect(),
            chans: (0..k)
                .map(|j| {
                    let total = self.levels[j].fanout + 1;
                    vec![vec![vec![Vec::new(); total]; total]; self.counts[j + 1]]
                })
                .collect(),
            ghost: 0,
        }
    }

    /// The node's effective outer permission for glue gating: its stable
    /// permission, or `None` while in a transient state. Gating on stable
    /// states only keeps children from being granted copies mid-parent-
    /// transaction.
    fn eff_perm(&self, s: &HierState, jm: usize, node: usize) -> Perm {
        let st = self.levels[jm].cache_fsm.state(s.caches[jm][node].state);
        if st.is_stable() {
            st.perm
        } else {
            Perm::None
        }
    }

    /// Whether any data lives in the subnet of protocol level `j` under
    /// parent `p` — in a child block or in any in-flight message. One
    /// level down suffices: a node only drops its own data after its own
    /// subnet drained, so "child data-free" implies "subtree data-free".
    fn has_copies(&self, s: &HierState, j: usize, p: usize) -> bool {
        let f = self.levels[j].fanout;
        s.caches[j][p * f..(p + 1) * f].iter().any(|c| c.data.is_some())
            || s.chans[j][p].iter().flatten().flatten().any(|m| m.data.is_some())
    }

    /// Whether node `node` (machine level `jm ≥ 1`) may write its line
    /// back out: every child block back to initial, no in-flight inner
    /// message, and its inner directory stable with no owner or sharers.
    fn inner_quiescent(&self, s: &HierState, jm: usize, node: usize) -> bool {
        let j = jm - 1;
        let f = self.levels[j].fanout;
        let initial = CacheBlock::new();
        let dir = &s.dirs[j][node];
        s.caches[j][node * f..(node + 1) * f].iter().all(|c| *c == initial)
            && s.chans[j][node].iter().flatten().all(|q| q.is_empty())
            && self.levels[j].dir_fsm.state(dir.state).is_stable()
            && dir.owner.is_none()
            && dir.sharers == 0
            && dir.chain_slots.is_empty()
    }

    /// All candidate steps from `state`, in canonical order: deliveries by
    /// `(level, parent, src, dst, idx)`, then leaf accesses by
    /// `(node, access)`, then glue issues by `(mlevel, node)`. A pure
    /// function of `state`, so traces are identical run to run. For a
    /// one-level composition this is exactly the flat checker's order.
    fn steps_into(&self, s: &HierState, out: &mut Vec<HStep>) {
        out.clear();
        let k = self.depth();
        for j in 0..k {
            let lvl = &self.levels[j];
            let total = lvl.fanout + 1;
            for p in 0..self.counts[j + 1] {
                for src in 0..total {
                    for dst in 0..total {
                        let q = &s.chans[j][p][src][dst];
                        if q.is_empty() {
                            continue;
                        }
                        let last = if lvl.ordered { 1 } else { q.len() };
                        for idx in 0..last {
                            out.push(HStep::Deliver {
                                level: j as u8,
                                parent: p as u8,
                                src: src as u8,
                                dst: dst as u8,
                                idx: idx as u8,
                            });
                        }
                    }
                }
            }
        }
        for node in 0..self.counts[0] {
            for access in Access::ALL {
                out.push(HStep::Issue { mlevel: 0, node: node as u8, access });
            }
        }
        // Glue issues: acquires for gated inner requests, writebacks for
        // quiescent subnets. One outstanding outer transaction per node.
        for jm in 1..k {
            let j = jm - 1;
            let f = self.levels[j].fanout;
            let needed = self.levels[j].needed.as_ref().expect("non-root level has glue");
            for node in 0..self.counts[jm] {
                let block = &s.caches[jm][node];
                if block.pending.is_some() {
                    continue;
                }
                let eff = self.eff_perm(s, jm, node);
                let (mut want_load, mut want_store) = (false, false);
                for src in 0..=f {
                    for m in &s.chans[j][node][src][f] {
                        if self.levels[j].classes[m.mtype.as_usize()] != MsgClass::Request {
                            continue;
                        }
                        match needed[m.mtype.as_usize()] {
                            need if need <= eff => {}
                            Perm::Read => want_load = true,
                            Perm::ReadWrite => want_store = true,
                            Perm::None => {}
                        }
                    }
                }
                if want_load {
                    out.push(HStep::Issue {
                        mlevel: jm as u8,
                        node: node as u8,
                        access: Access::Load,
                    });
                }
                if want_store {
                    out.push(HStep::Issue {
                        mlevel: jm as u8,
                        node: node as u8,
                        access: Access::Store,
                    });
                }
                let st = self.levels[jm].cache_fsm.state(block.state);
                if st.is_stable()
                    && block.state != FsmStateId(0)
                    && self.inner_quiescent(s, jm, node)
                {
                    out.push(HStep::Issue {
                        mlevel: jm as u8,
                        node: node as u8,
                        access: Access::Replacement,
                    });
                }
            }
        }
    }

    /// Computes the successor of `state` for `step` into the scratch state
    /// `succ`. Returns `Ok(false)` when the step is not enabled — gated by
    /// glue, stalled, absent arc, busy node — and `succ` is garbage then.
    fn successor_into(
        &self,
        state: &HierState,
        step: HStep,
        succ: &mut HierState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        match step {
            HStep::Deliver { level, parent, src, dst, idx } => self.deliver_into(
                state,
                level as usize,
                parent as usize,
                src as usize,
                dst as usize,
                idx as usize,
                succ,
                outcome,
            ),
            HStep::Issue { mlevel, node, access } => {
                self.issue_into(state, mlevel as usize, node as usize, access, succ, outcome)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_into(
        &self,
        state: &HierState,
        j: usize,
        p: usize,
        src: usize,
        dst: usize,
        idx: usize,
        succ: &mut HierState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        let lvl = &self.levels[j];
        let f = lvl.fanout;
        let msg = state.chans[j][p][src][dst][idx];
        let event = Event::Msg(msg.mtype);
        let k = self.depth();
        if dst == f {
            // Into the level-j directory, hosted by machine-level-(j+1)
            // node p. Acquire gating: below the root, a request needs the
            // hosting node to hold enough outer permission.
            if j + 1 < k
                && lvl.classes[msg.mtype.as_usize()] == MsgClass::Request
                && lvl.needed.as_ref().expect("non-root level has glue")[msg.mtype.as_usize()]
                    > self.eff_perm(state, j + 1, p)
            {
                return Ok(false);
            }
            let entry = &state.dirs[j][p];
            let arc = select_arc_indexed(
                &lvl.dir_fsm,
                &lvl.dir_idx,
                entry.state,
                event,
                Some(&msg),
                None,
                Some(entry),
            );
            let Some(arc) = arc else {
                return Err(ViolationKind::UnexpectedMessage(format!(
                    "{msg} at {} directory p{p} in {}",
                    lvl.label,
                    lvl.dir_fsm.state(entry.state).full_name()
                )));
            };
            if arc.kind == protogen_spec::ArcKind::Stall {
                return Ok(false);
            }
            succ.clone_from(state);
            succ.chans[j][p][src][dst].remove(idx);
            let pre_dir_data = state.dirs[j][p].data;
            apply_into(
                &lvl.dir_fsm,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut succ.dirs[j][p], self_id: NodeId(f as u8) },
                (state.ghost + 1) % self.cfg.value_domain,
                outcome,
            )
            .map_err(exec_violation)?;
            // Writebacks landing in the directory refresh the hosting
            // node's outer copy, so the value rides outer evictions and
            // forwards unchanged.
            if j + 1 < k
                && succ.dirs[j][p].data != pre_dir_data
                && succ.caches[j + 1][p].data.is_some()
            {
                succ.caches[j + 1][p].data = Some(succ.dirs[j][p].data);
            }
            self.route(succ, j, p, outcome)?;
            Ok(true)
        } else {
            // Into the cache side of machine-level-j node g. Release
            // gating: a forward must wait until g's inner subnet holds no
            // data.
            let g = p * f + dst;
            if j >= 1
                && lvl.classes[msg.mtype.as_usize()] == MsgClass::Forward
                && self.has_copies(state, j - 1, g)
            {
                return Ok(false);
            }
            let block = &state.caches[j][g];
            let arc = select_arc_indexed(
                &lvl.cache_fsm,
                &lvl.cache_idx,
                block.state,
                event,
                Some(&msg),
                Some(block),
                None,
            );
            let Some(arc) = arc else {
                return Err(ViolationKind::UnexpectedMessage(format!(
                    "{msg} at node L{j}.{g} in {}",
                    lvl.cache_fsm.state(block.state).full_name()
                )));
            };
            if arc.kind == protogen_spec::ArcKind::Stall {
                return Ok(false);
            }
            succ.clone_from(state);
            succ.chans[j][p][src][dst].remove(idx);
            let store_value = (state.ghost + 1) % self.cfg.value_domain;
            let pre_data = state.caches[j][g].data;
            apply_into(
                &lvl.cache_fsm,
                arc,
                Some(&msg),
                MachineCtx::Cache {
                    block: &mut succ.caches[j][g],
                    self_id: NodeId(dst as u8),
                    dir_id: NodeId(f as u8),
                },
                if j == 0 { store_value } else { state.ghost },
                outcome,
            )
            .map_err(exec_violation)?;
            if j == 0 {
                if let Some((Access::Store, _)) = outcome.performed {
                    succ.ghost = store_value;
                }
            } else {
                // Data-transparent parent: a completed glue Store keeps
                // the value the outer protocol delivered instead of the
                // minted store value, and never advances the ghost.
                let blk = &mut succ.caches[j][g];
                if let Some((Access::Store, _)) = outcome.performed {
                    blk.data = msg.data.or(pre_data);
                }
                if blk.data != pre_data {
                    if let Some(v) = blk.data {
                        succ.dirs[j - 1][g].data = v;
                    }
                }
            }
            self.route(succ, j, p, outcome)?;
            Ok(true)
        }
    }

    fn issue_into(
        &self,
        state: &HierState,
        jm: usize,
        node: usize,
        access: Access,
        succ: &mut HierState,
        outcome: &mut ApplyOutcome,
    ) -> Result<bool, ViolationKind> {
        let lvl = &self.levels[jm];
        let f = lvl.fanout;
        let block = &state.caches[jm][node];
        let arc = select_arc_indexed(
            &lvl.cache_fsm,
            &lvl.cache_idx,
            block.state,
            Event::Access(access),
            None,
            Some(block),
            None,
        );
        let Some(arc) = arc else { return Ok(false) };
        if arc.kind == protogen_spec::ArcKind::Stall {
            return Ok(false);
        }
        let is_hit = arc.actions.iter().any(|a| matches!(a, protogen_spec::Action::PerformAccess));
        if !is_hit && block.pending.is_some() {
            // One outstanding transaction per block per node (§V-F).
            return Ok(false);
        }
        succ.clone_from(state);
        let (local, parent) = (node % f, node / f);
        let store_value = (state.ghost + 1) % self.cfg.value_domain;
        let pre_data = block.data;
        apply_into(
            &lvl.cache_fsm,
            arc,
            None,
            MachineCtx::Cache {
                block: &mut succ.caches[jm][node],
                self_id: NodeId(local as u8),
                dir_id: NodeId(f as u8),
            },
            if jm == 0 { store_value } else { state.ghost },
            outcome,
        )
        .map_err(exec_violation)?;
        if jm == 0 {
            match outcome.performed {
                Some((Access::Store, _)) => succ.ghost = store_value,
                Some((Access::Load, Some(v)))
                    if self.cfg.properties.data_value && v != state.ghost =>
                {
                    return Err(ViolationKind::DataValue(format!(
                        "leaf node L0.{node} load hit returned {v}, expected {}",
                        state.ghost
                    )));
                }
                _ => {}
            }
        } else {
            let blk = &mut succ.caches[jm][node];
            if let Some((Access::Store, _)) = outcome.performed {
                blk.data = pre_data;
            }
            if blk.data != pre_data {
                if let Some(v) = blk.data {
                    succ.dirs[jm - 1][node].data = v;
                }
            }
        }
        self.route(succ, jm, parent, outcome)?;
        Ok(true)
    }

    /// Injects the outcome's outgoing messages into the acting machine's
    /// subnet, checking the capacity bound.
    fn route(
        &self,
        succ: &mut HierState,
        j: usize,
        p: usize,
        outcome: &ApplyOutcome,
    ) -> Result<(), ViolationKind> {
        for i in 0..outcome.outgoing.len() {
            let m = outcome.outgoing[i];
            let q = &mut succ.chans[j][p][m.src.as_usize()][m.dst.as_usize()];
            q.push(m);
            if q.len() > self.cfg.channel_cap {
                return Err(ViolationKind::ChannelOverflow(format!(
                    "channel L{j}/p{p} n{}→n{} exceeded {}",
                    m.src.0, m.dst.0, self.cfg.channel_cap
                )));
            }
        }
        Ok(())
    }

    /// State-level properties: per-level SWMR / single-writer, leaf-level
    /// data-value.
    fn check_state(&self, s: &HierState) -> Option<ViolationKind> {
        let props = &self.cfg.properties;
        if props.swmr || props.single_writer {
            for (jm, lvl) in self.levels.iter().enumerate() {
                let mut writer: Option<usize> = None;
                let mut reader: Option<usize> = None;
                for (i, c) in s.caches[jm].iter().enumerate() {
                    match lvl.cache_fsm.state(c.state).perm {
                        Perm::ReadWrite => {
                            if let Some(w) = writer {
                                return Some(ViolationKind::Swmr(format!(
                                    "level {} nodes {w} and {i} both hold write permission",
                                    lvl.label
                                )));
                            }
                            writer = Some(i);
                        }
                        Perm::Read => reader = Some(i),
                        Perm::None => {}
                    }
                }
                if props.swmr {
                    if let (Some(w), Some(r)) = (writer, reader) {
                        return Some(ViolationKind::Swmr(format!(
                            "level {} node {w} holds write permission while {r} holds read \
                             permission",
                            lvl.label
                        )));
                    }
                }
            }
        }
        if props.data_value {
            let fsm = &self.levels[0].cache_fsm;
            for (i, c) in s.caches[0].iter().enumerate() {
                let st = fsm.state(c.state);
                if st.is_stable()
                    && st.perm >= Perm::Read
                    && st.data_valid
                    && c.data != Some(s.ghost)
                {
                    return Some(ViolationKind::DataValue(format!(
                        "leaf node L0.{i} in {} holds {:?}, expected {}",
                        st.full_name(),
                        c.data,
                        s.ghost
                    )));
                }
            }
        }
        None
    }

    /// Streams the byte encoding of the state under `perm` into `sink`.
    /// Sections are laid out exactly like the flat encoding — all cache
    /// blocks (levels leaf-first), then all directory entries, then all
    /// channels, then the ghost byte, with identical per-section byte
    /// formats — so the delta store's section map generalizes over both.
    fn encode_permuted(&self, s: &HierState, perm: &HierPerm, sink: &mut Vec<u8>) {
        let k = self.depth();
        for jm in 0..k {
            let f = self.levels[jm].fanout;
            for g2 in 0..self.counts[jm] {
                let g = perm.invs[jm][g2] as usize;
                let p = g / f;
                let map_local = |id: NodeId| -> u8 {
                    let c = id.as_usize();
                    if c < f {
                        perm.maps[jm][p * f + c] % f as u8
                    } else {
                        id.0
                    }
                };
                let c = &s.caches[jm][g];
                let state = u16::try_from(c.state.0).expect("state id exceeds u16");
                sink.extend_from_slice(&state.to_le_bytes());
                sink.push(c.data.map_or(0xff, |v| v));
                sink.push(c.acks_received);
                sink.push(c.acks_expected.map_or(0xff, |v| v));
                sink.push(match c.pending {
                    None => 0xff,
                    Some(Access::Load) => 0,
                    Some(Access::Store) => 1,
                    Some(Access::Replacement) => 2,
                });
                sink.push(c.chain_slots.len() as u8);
                for (nid, a) in &c.chain_slots {
                    sink.push(map_local(*nid));
                    sink.push(*a);
                }
            }
        }
        for j in 0..k {
            let f = self.levels[j].fanout;
            for p2 in 0..self.counts[j + 1] {
                let p = perm.invs[j + 1][p2] as usize;
                let map_local = |id: NodeId| -> u8 {
                    let c = id.as_usize();
                    if c < f {
                        perm.maps[j][p * f + c] % f as u8
                    } else {
                        id.0
                    }
                };
                let dir = &s.dirs[j][p];
                let state = u16::try_from(dir.state.0).expect("state id exceeds u16");
                sink.extend_from_slice(&state.to_le_bytes());
                sink.push(dir.owner.map_or(0xff, &map_local));
                let mut sharers = 0u8;
                for c in 0..f {
                    if dir.sharers & (1 << c) != 0 {
                        sharers |= 1 << (perm.maps[j][p * f + c] % f as u8);
                    }
                }
                sink.push(sharers);
                sink.push(dir.data);
                sink.push(dir.chain_slots.len() as u8);
                for (nid, a) in &dir.chain_slots {
                    sink.push(map_local(*nid));
                    sink.push(*a);
                }
            }
        }
        for j in 0..k {
            let f = self.levels[j].fanout;
            for p2 in 0..self.counts[j + 1] {
                let p = perm.invs[j + 1][p2] as usize;
                let map_local = |id: NodeId| -> u8 {
                    let c = id.as_usize();
                    if c < f {
                        perm.maps[j][p * f + c] % f as u8
                    } else {
                        id.0
                    }
                };
                let inv_local = |c2: usize| -> usize {
                    if c2 < f {
                        perm.invs[j][p2 * f + c2] as usize % f
                    } else {
                        c2
                    }
                };
                for s2 in 0..=f {
                    let src = inv_local(s2);
                    for d2 in 0..=f {
                        let dst = inv_local(d2);
                        let q = &s.chans[j][p][src][dst];
                        sink.push(q.len() as u8);
                        for m in q {
                            sink.extend_from_slice(&m.mtype.0.to_le_bytes());
                            sink.push(map_local(m.src));
                            sink.push(map_local(m.dst));
                            sink.push(map_local(m.req));
                            sink.push(m.ack_count.map_or(0xff, |v| v));
                            sink.push(m.data.map_or(0xff, |v| v));
                        }
                    }
                }
            }
        }
        sink.push(s.ghost);
    }

    /// Decodes an identity-permutation encoding back into `s`.
    fn decode_into(&self, bytes: &[u8], s: &mut HierState) {
        let mut pos = 0usize;
        let next = |pos: &mut usize| {
            let b = bytes[*pos];
            *pos += 1;
            b
        };
        let opt = |b: u8| if b == 0xff { None } else { Some(b) };
        let k = self.depth();
        for jm in 0..k {
            for g in 0..self.counts[jm] {
                let c = &mut s.caches[jm][g];
                let lo = next(&mut pos);
                let hi = next(&mut pos);
                c.state = FsmStateId(u16::from_le_bytes([lo, hi]) as u32);
                c.data = opt(next(&mut pos));
                c.acks_received = next(&mut pos);
                c.acks_expected = opt(next(&mut pos));
                c.pending = match next(&mut pos) {
                    0xff => None,
                    0 => Some(Access::Load),
                    1 => Some(Access::Store),
                    2 => Some(Access::Replacement),
                    // SAFETY OF THE PANIC: this decoder is private to the
                    // hierarchical checker and only ever fed encodings it
                    // produced itself in the same process (the hier tier
                    // has no checkpoint/disk path), so a bad byte is a
                    // checker bug, not an input condition.
                    b => panic!("bad pending-access byte {b}"),
                };
                let slots = next(&mut pos);
                c.chain_slots.clear();
                for _ in 0..slots {
                    let nid = NodeId(next(&mut pos));
                    let a = next(&mut pos);
                    c.chain_slots.push((nid, a));
                }
            }
        }
        for j in 0..k {
            for p in 0..self.counts[j + 1] {
                let dir = &mut s.dirs[j][p];
                let lo = next(&mut pos);
                let hi = next(&mut pos);
                dir.state = FsmStateId(u16::from_le_bytes([lo, hi]) as u32);
                dir.owner = opt(next(&mut pos)).map(NodeId);
                dir.sharers = next(&mut pos);
                dir.data = next(&mut pos);
                let slots = next(&mut pos);
                dir.chain_slots.clear();
                for _ in 0..slots {
                    let nid = NodeId(next(&mut pos));
                    let a = next(&mut pos);
                    dir.chain_slots.push((nid, a));
                }
            }
        }
        for j in 0..k {
            let f = self.levels[j].fanout;
            for p in 0..self.counts[j + 1] {
                for src in 0..=f {
                    for dst in 0..=f {
                        let q = &mut s.chans[j][p][src][dst];
                        q.clear();
                        let len = next(&mut pos);
                        for _ in 0..len {
                            let lo = next(&mut pos);
                            let hi = next(&mut pos);
                            q.push(Msg {
                                mtype: protogen_spec::MsgId(u16::from_le_bytes([lo, hi])),
                                src: NodeId(next(&mut pos)),
                                dst: NodeId(next(&mut pos)),
                                req: NodeId(next(&mut pos)),
                                ack_count: opt(next(&mut pos)),
                                data: opt(next(&mut pos)),
                            });
                        }
                    }
                }
            }
        }
        s.ghost = next(&mut pos);
        assert_eq!(pos, bytes.len(), "trailing bytes after a complete state decode");
    }

    /// The canonical (minimum over the symmetry group) encoding of `s`,
    /// left in `best`. Exact: every group element is swept.
    fn canonical_into(&self, s: &HierState, best: &mut Vec<u8>, cur: &mut Vec<u8>) {
        best.clear();
        self.encode_permuted(s, &self.perms[0], best);
        for perm in &self.perms[1..] {
            cur.clear();
            self.encode_permuted(s, perm, cur);
            if *cur < *best {
                std::mem::swap(best, cur);
            }
        }
    }

    /// Runs breadth-first exploration until exhaustion, a violation, or
    /// the state limit. Single-threaded and fully deterministic.
    pub fn check(&self) -> HierResult {
        let start = Instant::now();
        let mut encs: Vec<Vec<u8>> = Vec::new();
        let mut meta: Vec<(u32, Option<HStep>)> = Vec::new();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut best = Vec::new();
        let mut cur = Vec::new();
        let mut state = self.initial();
        let mut succ = self.initial();
        let mut outcome = ApplyOutcome::default();
        let mut steps_buf: Vec<HStep> = Vec::new();
        let mut transitions = 0usize;
        let mut violation: Option<Violation> = None;
        let mut hit_limit = false;

        self.canonical_into(&self.initial(), &mut best, &mut cur);
        buckets.insert(fingerprint_bytes(&best), vec![0]);
        encs.push(best.clone());
        meta.push((0, None));

        let mut at = 0usize;
        'outer: while at < encs.len() {
            self.decode_into(&encs[at], &mut state);
            self.steps_into(&state, &mut steps_buf);
            let mut progress = false;
            let k = self.depth();
            for &step in &steps_buf {
                match self.successor_into(&state, step, &mut succ, &mut outcome) {
                    Err(kind) => {
                        violation = Some(self.build_violation(&meta, at, Some(step), kind));
                        break 'outer;
                    }
                    Ok(false) => {}
                    Ok(true) => {
                        match step {
                            HStep::Deliver { .. } => progress = true,
                            HStep::Issue { mlevel, node, access } if k > 1 => {
                                // Glue issues unblock gated work; so does a
                                // leaf eviction draining a copy a gated
                                // forward waits on. Fresh leaf demands
                                // only add transactions.
                                if mlevel >= 1
                                    || (access == Access::Replacement
                                        && state.caches[0][node as usize].data.is_some())
                                {
                                    progress = true;
                                }
                            }
                            HStep::Issue { .. } => {}
                        }
                        transitions += 1;
                        if let Some(kind) = self.check_state(&succ) {
                            violation = Some(self.build_violation(&meta, at, Some(step), kind));
                            break 'outer;
                        }
                        self.canonical_into(&succ, &mut best, &mut cur);
                        let fp = fingerprint_bytes(&best);
                        let bucket = buckets.entry(fp).or_default();
                        if !bucket.iter().any(|&i| encs[i as usize] == best) {
                            bucket.push(encs.len() as u32);
                            encs.push(best.clone());
                            meta.push((at as u32, Some(step)));
                        }
                    }
                }
            }
            if !progress
                && self.cfg.properties.deadlock_free
                && (state.messages_in_flight() > 0 || state.has_pending_access())
            {
                violation = Some(self.build_violation(&meta, at, None, ViolationKind::Deadlock));
                break;
            }
            at += 1;
            if encs.len() >= self.cfg.max_states {
                hit_limit = true;
                break;
            }
        }

        HierResult {
            states: encs.len(),
            transitions,
            violation,
            hit_state_limit: hit_limit,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn build_violation(
        &self,
        meta: &[(u32, Option<HStep>)],
        at: usize,
        last: Option<HStep>,
        kind: ViolationKind,
    ) -> Violation {
        let mut steps = Vec::new();
        let mut i = at;
        while let (parent, Some(step)) = meta[i] {
            steps.push(step.to_string());
            i = parent as usize;
        }
        steps.reverse();
        if let Some(step) = last {
            steps.push(step.to_string());
        }
        steps.push(format!("=> {kind}"));
        Violation { kind, trace: steps }
    }

    /// A breadth-first sample of reachable canonical encodings (`limit`
    /// states in deterministic BFS order), for the delta-store property
    /// tests. Violating or disabled successors are skipped.
    pub fn sample_encodings(&self, limit: usize) -> Vec<Vec<u8>> {
        let mut encs: Vec<Vec<u8>> = Vec::new();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut best = Vec::new();
        let mut cur = Vec::new();
        let mut state = self.initial();
        let mut succ = self.initial();
        let mut outcome = ApplyOutcome::default();
        let mut steps_buf: Vec<HStep> = Vec::new();
        self.canonical_into(&self.initial(), &mut best, &mut cur);
        buckets.insert(fingerprint_bytes(&best), vec![0]);
        encs.push(best.clone());
        let mut at = 0usize;
        while at < encs.len() && encs.len() < limit {
            self.decode_into(&encs[at], &mut state);
            self.steps_into(&state, &mut steps_buf);
            for &step in &steps_buf {
                if encs.len() >= limit {
                    break;
                }
                if let Ok(true) = self.successor_into(&state, step, &mut succ, &mut outcome) {
                    if self.check_state(&succ).is_some() {
                        continue;
                    }
                    self.canonical_into(&succ, &mut best, &mut cur);
                    let fp = fingerprint_bytes(&best);
                    let bucket = buckets.entry(fp).or_default();
                    if !bucket.iter().any(|&i| encs[i as usize] == best) {
                        bucket.push(encs.len() as u32);
                        encs.push(best.clone());
                    }
                }
            }
            at += 1;
        }
        encs
    }
}

fn identity_perm(counts: &[usize]) -> HierPerm {
    let maps: Vec<Vec<u8>> = counts.iter().map(|&n| (0..n as u8).collect()).collect();
    HierPerm { invs: maps.clone(), maps }
}

/// Permutations of `0..n` (fanouts are at most 8).
fn local_perms(n: usize) -> Vec<Vec<u8>> {
    crate::system::permutations(n)
}

/// The wreath-product group over the stack's topology: for each machine
/// level below the root, independently permute the children of every
/// parent, composing with the parent's own (already chosen) new position.
/// `None` when the group exceeds [`MAX_GROUP`].
fn wreath_group(levels: &[LevelRt], counts: &[usize]) -> Option<Vec<HierPerm>> {
    let k = levels.len();
    let mut size = 1usize;
    for jm in 0..k {
        let f = levels[jm].fanout;
        let fact: usize = (1..=f).product();
        for _ in 0..counts[jm + 1] {
            size = size.checked_mul(fact)?;
            if size > MAX_GROUP {
                return None;
            }
        }
    }
    // Partial maps, root-first: start with the trivial root map and extend
    // downward one machine level at a time.
    let mut partials: Vec<Vec<Vec<u8>>> = vec![vec![vec![0]]];
    for jm in (0..k).rev() {
        let f = levels[jm].fanout;
        let sigmas = local_perms(f);
        let mut next: Vec<Vec<Vec<u8>>> = Vec::new();
        for partial in &partials {
            // partial[0] is the map for machine level jm+1.
            let parent_map = &partial[0];
            // One sibling permutation choice per parent: iterate the
            // cartesian product via a mixed-radix counter.
            let parents = counts[jm + 1];
            let mut choice = vec![0usize; parents];
            loop {
                let mut map = vec![0u8; counts[jm]];
                for (p, &ci) in choice.iter().enumerate() {
                    let sigma = &sigmas[ci];
                    for c in 0..f {
                        map[p * f + c] = parent_map[p] * f as u8 + sigma[c];
                    }
                }
                let mut ext = Vec::with_capacity(partial.len() + 1);
                ext.push(map);
                ext.extend(partial.iter().cloned());
                next.push(ext);
                // Advance the counter.
                let mut d = 0;
                loop {
                    if d == parents {
                        break;
                    }
                    choice[d] += 1;
                    if choice[d] < sigmas.len() {
                        break;
                    }
                    choice[d] = 0;
                    d += 1;
                }
                if d == parents {
                    break;
                }
            }
        }
        partials = next;
    }
    Some(
        partials
            .into_iter()
            .map(|maps| {
                let invs = maps.iter().map(|m| crate::system::invert(m)).collect();
                HierPerm { maps, invs }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{compose, GenConfig};
    use protogen_protocols::{flat_composition, msi_under_msi};

    fn checker(comp: &protogen_spec::Composition, cfg: HierConfig) -> HierChecker {
        let composed = compose(comp, &GenConfig::stalling()).unwrap();
        HierChecker::new(&composed, cfg)
    }

    #[test]
    fn wreath_group_size_matches_topology() {
        let hc = checker(&msi_under_msi(2, 2), HierConfig::default());
        // 2 sibling swaps per L2 subnet × 2 subnets × 1 swap of the L2s.
        assert_eq!(hc.group_size(), 8);
        assert_eq!(hc.counts(), &[4, 2, 1]);
    }

    #[test]
    fn encode_decode_round_trips() {
        let hc = checker(&msi_under_msi(2, 2), HierConfig::default());
        let encs = hc.sample_encodings(50);
        assert!(encs.len() > 10, "sampled only {}", encs.len());
        let mut s = hc.initial();
        let mut best = Vec::new();
        let mut cur = Vec::new();
        for enc in &encs {
            hc.decode_into(enc, &mut s);
            hc.canonical_into(&s, &mut best, &mut cur);
            assert_eq!(&best, enc, "canonical encodings must be decode-stable");
        }
    }

    #[test]
    fn symmetric_states_share_a_canonical_encoding() {
        let hc = checker(&msi_under_msi(2, 2), HierConfig::default());
        let mut a = hc.initial();
        a.caches[0][0].data = Some(1);
        let mut b = hc.initial();
        b.caches[0][3].data = Some(1);
        let (mut ba, mut bb, mut cur) = (Vec::new(), Vec::new(), Vec::new());
        hc.canonical_into(&a, &mut ba, &mut cur);
        hc.canonical_into(&b, &mut bb, &mut cur);
        assert_eq!(ba, bb);
        // But a leaf and an L2 holding data are NOT symmetric.
        let mut c = hc.initial();
        c.caches[1][0].data = Some(1);
        let mut bc = Vec::new();
        hc.canonical_into(&c, &mut bc, &mut cur);
        assert_ne!(ba, bc);
    }

    #[test]
    fn one_level_composition_checks_clean() {
        let comp = flat_composition("msi", 2).unwrap();
        let hc = checker(&comp, HierConfig::default());
        let res = hc.check();
        assert!(res.passed(), "{:?}", res.violation);
        assert!(res.states > 100);
    }
}
