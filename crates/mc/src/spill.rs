//! The spill tier: page-granular scratch files for cold frontier levels
//! and frozen visited-record segments.
//!
//! The crate is `forbid(unsafe_code)` and dependency-free, so instead of
//! an `mmap` window the spill tier uses the equivalent safe primitives:
//! sequential `write_all` of page-aligned chunks (the append pattern the
//! page cache streams at device speed) and positioned
//! [`std::os::unix::fs::FileExt::read_exact_at`] reads, which neither
//! move a shared cursor nor require `&mut` — exactly the random-access
//! read surface a read-only mapping would give, minus the pointer. Files
//! are created in a scratch directory and unlinked immediately on Unix
//! (the open handle keeps the storage alive, and a killed process leaks
//! nothing); on other platforms spilling is disabled by the explorer and
//! this module is inert. DESIGN.md §9 describes the policy layered on
//! top.

use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Spill granularity: chunks are padded to whole pages so every chunk
/// read/write is page-aligned at both ends.
pub(crate) const PAGE: u64 = 4096;

/// Whether this platform supports the spill tier (positioned reads).
pub(crate) const SPILL_SUPPORTED: bool = cfg!(unix);

/// Distinguishes concurrently created spill files within one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// One append-only scratch file of page-aligned chunks.
#[derive(Debug)]
pub(crate) struct SpillFile {
    file: File,
    /// Kept only where eager unlinking is unavailable; removed on drop.
    path: Option<PathBuf>,
    /// Current end of file (page-aligned).
    len: u64,
    /// Cumulative payload bytes appended (survives [`SpillFile::reset`]).
    written: u64,
    /// Cumulative chunks appended (survives [`SpillFile::reset`]).
    chunks: u64,
}

impl SpillFile {
    /// Creates a scratch file in `std::env::temp_dir()` with a unique,
    /// tagged name.
    pub fn create(tag: &str) -> io::Result<SpillFile> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("protogen-mc-{}-{seq}-{tag}.spill", std::process::id()));
        let file = File::options().read(true).write(true).create_new(true).open(&path)?;
        // Unlink eagerly where the open handle keeps the file alive, so
        // even a SIGKILLed run leaks no scratch space.
        let path =
            if cfg!(unix) && std::fs::remove_file(&path).is_ok() { None } else { Some(path) };
        Ok(SpillFile { file, path, len: 0, written: 0, chunks: 0 })
    }

    /// Appends `bytes` as one chunk, padding the file to the next page
    /// boundary, and returns the chunk's file offset.
    pub fn append_chunk(&mut self, bytes: &[u8]) -> io::Result<u64> {
        let off = self.len;
        self.file.write_all(bytes)?;
        let end = off + bytes.len() as u64;
        let aligned = end.div_ceil(PAGE) * PAGE;
        if aligned > end {
            // Seek-past-end + the next write would also materialize the
            // gap, but an explicit zero pad keeps `len` equal to the real
            // file size on every platform.
            self.file.write_all(&vec![0u8; (aligned - end) as usize])?;
        }
        self.len = aligned;
        self.written += bytes.len() as u64;
        self.chunks += 1;
        Ok(off)
    }

    /// Fills `buf` from the chunk at `off` (positioned read; does not
    /// disturb the append cursor).
    #[cfg(unix)]
    pub fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)
    }

    /// Positioned reads need a platform primitive; the explorer never
    /// enables spilling where there is none (see [`SPILL_SUPPORTED`]).
    #[cfg(not(unix))]
    pub fn read_exact_at(&self, _buf: &mut [u8], _off: u64) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "positioned reads unavailable"))
    }

    /// Truncates the file for reuse (the handle and cumulative counters
    /// are kept).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Cumulative payload bytes appended over the file's lifetime.
    pub fn total_written(&self) -> u64 {
        self.written
    }

    /// Cumulative chunks appended over the file's lifetime.
    pub fn total_chunks(&self) -> u64 {
        self.chunks
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_page_aligned_and_read_back() {
        let mut f = SpillFile::create("test").unwrap();
        let a: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 7 % 256) as u8).collect();
        let off_a = f.append_chunk(&a).unwrap();
        let off_b = f.append_chunk(&b).unwrap();
        assert_eq!(off_a, 0);
        assert_eq!(off_b % PAGE, 0, "chunk offsets are page-aligned");
        assert_eq!(off_b, 8192, "5000 bytes pad to two pages");
        assert_eq!(f.total_written(), 5100);
        assert_eq!(f.total_chunks(), 2);
        if SPILL_SUPPORTED {
            let mut back = vec![0u8; a.len()];
            f.read_exact_at(&mut back, off_a).unwrap();
            assert_eq!(back, a);
            let mut back = vec![0u8; b.len()];
            f.read_exact_at(&mut back, off_b).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn reset_reuses_the_file_but_keeps_counters() {
        let mut f = SpillFile::create("test").unwrap();
        f.append_chunk(&[1, 2, 3]).unwrap();
        f.reset().unwrap();
        let off = f.append_chunk(&[9, 9]).unwrap();
        assert_eq!(off, 0, "offsets restart after reset");
        assert_eq!(f.total_written(), 5, "counters are cumulative");
        assert_eq!(f.total_chunks(), 2);
        if SPILL_SUPPORTED {
            let mut back = [0u8; 2];
            f.read_exact_at(&mut back, 0).unwrap();
            assert_eq!(back, [9, 9]);
        }
    }
}
