//! Property tests for the pruned symmetry canonicalizer (ISSUE 5): over
//! random *reachable* system states of real generated protocols at
//! 2–4 caches, the pruned canonical representative must equal the full
//! n!-sweep `canonical_encoding(&permutations(n))` byte-for-byte, the
//! canonical fingerprint must be constant across each symmetry orbit, and
//! the byte encoding must decode back to the exact state (the clone-free
//! expand path ships candidates as encodings and reconstructs only the
//! new ones).

use proptest::prelude::*;
use protogen_core::{generate, GenConfig};
use protogen_mc::{permutations, Canonicalizer, McConfig, ModelChecker, SysState};
use std::sync::OnceLock;

/// The sampled corpora: for MSI and MESI (non-stalling — the richer
/// machines) at 2, 3, and 4 caches, a deterministic BFS prefix of the
/// reachable canonical representatives.
fn corpora() -> &'static Vec<(usize, Vec<SysState>)> {
    static CORPORA: OnceLock<Vec<(usize, Vec<SysState>)>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let mut out = Vec::new();
        for ssp in [protogen_protocols::msi(), protogen_protocols::mesi()] {
            let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
            for n in 2..=4usize {
                let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(n));
                out.push((n, mc.sample_states(250)));
            }
        }
        out
    })
}

/// A deeper state: random-walk `depth` enabled steps from `start` (the
/// BFS prefix alone under-samples late transients and long queues).
fn walk(n: usize, start: &SysState, depth: usize, mut seed: u64) -> SysState {
    let ssp = protogen_protocols::mesi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(n));
    let mut cur = start.clone();
    for _ in 0..depth {
        let steps = mc.steps(&cur);
        if steps.is_empty() {
            break;
        }
        // SplitMix64-style draw, independent of the proptest RNG.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut pick = seed;
        pick ^= pick >> 30;
        pick = pick.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        for probe in 0..steps.len() {
            let step = steps[(pick as usize + probe) % steps.len()];
            if let Ok(Some(next)) = mc.successor_state(&cur, step) {
                cur = next;
                break;
            }
        }
    }
    cur
}

/// Applies every check of this suite to one state.
fn assert_canon_properties(n: usize, s: &SysState, perm_pick: usize) {
    let perms = permutations(n);
    let mut canon = Canonicalizer::new(n, true);

    // 1. Pruned ≡ full sweep, byte for byte.
    let mut pruned = Vec::new();
    let fp = canon.encode_canonical_into(s, &mut pruned);
    let full = s.canonical_encoding(&perms);
    assert_eq!(pruned, full, "pruned representative diverged from the n! sweep");

    // 2. Orbit stability: every permuted copy selects the same
    //    representative and fingerprint.
    let q = &perms[perm_pick % perms.len()];
    let permuted = s.permuted(q);
    let mut from_orbit = Vec::new();
    let orbit_fp = canon.encode_canonical_into(&permuted, &mut from_orbit);
    assert_eq!(from_orbit, pruned, "representative drifts across the orbit (perm {q:?})");
    assert_eq!(orbit_fp, fp, "fingerprint drifts across the orbit (perm {q:?})");

    // 3. Sort keys are permutation-invariant.
    for i in 0..n {
        assert_eq!(
            protogen_mc::cache_sort_key(s, i),
            protogen_mc::cache_sort_key(&permuted, q[i] as usize),
            "sort key of cache {i} not invariant under {q:?}"
        );
    }

    // 4. Encodings decode back to the exact state.
    assert_eq!(&SysState::decode(&s.encode(), n), s, "decode(encode) is not the identity");
    // …including the canonical representative itself.
    let rep = SysState::decode(&pruned, n);
    assert_eq!(rep.encode(), pruned, "canonical encoding does not round-trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ISSUE 5 satellite: for random reachable `SysState`s at n = 2..4,
    /// the pruned canonical representative equals
    /// `canonical_encoding(&permutations(n))` byte-for-byte (plus orbit
    /// stability, key invariance, and decode round-tripping).
    #[test]
    fn pruned_canonicalization_matches_full_sweep(
        corpus in 0usize..6,
        pick in any::<usize>(),
        perm_pick in any::<usize>(),
    ) {
        let (n, states) = &corpora()[corpus];
        let s = &states[pick % states.len()];
        assert_canon_properties(*n, s, perm_pick);
    }

    /// The same properties hold on deep random walks (late transients,
    /// loaded channels), not just the BFS prefix near the root.
    #[test]
    fn pruned_canonicalization_holds_on_deep_walks(
        n in 2usize..=4,
        depth in 4usize..=16,
        seed in any::<u64>(),
        perm_pick in any::<usize>(),
    ) {
        let s = walk(n, &SysState::initial(n), depth, seed);
        assert_canon_properties(n, &s, perm_pick);
    }
}
