//! Property tests for the sectioned delta codec (ISSUE 6): over random
//! *reachable* system states of real generated protocols at 2–4 caches,
//! `apply_delta(base, encode_delta(base, target))` must reproduce the
//! target's full encoding byte-for-byte, `SysState::decode` of the
//! reconstruction must equal the target state exactly (the end-to-end
//! inverse the frontier read path relies on), and chained deltas — each
//! entry diffed against its predecessor, the way frontier arenas store
//! them — must reconstruct every link of the chain.

use proptest::prelude::*;
use protogen_core::{compose, generate, GenConfig};
use protogen_mc::{
    apply_delta, encode_delta, HierChecker, HierConfig, McConfig, ModelChecker, SectionMap,
    SysState,
};
use std::sync::OnceLock;

/// The sampled corpora: for MSI and MESI (non-stalling — the richer
/// machines) at 2, 3, and 4 caches, a deterministic BFS prefix of the
/// reachable canonical representatives.
fn corpora() -> &'static Vec<(usize, Vec<SysState>)> {
    static CORPORA: OnceLock<Vec<(usize, Vec<SysState>)>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let mut out = Vec::new();
        for ssp in [protogen_protocols::msi(), protogen_protocols::mesi()] {
            let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
            for n in 2..=4usize {
                let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(n));
                out.push((n, mc.sample_states(250)));
            }
        }
        out
    })
}

/// Delta `base → target`, reconstruct, and check both the byte-level and
/// the decoded-state inverse. Returns the delta length.
fn assert_roundtrip(n: usize, base: &SysState, target: &SysState) -> usize {
    let (eb, et) = (base.encode(), target.encode());
    let mut delta = Vec::new();
    let dlen = encode_delta(n, &eb, &et, &mut delta);
    assert_eq!(dlen, delta.len(), "reported delta length disagrees with the buffer");
    let mut rebuilt = Vec::new();
    apply_delta(n, &eb, &delta, &mut rebuilt);
    assert_eq!(rebuilt, et, "delta did not reconstruct the target encoding");
    assert_eq!(&SysState::decode(&rebuilt, n), target, "decode is not the end-to-end inverse");
    dlen
}

/// A composed-protocol corpus: reachable canonical encodings of the
/// 2×2 MSI-under-MSI stack, paired with the leveled section map derived
/// from the checker's topology.
fn hier_corpus() -> &'static (SectionMap, Vec<Vec<u8>>) {
    static CORPUS: OnceLock<(SectionMap, Vec<Vec<u8>>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let comp = protogen_protocols::msi_under_msi(2, 2);
        let composed = compose(&comp, &GenConfig::stalling()).unwrap();
        let hc = HierChecker::new(&composed, HierConfig::default());
        (hc.section_map(), hc.sample_encodings(250))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any reachable state deltas against any other (same cache count)
    /// and reconstructs exactly — including self-deltas (bare mask) and
    /// unrelated pairs, not just parent/child edges.
    #[test]
    fn delta_round_trips_between_reachable_states(
        corpus in 0usize..6,
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let (n, states) = &corpora()[corpus];
        let base = &states[a % states.len()];
        let target = &states[b % states.len()];
        assert_roundtrip(*n, base, target);
        assert_roundtrip(*n, target, base);
        let self_len = assert_roundtrip(*n, base, base);
        // A self-delta is the bare section bitmask: strictly smaller than
        // any non-trivial encoding.
        assert!(self_len < base.encode().len(), "self-delta not compressed");
    }

    /// Chained deltas — the frontier-arena layout, where entry i is
    /// diffed against entry i-1 — reconstruct every link sequentially.
    #[test]
    fn chained_deltas_reconstruct_sequentially(
        corpus in 0usize..6,
        start in any::<usize>(),
        chain_len in 2usize..=12,
    ) {
        let (n, states) = &corpora()[corpus];
        let n = *n;
        let mut prev_full = states[start % states.len()].encode();
        for k in 1..chain_len {
            let target = &states[(start + k) % states.len()];
            let et = target.encode();
            let mut delta = Vec::new();
            encode_delta(n, &prev_full, &et, &mut delta);
            let mut rebuilt = Vec::new();
            apply_delta(n, &prev_full, &delta, &mut rebuilt);
            assert_eq!(rebuilt, et, "link {k} of the chain diverged");
            assert_eq!(&SysState::decode(&rebuilt, n), target);
            prev_full = rebuilt;
        }
    }

    /// The leveled section map deltas composed-protocol encodings with
    /// the same lossless contract as the flat one: any reachable state of
    /// the 2×2 MSI-under-MSI stack reconstructs byte-for-byte from a
    /// delta against any other.
    #[test]
    fn composed_deltas_round_trip_between_reachable_states(
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let (map, encs) = hier_corpus();
        let base = &encs[a % encs.len()];
        let target = &encs[b % encs.len()];
        let mut delta = Vec::new();
        let dlen = map.encode_delta(base, target, &mut delta);
        assert_eq!(dlen, delta.len());
        let mut rebuilt = Vec::new();
        map.apply_delta(base, &delta, &mut rebuilt);
        assert_eq!(&rebuilt, target, "leveled delta did not reconstruct the target");
        // Self-deltas compress to the bare mask.
        let mut self_delta = Vec::new();
        let self_len = map.encode_delta(base, base, &mut self_delta);
        assert_eq!(self_len, map.section_count().div_ceil(8));
    }
}
