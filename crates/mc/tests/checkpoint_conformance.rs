//! Resume determinism: a verification stopped mid-run and resumed from
//! its newest committed checkpoint must report byte-identical states,
//! transitions, violation, and counterexample trace to an uninterrupted
//! run. A `kill -9` and an in-process stop are indistinguishable to
//! resume — both leave only the on-disk checkpoint — so these tests pin
//! the contract the CI `resume` job exercises with a real SIGKILL.

use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker, PropertySet, ResourceLimit, StoreMode};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "protogen-ck-it-{}-{tag}-{:x}",
        std::process::id(),
        protogen_mc::fingerprint_bytes(tag.as_bytes())
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Runs to the `max_states` budget with checkpointing on (leaving
/// committed checkpoints behind, exactly like a killed process), then
/// resumes without the budget and compares against an uninterrupted run.
fn assert_resume_matches(tag: &str, cfg_base: McConfig, interrupt_at: usize) {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::stalling()).unwrap();

    let full = ModelChecker::new(&g.cache, &g.directory, cfg_base.clone()).run();
    assert!(full.passed(), "baseline must pass: {:?}", full.violation);

    let dir = tmpdir(tag);
    let mut cfg = cfg_base.clone();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    cfg.max_states = interrupt_at;
    let partial = ModelChecker::new(&g.cache, &g.directory, cfg.clone()).run();
    assert_eq!(partial.limit, Some(ResourceLimit::StateBudget), "interruption must trigger");
    assert!(partial.states < full.states, "interruption must be mid-run");

    // Resume with the budget lifted — and a *different* configured thread
    // count, which resume must override from the manifest.
    cfg.max_states = cfg_base.max_states;
    cfg.threads = cfg_base.threads % 2 + 1;
    let resumed = ModelChecker::new(&g.cache, &g.directory, cfg).resume().unwrap();
    assert_eq!(resumed.states, full.states, "states must match uninterrupted run");
    assert_eq!(resumed.transitions, full.transitions, "transitions must match");
    assert!(resumed.passed());
    assert_eq!(resumed.threads, cfg_base.effective_threads(), "threads come from the manifest");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_run_matches_uninterrupted_counts() {
    let mut cfg = McConfig::with_caches_and_threads(2, 2);
    cfg.value_domain = 2;
    assert_resume_matches("basic", cfg, 200);
}

#[test]
fn resume_matches_across_store_modes() {
    for (mode, tag) in
        [(StoreMode::Full, "full"), (StoreMode::Delta, "delta"), (StoreMode::FpOnly, "fp")]
    {
        let mut cfg = McConfig::with_caches_and_threads(2, 2);
        cfg.store = mode;
        assert_resume_matches(tag, cfg, 300);
    }
}

#[test]
fn resume_matches_with_spill_tier_active() {
    if !cfg!(unix) {
        // Spilling needs positioned file reads (mirrors the checker's own
        // SPILL_SUPPORTED gate); elsewhere the budget is ignored.
        return;
    }
    // A 1-byte budget forces both frontier-chunk and frozen-record
    // spilling, so the checkpoint writer must read arenas and records
    // back through the spill tier.
    let mut cfg = McConfig::with_caches_and_threads(2, 2);
    cfg.mem_budget_bytes = 1;
    cfg.spill_chunk_bytes = 1;
    assert_resume_matches("spill", cfg, 250);
}

#[test]
fn resumed_violation_trace_is_byte_identical() {
    // TSO-CC under the SC property set fails (the fuzz campaign's
    // calibration control): the resumed run must find the *same*
    // violation with the *same* counterexample trace.
    let ssp = protogen_protocols::tso_cc();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let mut cfg = McConfig::with_caches_and_threads(2, 2);
    cfg.properties = PropertySet::sc();

    let full = ModelChecker::new(&g.cache, &g.directory, cfg.clone()).run();
    let want = full.violation.as_ref().expect("tso-cc must violate SC");

    let dir = tmpdir("vio");
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    cfg.max_states = 40;
    let partial = ModelChecker::new(&g.cache, &g.directory, cfg.clone()).run();
    assert!(
        partial.violation.is_none() && partial.hit_state_limit,
        "interruption must land before the violation (partial: {:?})",
        partial.violation
    );

    cfg.max_states = McConfig::default().max_states;
    let resumed = ModelChecker::new(&g.cache, &g.directory, cfg).resume().unwrap();
    let got = resumed.violation.as_ref().expect("resumed run must refind the violation");
    assert_eq!(format!("{:?}", got.kind), format!("{:?}", want.kind));
    assert_eq!(format!("{:?}", got.trace), format!("{:?}", want.trace), "trace must be identical");
    assert_eq!(resumed.states, full.states);
    assert_eq!(resumed.transitions, full.transitions);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_mismatched_configuration() {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::stalling()).unwrap();
    let dir = tmpdir("mismatch");
    let mut cfg = McConfig::with_caches_and_threads(2, 2);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    cfg.max_states = 200;
    ModelChecker::new(&g.cache, &g.directory, cfg.clone()).run();

    // Different value domain ⇒ different reachable space: refuse.
    let mut wrong = cfg.clone();
    wrong.value_domain = 3;
    let err = ModelChecker::new(&g.cache, &g.directory, wrong).resume().err().unwrap();
    assert!(err.to_string().contains("configuration"), "{err}");

    // Different generated FSMs (other protocol) ⇒ refuse.
    let mesi = generate(&protogen_protocols::mesi(), &GenConfig::stalling()).unwrap();
    let err = ModelChecker::new(&mesi.cache, &mesi.directory, cfg.clone()).resume().err().unwrap();
    assert!(err.to_string().contains("FSM"), "{err}");

    // A flipped byte in a shard file ⇒ hard error, never a silent
    // fallback to an older checkpoint or a fresh start.
    let ck = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .find(|e| e.file_name().to_string_lossy().starts_with("ck-"))
        .expect("a committed checkpoint")
        .path();
    let shard0 = ck.join("shard-0.bin");
    let mut bytes = std::fs::read(&shard0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&shard0, &bytes).unwrap();
    let err = ModelChecker::new(&g.cache, &g.directory, cfg).resume().err().unwrap();
    let msg = err.to_string();
    assert!(msg.contains("corrupt") || msg.contains("manifest"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}
