//! Conformance tests for hierarchical composition (DESIGN.md §12).
//!
//! Two classes of evidence that the leveled checker means what the flat
//! checker means:
//!
//! 1. **Flat identity** — a one-level composition is the *same system* as
//!    the flat checker's `n` caches + directory, so its canonical state
//!    and transition counts must match exactly (glue never fires, parent
//!    semantics never engage, and the wreath group degenerates to the
//!    full symmetric group the flat canonicalizer sweeps).
//! 2. **End-to-end stack verification** — the bundled two-level stacks
//!    (2 L1s per L2, 2 L2s) pass per-level SWMR, leaf-level data-value,
//!    and deadlock freedom over their whole reachable space.

use protogen_core::{compose, generate, GenConfig};
use protogen_mc::{HierChecker, HierConfig, McConfig, ModelChecker};

fn checked(comp: &protogen_spec::Composition) -> protogen_mc::HierResult {
    let composed = compose(comp, &GenConfig::stalling()).unwrap();
    let hc = HierChecker::new(&composed, HierConfig::default());
    hc.check()
}

/// Flat-vs-composed identity at the same cache count, for every protocol
/// that satisfies the composition interface.
fn assert_identity(name: &str, n: usize) {
    let ssp = protogen_protocols::by_name(name).unwrap();
    let g = generate(&ssp, &GenConfig::stalling()).unwrap();
    let mut cfg = McConfig::with_caches(n);
    cfg.ordered = ssp.network_ordered;
    let flat = ModelChecker::new(&g.cache, &g.directory, cfg).run();
    assert!(flat.passed(), "flat {name}: {:?}", flat.violation);

    let comp = protogen_protocols::flat_composition(name, n).unwrap();
    let res = checked(&comp);
    assert!(res.passed(), "composed {name}: {:?}", res.violation);
    assert_eq!(res.states, flat.states, "{name}@{n}: state counts diverge");
    assert_eq!(res.transitions, flat.transitions, "{name}@{n}: transition counts diverge");
}

#[test]
fn one_level_msi_is_state_count_identical_to_flat() {
    assert_identity("msi", 2);
}

#[test]
fn one_level_mesi_is_state_count_identical_to_flat() {
    assert_identity("mesi", 2);
}

#[test]
fn msi_under_msi_verifies_end_to_end() {
    let res = checked(&protogen_protocols::msi_under_msi(2, 2));
    assert!(res.passed(), "{:?}", res.violation);
    // Pin the canonical counts: any semantic drift in glue generation,
    // parent data transparency, or per-level symmetry shows up here first.
    assert_eq!(res.states, 343_838);
    assert_eq!(res.transitions, 1_584_992);
}

#[test]
fn msi_under_mesi_verifies_end_to_end() {
    let res = checked(&protogen_protocols::msi_under_mesi(2, 2));
    assert!(res.passed(), "{:?}", res.violation);
    // Identical to MSI-under-MSI by design: exclusive-at-parent glue never
    // issues outer Loads, so MESI's E state is unreachable at the outer
    // level and the reachable outer subgraph coincides with MSI's.
    assert_eq!(res.states, 343_838);
}

#[test]
fn three_level_stack_explores_without_violations_in_budget() {
    // A 2-1-1 three-level stack (two leaves, one mid, one outer) checks
    // clean — depth beyond two levels exercises the recursive glue rules
    // (a mid-level node is simultaneously a directory host and a gated
    // cache).
    let comp = protogen_spec::Composition {
        name: "msi3".into(),
        levels: vec![
            protogen_spec::LevelSpec {
                label: "l1".into(),
                ssp: protogen_protocols::msi(),
                fanout: 2,
            },
            protogen_spec::LevelSpec {
                label: "l2".into(),
                ssp: protogen_protocols::msi(),
                fanout: 1,
            },
            protogen_spec::LevelSpec {
                label: "l3".into(),
                ssp: protogen_protocols::msi(),
                fanout: 1,
            },
        ],
    };
    let res = checked(&comp);
    assert!(res.passed(), "{:?}", res.violation);
    assert!(res.states > 1_000);
}
