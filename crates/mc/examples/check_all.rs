//! Verify every built-in protocol in every configuration (§VI).
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    for ssp in protogen_protocols::all() {
        for (cname, cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let g = match generate(&ssp, &cfg) {
                Ok(g) => g,
                Err(e) => {
                    println!("{:14} {cname:13}: GEN ERROR {e}", ssp.name);
                    continue;
                }
            };
            let mut mc_cfg = McConfig::with_caches(n);
            mc_cfg.ordered = ssp.network_ordered;
            if ssp.name == "TSO-CC" {
                // TSO-CC breaks physical SWMR by design; check single-writer
                // via a custom pass below and skip data-value staleness.
                mc_cfg.check_swmr = false;
                mc_cfg.check_data_value = false;
            }
            let mc = ModelChecker::new(&g.cache, &g.directory, mc_cfg);
            let r = mc.run();
            println!(
                "{:14} {cname:13} n={n}: passed={} cache_states={} dir_states={} explored={} time={:.2}s",
                ssp.name, r.passed(), g.cache.state_count(), g.directory.state_count(), r.states, r.seconds
            );
            if let Some(v) = r.violation {
                println!("  VIOLATION: {}", v.kind);
                for l in v.trace.iter().take(25) {
                    println!("    {l}");
                }
            }
        }
    }
}
