//! Verify every built-in protocol in every configuration (§VI).
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker, PropertySet};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    for ssp in protogen_protocols::all() {
        for (cname, cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let g = match generate(&ssp, &cfg) {
                Ok(g) => g,
                Err(e) => {
                    println!("{:14} {cname:13}: GEN ERROR {e}", ssp.name);
                    continue;
                }
            };
            let mut mc_cfg = McConfig::with_caches(n);
            mc_cfg.ordered = ssp.network_ordered;
            // Check the contract each protocol promises: SC protocols get
            // SWMR + data-value, TSO-CC gets single-writer, SI/SD gets
            // deadlock freedom only.
            mc_cfg.properties = PropertySet::promised(ssp.consistency);
            let mc = ModelChecker::new(&g.cache, &g.directory, mc_cfg);
            let r = mc.run();
            println!(
                "{:14} {cname:13} n={n}: passed={} cache_states={} dir_states={} explored={} time={:.2}s",
                ssp.name, r.passed(), g.cache.state_count(), g.directory.state_count(), r.states, r.seconds
            );
            if let Some(v) = r.violation {
                println!("  VIOLATION: {}", v.kind);
                for l in v.trace.iter().take(25) {
                    println!("    {l}");
                }
            }
        }
    }
}
