use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let ssp = protogen_protocols::msi();
    for (name, cfg) in
        [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
    {
        let g = generate(&ssp, &cfg).unwrap();
        let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(n));
        let r = mc.run();
        println!(
            "MSI {name} n={n}: passed={} states={} transitions={} time={:.2}s",
            r.passed(),
            r.states,
            r.transitions,
            r.seconds
        );
        if let Some(v) = r.violation {
            println!("  VIOLATION: {}", v.kind);
            for l in v.trace {
                println!("    {l}");
            }
        }
    }
}
