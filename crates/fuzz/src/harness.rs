//! Running one mutant through the pipeline and classifying what happened.
//!
//! The harness drives `validate → generate → model-check` with every stage
//! under `catch_unwind`, so a mutant can *never* abort the fuzzing
//! process: a panic anywhere in the pipeline is captured and classified
//! as an unexpected outcome (the bug class the fuzzer exists to find).
//!
//! The model-check stage runs in budgeted quick-check mode: 2 caches, one
//! worker thread, a configurable state budget, and the structured
//! resource-exhaustion outcome from [`protogen_mc`] when the budget is
//! spent — never an abort.

use crate::mutate::{apply_all, Mutation};
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker, PropertySet, ViolationKind};
use protogen_spec::Ssp;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What running one mutant through the pipeline produced.
///
/// The first three variants are the *working* rejection paths (the
/// toolchain noticed something was off and said so); `Caught` is the
/// checker doing its oracle job; the `…Panic` and `ExecViolation`
/// variants are **unexpected** — evidence of a toolchain bug — and get
/// shrunk to a minimal reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A mutation site was out of range (only reachable while shrinking).
    MutationInapplicable(String),
    /// `Ssp::validate` rejected the mutant.
    RejectedAtBuild(String),
    /// `generate` returned a structured [`protogen_core::GenError`].
    RejectedByGenerator(String),
    /// A pre-checking stage (mutation application, validation, or the
    /// generator itself) panicked — an unexpected toolchain bug. The
    /// message names the stage.
    GeneratorPanic(String),
    /// The model checker found a protocol violation (SWMR, data value,
    /// deadlock, unexpected message, channel overflow, a named custom
    /// property): the oracle caught the mutant. Carries the violated
    /// property's family label (the property-aware taxonomy key) and the
    /// rendered violation kind.
    Caught {
        /// Which property family fired: `swmr`, `data-value`,
        /// `deadlock`, `unexpected-message`, `channel-overflow`,
        /// `illegal-action`, or `property:<name>` for a custom
        /// [`protogen_mc::Predicate`].
        family: String,
        /// The rendered violation kind.
        detail: String,
    },
    /// The checker hit a [`ViolationKind::Exec`] violation: the runtime
    /// rejected an action the generator emitted — an unexpected
    /// generator bug surfaced at run time.
    ExecViolation(String),
    /// The model checker itself panicked — an unexpected toolchain bug.
    CheckerPanic(String),
    /// The budgeted quick-check ran out of states before exhausting the
    /// space (verdict unknown).
    ResourceExhausted(String),
    /// The mutant generated and verified clean: the mutation was
    /// behaviour-preserving or unobservable at 2 caches.
    SilentPass {
        /// States the quick-check explored.
        states: usize,
        /// Transitions it fired.
        transitions: usize,
    },
}

impl Outcome {
    /// Stable classification label (the report's distribution key).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::MutationInapplicable(_) => "mutation-inapplicable",
            Outcome::RejectedAtBuild(_) => "rejected-at-build",
            Outcome::RejectedByGenerator(_) => "rejected-by-generator",
            Outcome::GeneratorPanic(_) => "generator-panic",
            Outcome::Caught { .. } => "rejected-by-checker",
            Outcome::ExecViolation(_) => "exec-violation",
            Outcome::CheckerPanic(_) => "checker-panic",
            Outcome::ResourceExhausted(_) => "resource-exhausted",
            Outcome::SilentPass { .. } => "silent-pass",
        }
    }

    /// Whether this outcome is evidence of a toolchain bug (and must be
    /// shrunk and reported).
    pub fn is_unexpected(&self) -> bool {
        matches!(
            self,
            Outcome::GeneratorPanic(_) | Outcome::ExecViolation(_) | Outcome::CheckerPanic(_)
        )
    }

    /// The violated property's family label — the property-aware
    /// taxonomy key (`swmr`, `deadlock`, `property:<name>`, …) — when
    /// the checker caught this mutant; `None` for every other outcome.
    pub fn family(&self) -> Option<&str> {
        match self {
            Outcome::Caught { family, .. } => Some(family),
            _ => None,
        }
    }

    /// The outcome's detail line (violation kind, error message, …).
    pub fn detail(&self) -> String {
        match self {
            Outcome::MutationInapplicable(d)
            | Outcome::RejectedAtBuild(d)
            | Outcome::RejectedByGenerator(d)
            | Outcome::GeneratorPanic(d)
            | Outcome::Caught { detail: d, .. }
            | Outcome::ExecViolation(d)
            | Outcome::CheckerPanic(d)
            | Outcome::ResourceExhausted(d) => d.clone(),
            Outcome::SilentPass { states, transitions } => {
                format!("{states} states, {transitions} transitions")
            }
        }
    }
}

/// The result of running one mutant: its outcome plus the checker's
/// counterexample trace when one exists.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The classified outcome.
    pub outcome: Outcome,
    /// Counterexample trace lines (empty unless the checker found a
    /// violation).
    pub trace: Vec<String>,
}

/// The property-aware taxonomy key for a caught violation: which
/// checker property family fired. Built-in invariants get a fixed slug;
/// custom predicates get `property:<name>` so report distributions
/// distinguish *which* property did the catching.
pub(crate) fn violation_family(kind: &ViolationKind) -> String {
    match kind {
        ViolationKind::Swmr(_) => "swmr".to_string(),
        ViolationKind::DataValue(_) => "data-value".to_string(),
        ViolationKind::Deadlock => "deadlock".to_string(),
        ViolationKind::UnexpectedMessage(_) => "unexpected-message".to_string(),
        ViolationKind::ChannelOverflow(_) => "channel-overflow".to_string(),
        ViolationKind::IllegalAction(_) => "illegal-action".to_string(),
        ViolationKind::Property { property, .. } => format!("property:{property}"),
        // `Exec` is classified as `Outcome::ExecViolation` before this
        // function is ever consulted.
        ViolationKind::Exec(_) => "exec".to_string(),
    }
}

/// Renders a captured panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The budgeted quick-check configuration for `ssp`: 2 caches, one
/// worker, `budget` states. Mutants are checked against the property set
/// their base spec's memory model promises
/// ([`protogen_mc::PropertySet::promised`]), exactly as the conformance
/// matrix does; `full_invariants` forces the complete SC set anyway (the
/// relaxation negative control).
pub fn quick_check_config(ssp: &Ssp, budget: usize, full_invariants: bool) -> McConfig {
    let mut cfg = McConfig::with_caches(2);
    cfg.threads = 1;
    cfg.max_states = budget.max(1);
    cfg.ordered = ssp.network_ordered;
    if !full_invariants {
        // Check the properties the mutated spec's base model promises —
        // SC mutants keep the full set, weak-memory mutants get theirs.
        cfg.properties = PropertySet::promised(ssp.consistency);
    }
    cfg
}

/// Runs `base + mutations` through the pipeline under `gen_cfg`.
///
/// Never panics: every stage is wrapped, every failure is classified.
pub fn run_mutant(
    base: &Ssp,
    mutations: &[Mutation],
    gen_cfg: &GenConfig,
    budget: usize,
    full_invariants: bool,
) -> RunResult {
    let no_trace = |outcome| RunResult { outcome, trace: Vec::new() };
    // Mutation application and validation are wrapped like every later
    // stage: the harness contract is that *no* mutant input can abort
    // the campaign, however pathological.
    let ssp = match catch_unwind(AssertUnwindSafe(|| apply_all(base, mutations))) {
        Ok(Ok(ssp)) => ssp,
        Ok(Err(e)) => return no_trace(Outcome::MutationInapplicable(e.to_string())),
        Err(payload) => {
            return no_trace(Outcome::GeneratorPanic(format!(
                "during mutation: {}",
                panic_message(payload)
            )))
        }
    };
    match catch_unwind(AssertUnwindSafe(|| ssp.validate())) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return no_trace(Outcome::RejectedAtBuild(e.to_string())),
        Err(payload) => {
            return no_trace(Outcome::GeneratorPanic(format!(
                "during validation: {}",
                panic_message(payload)
            )))
        }
    }
    let generated = match catch_unwind(AssertUnwindSafe(|| generate(&ssp, gen_cfg))) {
        Ok(Ok(g)) => g,
        Ok(Err(e)) => return no_trace(Outcome::RejectedByGenerator(e.to_string())),
        Err(payload) => return no_trace(Outcome::GeneratorPanic(panic_message(payload))),
    };
    let mc_cfg = quick_check_config(&ssp, budget, full_invariants);
    let result = catch_unwind(AssertUnwindSafe(|| {
        ModelChecker::new(&generated.cache, &generated.directory, mc_cfg).run()
    }));
    match result {
        Err(payload) => no_trace(Outcome::CheckerPanic(panic_message(payload))),
        Ok(r) => {
            if let Some(v) = r.violation {
                let outcome = match &v.kind {
                    ViolationKind::Exec(d) => Outcome::ExecViolation(d.clone()),
                    kind => {
                        Outcome::Caught { family: violation_family(kind), detail: kind.to_string() }
                    }
                };
                RunResult { outcome, trace: v.trace }
            } else if let Some(limit) = r.limit {
                no_trace(Outcome::ResourceExhausted(limit.to_string()))
            } else {
                no_trace(Outcome::SilentPass { states: r.states, transitions: r.transitions })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::MutOp;

    #[test]
    fn unmutated_msi_passes_silently() {
        let ssp = protogen_protocols::msi();
        let r = run_mutant(&ssp, &[], &GenConfig::non_stalling(), 200_000, false);
        assert!(matches!(r.outcome, Outcome::SilentPass { .. }), "{:?}", r.outcome);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn tiny_budget_reports_resource_exhaustion() {
        let ssp = protogen_protocols::msi();
        let r = run_mutant(&ssp, &[], &GenConfig::non_stalling(), 10, false);
        assert!(matches!(r.outcome, Outcome::ResourceExhausted(_)), "{:?}", r.outcome);
    }

    #[test]
    fn tso_cc_full_invariants_are_caught() {
        let ssp = protogen_protocols::tso_cc();
        let r = run_mutant(&ssp, &[], &GenConfig::non_stalling(), 200_000, true);
        assert!(matches!(r.outcome, Outcome::Caught { .. }), "{:?}", r.outcome);
        assert!(r.outcome.family().is_some(), "caught outcomes carry a property family");
        assert!(!r.trace.is_empty(), "caught outcomes carry the counterexample");
        // …and with its own contract it passes.
        let r = run_mutant(&ssp, &[], &GenConfig::non_stalling(), 200_000, false);
        assert!(matches!(r.outcome, Outcome::SilentPass { .. }), "{:?}", r.outcome);
    }

    #[test]
    fn readable_state_without_data_is_rejected_at_build() {
        // Fuzz regression (seed 1, mutant 4): flipping I's permission to
        // Read used to generate controllers whose transient hit arcs
        // failed at run time with an exec violation ("load on invalid
        // data"). The contradiction is now rejected at build.
        let ssp = protogen_protocols::msi();
        let muts = [crate::mutate::Mutation { op: MutOp::FlipPermission, site: 0 }];
        let r = run_mutant(&ssp, &muts, &GenConfig::non_stalling(), 50_000, false);
        assert!(matches!(r.outcome, Outcome::RejectedAtBuild(_)), "{:?}", r.outcome);
        assert!(r.outcome.detail().contains("`I`"), "{}", r.outcome.detail());
    }

    #[test]
    fn send_to_missing_owner_is_caught_not_unexpected() {
        // Fuzz regression (seed 1, mutant 444): retargeting
        // msi-unordered's forward sends twice makes the directory address
        // an owner it never recorded. The runtime's refusal is a
        // *protocol* violation the checker catches (an illegal action),
        // not a toolchain bug.
        let ssp = protogen_protocols::msi_unordered();
        let muts = [
            crate::mutate::Mutation { op: MutOp::RetargetForward, site: 0 },
            crate::mutate::Mutation { op: MutOp::RetargetForward, site: 0 },
        ];
        let r = run_mutant(&ssp, &muts, &GenConfig::stalling(), 50_000, false);
        assert!(matches!(r.outcome, Outcome::Caught { .. }), "{:?}", r.outcome);
        assert_eq!(r.outcome.family(), Some("illegal-action"));
        assert!(r.outcome.detail().contains("illegal action"), "{}", r.outcome.detail());
        assert!(!r.outcome.is_unexpected());
    }

    #[test]
    fn out_of_range_site_is_classified_not_fatal() {
        let ssp = protogen_protocols::msi();
        let muts = [crate::mutate::Mutation { op: MutOp::DropDirReaction, site: 9999 }];
        let r = run_mutant(&ssp, &muts, &GenConfig::non_stalling(), 1000, false);
        assert!(matches!(r.outcome, Outcome::MutationInapplicable(_)));
    }
}
