//! The mutation-operator catalog: small semantic perturbations of an
//! [`Ssp`], addressed by `(operator, site)` pairs.
//!
//! Every operator enumerates its applicable *sites* on a given SSP in a
//! deterministic order (declaration order of entries, actions, states) and
//! applies by site index, so a mutant is fully described by its base
//! protocol plus an ordered list of [`Mutation`]s — the replay-script
//! representation the fuzzer emits for every unexpected outcome.
//!
//! Mutations operate on the *typed* representation: they can produce SSPs
//! that fail validation (counted as `rejected-at-build`), SSPs the
//! generator rejects, and — the interesting class — well-formed-looking
//! protocols whose generated controllers the model checker must catch.

use protogen_spec::{Action, Dst, Effect, MachineSsp, MsgClass, Perm, Ssp, WaitTo};
use std::fmt;

/// One mutation operator. See each variant for its site enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutOp {
    /// Remove the site-th directory entry (a lost reaction: the "architect
    /// forgot a table cell" bug class).
    DropDirReaction,
    /// Duplicate the site-th directory entry (ambiguous double reactions).
    DuplicateDirReaction,
    /// Retarget the site-th transition target of the cache machine — the
    /// `next` state of a local effect or the `Done` state of a wait arc —
    /// to the following stable state (mod state count).
    SwapTransitionTarget,
    /// Rotate the site-th cache stable state's permission
    /// (None → Read → ReadWrite → None).
    FlipPermission,
    /// Rotate the arcs of the site-th await point (across both machines'
    /// transactions) left by one, perturbing guarded-arc precedence.
    ReorderWaitArcs,
    /// Remove the site-th data-free response send (an acknowledgment that
    /// never gets sent: Inv-Ack, Put-Ack, …).
    DropAck,
    /// Rotate the destination of the site-th directory forward send
    /// (Owner → Sharers∖Req → Req → Owner): invalidations sent to the
    /// wrong caches, forwards that never reach the owner.
    RetargetForward,
}

impl MutOp {
    /// The whole catalog, in the order the fuzzer's operator picker
    /// cycles through it.
    pub const ALL: [MutOp; 7] = [
        MutOp::DropDirReaction,
        MutOp::DuplicateDirReaction,
        MutOp::SwapTransitionTarget,
        MutOp::FlipPermission,
        MutOp::ReorderWaitArcs,
        MutOp::DropAck,
        MutOp::RetargetForward,
    ];

    /// Stable script name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            MutOp::DropDirReaction => "drop-dir-reaction",
            MutOp::DuplicateDirReaction => "duplicate-dir-reaction",
            MutOp::SwapTransitionTarget => "swap-transition-target",
            MutOp::FlipPermission => "flip-permission",
            MutOp::ReorderWaitArcs => "reorder-wait-arcs",
            MutOp::DropAck => "drop-ack",
            MutOp::RetargetForward => "retarget-forward",
        }
    }

    /// Parses a script name back into the operator.
    pub fn by_name(name: &str) -> Option<MutOp> {
        MutOp::ALL.iter().copied().find(|op| op.name() == name)
    }
}

impl fmt::Display for MutOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One applied mutation: an operator plus the index of the site it hits,
/// in the operator's deterministic enumeration order *on the SSP it is
/// applied to* (mutations in a list apply sequentially, each against the
/// result of the previous one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// The operator.
    pub op: MutOp,
    /// Site index in the operator's enumeration.
    pub site: usize,
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.site)
    }
}

/// Why a mutation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inapplicable {
    /// The mutation that failed.
    pub mutation: Mutation,
    /// Sites the operator actually had on this SSP.
    pub available: usize,
}

impl fmt::Display for Inapplicable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mutation `{}` inapplicable: {} site(s) available", self.mutation, self.available)
    }
}

impl std::error::Error for Inapplicable {}

/// Visits every action list of a machine in declaration order: local
/// effect actions, then issue request actions, then wait-arc actions,
/// per entry.
fn visit_action_lists(m: &mut MachineSsp, f: &mut impl FnMut(&mut Vec<Action>)) {
    for e in &mut m.entries {
        match &mut e.effect {
            Effect::Local { actions, .. } => f(actions),
            Effect::Issue { request, chain } => {
                f(request);
                for node in &mut chain.nodes {
                    for arc in &mut node.arcs {
                        f(&mut arc.actions);
                    }
                }
            }
        }
    }
}

/// Counts the sites `op` has on `ssp`.
pub fn site_count(op: MutOp, ssp: &Ssp) -> usize {
    // Counting shares the application walk: apply at an impossible site
    // and read back how many sites the walk saw.
    let mut probe = ssp.clone();
    match apply(&mut probe, Mutation { op, site: usize::MAX }) {
        Err(e) => e.available,
        Ok(()) => unreachable!("usize::MAX site can never apply"),
    }
}

/// Applies `mutation` to `ssp` in place.
///
/// # Errors
///
/// Returns [`Inapplicable`] (leaving `ssp` unchanged in every meaningful
/// way) when the site index is out of range for this SSP.
pub fn apply(ssp: &mut Ssp, mutation: Mutation) -> Result<(), Inapplicable> {
    let site = mutation.site;
    let fail = |available: usize| Inapplicable { mutation, available };
    match mutation.op {
        MutOp::DropDirReaction => {
            let n = ssp.directory.entries.len();
            if site >= n {
                return Err(fail(n));
            }
            ssp.directory.entries.remove(site);
        }
        MutOp::DuplicateDirReaction => {
            let n = ssp.directory.entries.len();
            if site >= n {
                return Err(fail(n));
            }
            let dup = ssp.directory.entries[site].clone();
            ssp.directory.entries.insert(site + 1, dup);
        }
        MutOp::SwapTransitionTarget => {
            let n_states = ssp.cache.states.len();
            let mut seen = 0usize;
            let mut done = false;
            if n_states >= 2 {
                for e in &mut ssp.cache.entries {
                    match &mut e.effect {
                        Effect::Local { next: Some(next), .. } => {
                            if seen == site {
                                next.0 = ((next.as_usize() + 1) % n_states) as u16;
                                done = true;
                                break;
                            }
                            seen += 1;
                        }
                        Effect::Local { next: None, .. } => {}
                        Effect::Issue { chain, .. } => {
                            'chain: for node in &mut chain.nodes {
                                for arc in &mut node.arcs {
                                    if let WaitTo::Done(s) = &mut arc.to {
                                        if seen == site {
                                            s.0 = ((s.as_usize() + 1) % n_states) as u16;
                                            done = true;
                                            break 'chain;
                                        }
                                        seen += 1;
                                    }
                                }
                            }
                            if done {
                                break;
                            }
                        }
                    }
                }
            }
            if !done {
                return Err(fail(seen));
            }
        }
        MutOp::FlipPermission => {
            let n = ssp.cache.states.len();
            if site >= n {
                return Err(fail(n));
            }
            let s = &mut ssp.cache.states[site];
            s.perm = match s.perm {
                Perm::None => Perm::Read,
                Perm::Read => Perm::ReadWrite,
                Perm::ReadWrite => Perm::None,
            };
        }
        MutOp::ReorderWaitArcs => {
            let mut seen = 0usize;
            let mut done = false;
            'machines: for m in [&mut ssp.cache, &mut ssp.directory] {
                for e in &mut m.entries {
                    if let Effect::Issue { chain, .. } = &mut e.effect {
                        for node in &mut chain.nodes {
                            if node.arcs.len() < 2 {
                                continue;
                            }
                            if seen == site {
                                node.arcs.rotate_left(1);
                                done = true;
                                break 'machines;
                            }
                            seen += 1;
                        }
                    }
                }
            }
            if !done {
                return Err(fail(seen));
            }
        }
        MutOp::DropAck => {
            // Data-free response sends, across both machines in order.
            let ack_ids: Vec<u16> = ssp
                .messages
                .iter()
                .enumerate()
                .filter(|(_, d)| d.class == MsgClass::Response && !d.carries_data)
                .map(|(i, _)| i as u16)
                .collect();
            let mut seen = 0usize;
            let mut done = false;
            for m in [&mut ssp.cache, &mut ssp.directory] {
                if done {
                    break;
                }
                visit_action_lists(m, &mut |actions| {
                    if done {
                        return;
                    }
                    let mut i = 0;
                    while i < actions.len() {
                        if let Action::Send(sp) = &actions[i] {
                            if ack_ids.contains(&sp.msg.0) {
                                if seen == site {
                                    actions.remove(i);
                                    done = true;
                                    return;
                                }
                                seen += 1;
                            }
                        }
                        i += 1;
                    }
                });
            }
            if !done {
                return Err(fail(seen));
            }
        }
        MutOp::RetargetForward => {
            // Directory-side sends of forward-class messages.
            let fwd_ids: Vec<u16> = ssp
                .messages
                .iter()
                .enumerate()
                .filter(|(_, d)| d.class == MsgClass::Forward)
                .map(|(i, _)| i as u16)
                .collect();
            let mut seen = 0usize;
            let mut done = false;
            visit_action_lists(&mut ssp.directory, &mut |actions| {
                if done {
                    return;
                }
                for a in actions.iter_mut() {
                    if let Action::Send(sp) = a {
                        if fwd_ids.contains(&sp.msg.0) {
                            if seen == site {
                                sp.dst = match sp.dst {
                                    Dst::Owner => Dst::SharersExceptReq,
                                    Dst::SharersExceptReq => Dst::Req,
                                    _ => Dst::Owner,
                                };
                                done = true;
                                return;
                            }
                            seen += 1;
                        }
                    }
                }
            });
            if !done {
                return Err(fail(seen));
            }
        }
    }
    Ok(())
}

/// Applies a mutation list in order, against the evolving SSP.
///
/// # Errors
///
/// The first [`Inapplicable`] mutation aborts the whole list.
pub fn apply_all(base: &Ssp, mutations: &[Mutation]) -> Result<Ssp, Inapplicable> {
    let mut ssp = base.clone();
    for &m in mutations {
        apply(&mut ssp, m)?;
    }
    Ok(ssp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operator_has_sites_on_msi() {
        let ssp = protogen_protocols::msi();
        for op in MutOp::ALL {
            assert!(site_count(op, &ssp) > 0, "{op} has no sites on MSI");
        }
    }

    #[test]
    fn site_counts_match_application_range() {
        let ssp = protogen_protocols::msi();
        for op in MutOp::ALL {
            let n = site_count(op, &ssp);
            // Every in-range site applies; the first out-of-range one fails.
            for site in 0..n {
                let mut m = ssp.clone();
                apply(&mut m, Mutation { op, site }).unwrap_or_else(|e| panic!("{op} {site}: {e}"));
                assert_ne!(m, ssp, "{op} {site} was a no-op");
            }
            let mut m = ssp.clone();
            let err = apply(&mut m, Mutation { op, site: n }).unwrap_err();
            assert_eq!(err.available, n);
        }
    }

    #[test]
    fn drop_dir_reaction_removes_exactly_one_entry() {
        let ssp = protogen_protocols::msi();
        let mut m = ssp.clone();
        apply(&mut m, Mutation { op: MutOp::DropDirReaction, site: 0 }).unwrap();
        assert_eq!(m.directory.entries.len(), ssp.directory.entries.len() - 1);
        assert_eq!(m.directory.entries[0], ssp.directory.entries[1]);
    }

    #[test]
    fn flip_permission_rotates() {
        let ssp = protogen_protocols::msi();
        let s = ssp.cache.state_by_name("S").unwrap();
        let mut m = ssp.clone();
        apply(&mut m, Mutation { op: MutOp::FlipPermission, site: s.as_usize() }).unwrap();
        assert_eq!(m.cache.states[s.as_usize()].perm, Perm::ReadWrite);
    }

    #[test]
    fn operator_names_round_trip() {
        for op in MutOp::ALL {
            assert_eq!(MutOp::by_name(op.name()), Some(op));
        }
        assert_eq!(MutOp::by_name("nonesuch"), None);
    }
}
