//! The replayable `.ssp`-mutation script format.
//!
//! A script names a bundled base protocol, the generator configuration,
//! and an ordered mutation list — everything needed to reconstruct a
//! mutant exactly. The fuzzer emits one for every shrunk unexpected
//! outcome; `protogen fuzz --replay FILE` runs one back through the
//! pipeline.
//!
//! ```text
//! # protogen fuzz reproducer
//! protocol msi
//! config non-stalling
//! mutate flip-permission 1
//! mutate drop-ack 0
//! ```

use crate::mutate::{MutOp, Mutation};
use protogen_core::GenConfig;
use std::fmt;

/// A parsed (or to-be-rendered) mutation script.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// CLI name of the base protocol (see `protogen_protocols::NAMES`).
    pub protocol: String,
    /// `true` for stalling generation.
    pub stalling: bool,
    /// The ordered mutation list.
    pub mutations: Vec<Mutation>,
}

impl Script {
    /// The generator configuration the script selects.
    pub fn gen_config(&self) -> GenConfig {
        if self.stalling {
            GenConfig::stalling()
        } else {
            GenConfig::non_stalling()
        }
    }

    /// Renders the script with an optional `# …` comment header line.
    pub fn render(&self, comment: &str) -> String {
        let mut out = String::from("# protogen fuzz reproducer\n");
        if !comment.is_empty() {
            for line in comment.lines() {
                out.push_str(&format!("# {line}\n"));
            }
        }
        out.push_str(&format!("protocol {}\n", self.protocol));
        out.push_str(&format!(
            "config {}\n",
            if self.stalling { "stalling" } else { "non-stalling" }
        ));
        for m in &self.mutations {
            out.push_str(&format!("mutate {m}\n"));
        }
        out
    }

    /// Parses a script.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(src: &str) -> Result<Script, ScriptError> {
        let mut protocol: Option<String> = None;
        let mut stalling = false;
        let mut mutations = Vec::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| ScriptError { line: lineno + 1, msg };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("protocol") => {
                    let name = parts.next().ok_or_else(|| err("`protocol` needs a name".into()))?;
                    protocol = Some(name.to_string());
                }
                Some("config") => match parts.next() {
                    Some("stalling") => stalling = true,
                    Some("non-stalling") => stalling = false,
                    other => {
                        return Err(err(format!(
                            "`config` must be stalling or non-stalling, got {other:?}"
                        )))
                    }
                },
                Some("mutate") => {
                    let op_name =
                        parts.next().ok_or_else(|| err("`mutate` needs an operator".into()))?;
                    let op = MutOp::by_name(op_name)
                        .ok_or_else(|| err(format!("unknown operator `{op_name}`")))?;
                    let site: usize = parts
                        .next()
                        .ok_or_else(|| err("`mutate` needs a site index".into()))?
                        .parse()
                        .map_err(|_| err("site must be a non-negative integer".into()))?;
                    mutations.push(Mutation { op, site });
                }
                Some(other) => return Err(err(format!("unknown directive `{other}`"))),
                None => unreachable!("blank lines are skipped"),
            }
            if let Some(extra) = parts.next() {
                return Err(err(format!("trailing token `{extra}`")));
            }
        }
        let protocol = protocol
            .ok_or_else(|| ScriptError { line: 0, msg: "missing `protocol` line".into() })?;
        Ok(Script { protocol, stalling, mutations })
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(""))
    }
}

/// A script parse error, with the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_round_trip() {
        let s = Script {
            protocol: "msi".into(),
            stalling: true,
            mutations: vec![
                Mutation { op: MutOp::FlipPermission, site: 1 },
                Mutation { op: MutOp::DropAck, site: 0 },
            ],
        };
        let text = s.render("seed 1 mutant 42 — outcome generator-panic");
        let parsed = Script::parse(&text).unwrap();
        assert_eq!(parsed, s);
        assert!(text.contains("# seed 1 mutant 42"), "{text}");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Script::parse("protocol msi\nmutate bogus-op 0\n").is_err());
        assert!(Script::parse("mutate drop-ack 0\n").is_err(), "missing protocol");
        assert!(Script::parse("protocol msi\nmutate drop-ack zero\n").is_err());
        assert!(Script::parse("protocol msi\nfrobnicate 1\n").is_err());
        assert!(Script::parse("protocol msi extra\n").is_err());
    }
}
