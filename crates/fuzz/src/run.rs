//! The fuzzing driver: seeded mutant derivation, negative controls,
//! multi-threaded batch execution, and the deterministic report.
//!
//! Mutants are sharded statically across workers (`index % threads`, the
//! same discipline as the simulator's sweep sharding) and every mutant
//! derives its RNG stream from the fuzz seed and its index alone — never
//! from thread identity or timing — so the merged report is
//! **byte-identical for any thread count**. CI diffs the JSON to enforce
//! exactly that.

use crate::compose::{glue_control, run_composed_mutant};
use crate::harness::{run_mutant, Outcome};
use crate::mutate::{apply, site_count, MutOp, Mutation};
use crate::script::Script;
use crate::shrink::shrink;
use protogen_sim::Json;
use protogen_spec::Ssp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzzing-run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every mutant derives its own stream from this and its
    /// index.
    pub seed: u64,
    /// Number of mutants to derive and run.
    pub mutants: usize,
    /// Worker threads; `0` means all available cores. Results are
    /// identical for every value.
    pub threads: usize,
    /// Model-checker state budget per mutant (quick-check mode).
    pub budget: usize,
    /// CLI names of the base protocols to mutate (see
    /// `protogen_protocols::NAMES`).
    pub protocols: Vec<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            mutants: 100,
            threads: 0,
            budget: 50_000,
            protocols: protogen_protocols::NAMES.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl FuzzConfig {
    /// The worker count actually used.
    pub fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, self.mutants.max(1))
    }
}

/// SplitMix64 — derives one mutant's seed from the fuzz seed and the
/// mutant index, independent of thread assignment.
fn mutant_seed(fuzz_seed: u64, index: usize) -> u64 {
    let mut z = fuzz_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One derived mutant: which base protocol, which generator
/// configuration, and which mutations.
#[derive(Debug, Clone)]
pub struct MutantSpec {
    /// Position in the run.
    pub index: usize,
    /// Index into the run's protocol list.
    pub protocol_idx: usize,
    /// Stalling (`true`) or non-stalling generation.
    pub stalling: bool,
    /// The ordered mutation list (1–3 mutations).
    pub mutations: Vec<Mutation>,
}

/// Derives mutant `index` of a run: a pure function of `(seed, index)`
/// and the (ordered) base-protocol list.
pub fn derive_mutant(seed: u64, index: usize, bases: &[Ssp]) -> MutantSpec {
    let mut rng = StdRng::seed_from_u64(mutant_seed(seed, index));
    let protocol_idx = rng.gen_range(0..bases.len());
    let stalling = rng.gen_bool(0.5);
    let n_muts = 1 + rng.gen_range(0usize..3);
    let mut ssp = bases[protocol_idx].clone();
    let mut mutations = Vec::with_capacity(n_muts);
    for _ in 0..n_muts {
        // Cycle through the catalog from a seeded starting point until an
        // operator with at least one site on the *current* (already
        // mutated) SSP is found.
        let start = rng.gen_range(0..MutOp::ALL.len());
        for k in 0..MutOp::ALL.len() {
            let op = MutOp::ALL[(start + k) % MutOp::ALL.len()];
            let n = site_count(op, &ssp);
            if n == 0 {
                continue;
            }
            let m = Mutation { op, site: rng.gen_range(0..n) };
            apply(&mut ssp, m).expect("site drawn from site_count is in range");
            mutations.push(m);
            break;
        }
    }
    MutantSpec { index, protocol_idx, stalling, mutations }
}

/// A seeded known-bad mutant (or invariant relaxation) the checker
/// *must* catch — the fuzzer's calibration set.
#[derive(Debug, Clone)]
pub struct Control {
    /// Stable control name.
    pub name: &'static str,
    /// What the control injects.
    pub script: Script,
    /// Run the full invariant set even for relaxed protocols (the TSO-CC
    /// relaxation control).
    pub full_invariants: bool,
}

/// The bundled negative controls: the TSO-CC invariant relaxation plus
/// four hand-seeded protocol bugs. A fuzzing run that misses any of them
/// is broken by construction.
pub fn negative_controls() -> Vec<Control> {
    let mutation = |op, site| Mutation { op, site };
    let msi = |mutations| Script { protocol: "msi".into(), stalling: false, mutations };
    vec![
        // TSO-CC trades physical SWMR / data-value freshness by design
        // (§VI-D): under the *full* invariant set it must fail.
        Control {
            name: "tso-cc-relaxation",
            script: Script { protocol: "tso-cc".into(), stalling: false, mutations: vec![] },
            full_invariants: true,
        },
        // S silently gains write permission: two sharers become two
        // writers (SWMR).
        Control {
            name: "msi-s-gains-write-permission",
            script: msi(vec![mutation(MutOp::FlipPermission, 1)]),
            full_invariants: false,
        },
        // The directory's S+GetM reaction is deleted: a store from S hits
        // an unhandled request (completeness).
        Control {
            name: "msi-dir-drops-s-getm",
            script: msi(vec![mutation(MutOp::DropDirReaction, 3)]),
            full_invariants: false,
        },
        // The I-store transaction completes into the wrong stable state.
        Control {
            name: "msi-store-completes-into-wrong-state",
            script: msi(vec![mutation(MutOp::SwapTransitionTarget, 1)]),
            full_invariants: false,
        },
        // The cache's Inv reaction no longer sends Inv-Ack: the upgrading
        // store waits forever (deadlock).
        Control {
            name: "msi-inv-ack-never-sent",
            script: msi(vec![mutation(MutOp::DropAck, 0)]),
            full_invariants: false,
        },
    ]
}

/// A control's result.
#[derive(Debug, Clone)]
pub struct ControlRecord {
    /// The control's name.
    pub name: &'static str,
    /// Outcome label the run produced.
    pub outcome: String,
    /// Property family that caught the control (`swmr`,
    /// `property:<name>`, …), when the checker did the catching.
    pub family: Option<String>,
    /// Outcome detail (violation kind, …).
    pub detail: String,
    /// Whether the checker caught it (`outcome == "rejected-by-checker"`).
    pub caught: bool,
}

/// A shrunk reproducer attached to an unexpected outcome.
#[derive(Debug, Clone)]
pub struct ShrunkCase {
    /// The replayable mutation script.
    pub script: String,
    /// Outcome label of the shrunk reproducer.
    pub outcome: String,
    /// Outcome detail of the shrunk reproducer.
    pub detail: String,
    /// Counterexample trace of the shrunk reproducer, when the checker
    /// produced one.
    pub trace: Vec<String>,
}

/// One mutant's record in the report.
#[derive(Debug, Clone)]
pub struct MutantRecord {
    /// Position in the run.
    pub index: usize,
    /// Base protocol CLI name.
    pub protocol: String,
    /// `"stalling"` or `"non-stalling"`.
    pub config: &'static str,
    /// The applied mutations.
    pub mutations: Vec<Mutation>,
    /// Outcome label.
    pub outcome: String,
    /// Property family that fired (`rejected-by-checker` outcomes only):
    /// a built-in invariant slug or `property:<name>` for a custom
    /// predicate.
    pub family: Option<String>,
    /// Outcome detail.
    pub detail: String,
    /// Present exactly when the outcome was unexpected.
    pub shrunk: Option<ShrunkCase>,
}

/// Classification labels in report order.
pub const LABELS: [&str; 9] = [
    "rejected-at-build",
    "rejected-by-generator",
    "rejected-by-checker",
    "silent-pass",
    "resource-exhausted",
    "generator-panic",
    "exec-violation",
    "checker-panic",
    "mutation-inapplicable",
];

/// The merged result of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The seed the run used.
    pub seed: u64,
    /// The per-mutant state budget.
    pub budget: usize,
    /// The base protocols mutated.
    pub protocols: Vec<String>,
    /// Every mutant, ordered by index.
    pub records: Vec<MutantRecord>,
    /// Every negative control's result.
    pub controls: Vec<ControlRecord>,
}

impl FuzzReport {
    /// `(label, count)` over [`LABELS`], including zero rows.
    pub fn distribution(&self) -> Vec<(&'static str, usize)> {
        LABELS
            .iter()
            .map(|&l| (l, self.records.iter().filter(|r| r.outcome == l).count()))
            .collect()
    }

    /// The mutants whose outcome was unexpected (toolchain bugs).
    pub fn unexpected(&self) -> Vec<&MutantRecord> {
        self.records.iter().filter(|r| r.shrunk.is_some()).collect()
    }

    /// `(family, count)` over the checker-caught mutants: the
    /// property-aware refinement of the `rejected-by-checker` row.
    /// Families are sorted by name, so the breakdown is deterministic for
    /// any thread count.
    pub fn checker_families(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for r in &self.records {
            if let Some(f) = r.family.as_deref() {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        counts.into_iter().map(|(f, c)| (f.to_string(), c)).collect()
    }

    /// Whether every negative control was caught.
    pub fn all_controls_caught(&self) -> bool {
        self.controls.iter().all(|c| c.caught)
    }

    /// The whole run as one deterministic JSON document (no wall-clock
    /// timing: byte-identical for a fixed seed at any thread count).
    pub fn to_json(&self) -> Json {
        let dist = Json::Obj(
            self.distribution()
                .into_iter()
                .map(|(l, c)| (l.to_string(), Json::U64(c as u64)))
                .collect(),
        );
        let families = Json::Obj(
            self.checker_families().into_iter().map(|(f, c)| (f, Json::U64(c as u64))).collect(),
        );
        let controls = Json::Arr(
            self.controls
                .iter()
                .map(|c| {
                    Json::obj([
                        ("name", Json::Str(c.name.to_string())),
                        ("outcome", Json::Str(c.outcome.clone())),
                        ("family", Json::Str(c.family.clone().unwrap_or_default())),
                        ("detail", Json::Str(c.detail.clone())),
                        ("caught", Json::Bool(c.caught)),
                    ])
                })
                .collect(),
        );
        let unexpected = Json::Arr(
            self.unexpected()
                .iter()
                .map(|r| {
                    let s = r.shrunk.as_ref().expect("unexpected() filters on shrunk");
                    Json::obj([
                        ("index", Json::U64(r.index as u64)),
                        ("protocol", Json::Str(r.protocol.clone())),
                        ("config", Json::Str(r.config.to_string())),
                        ("outcome", Json::Str(r.outcome.clone())),
                        ("detail", Json::Str(r.detail.clone())),
                        ("script", Json::Str(s.script.clone())),
                        ("trace", Json::Arr(s.trace.iter().cloned().map(Json::Str).collect())),
                    ])
                })
                .collect(),
        );
        let mutants = Json::Arr(
            self.records
                .iter()
                .map(|r| {
                    let muts =
                        r.mutations.iter().map(|m| m.to_string()).collect::<Vec<_>>().join("; ");
                    Json::obj([
                        ("index", Json::U64(r.index as u64)),
                        ("protocol", Json::Str(r.protocol.clone())),
                        ("config", Json::Str(r.config.to_string())),
                        ("mutations", Json::Str(muts)),
                        ("outcome", Json::Str(r.outcome.clone())),
                        ("family", Json::Str(r.family.clone().unwrap_or_default())),
                        ("detail", Json::Str(r.detail.clone())),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("seed", Json::U64(self.seed)),
            ("mutants", Json::U64(self.records.len() as u64)),
            ("budget", Json::U64(self.budget as u64)),
            ("protocols", Json::Arr(self.protocols.iter().cloned().map(Json::Str).collect())),
            ("distribution", dist),
            ("checker_families", families),
            ("controls_caught", Json::Bool(self.all_controls_caught())),
            ("controls", controls),
            ("unexpected", unexpected),
            ("results", mutants),
        ])
    }
}

/// Runs one control through the pipeline.
fn run_control(c: &Control, bases: &dyn Fn(&str) -> Option<Ssp>, budget: usize) -> ControlRecord {
    let Some(base) = bases(&c.script.protocol) else {
        return ControlRecord {
            name: c.name,
            outcome: "unknown-protocol".into(),
            family: None,
            detail: c.script.protocol.clone(),
            caught: false,
        };
    };
    let r =
        run_mutant(&base, &c.script.mutations, &c.script.gen_config(), budget, c.full_invariants);
    ControlRecord {
        name: c.name,
        outcome: r.outcome.label().to_string(),
        family: r.outcome.family().map(str::to_string),
        detail: r.outcome.detail(),
        caught: matches!(r.outcome, Outcome::Caught { .. }),
    }
}

/// Runs the crash-recovery negative control: a live `serve` run whose
/// crashed cache uses the planted [`unsafe_reset`] recovery bug —
/// dropping its lines without the write-back/invalidate traffic — which
/// the serve-side conformance oracle (protocol error, envelope escape,
/// or a non-quiescent stop reason) must flag. The other controls
/// calibrate the *checker's* oracles; this one calibrates the *live
/// run's*.
///
/// The live run is multi-threaded, so which seed first produces a
/// non-vacuous caught run can vary with scheduling; the record carries
/// only the aggregate verdict and fixed text, keeping the fuzz report
/// byte-identical across thread counts.
///
/// [`unsafe_reset`]: protogen_serve::FaultConfig::unsafe_reset
pub fn run_recovery_control(budget: usize) -> ControlRecord {
    use protogen_serve::{checked_envelope, serve, FaultConfig, ServeConfig, StopReason};

    let name = "serve-crash-recovery-drops-lines";
    let miss = |detail: &str| ControlRecord {
        name,
        outcome: "silent-pass".into(),
        family: None,
        detail: detail.into(),
        caught: false,
    };
    let ssp = protogen_protocols::msi();
    let Ok(g) = protogen_core::generate(&ssp, &protogen_core::GenConfig::non_stalling()) else {
        return miss("base protocol failed to generate");
    };
    // MSI@2 exhausts in well under the default quick-check budget; raise
    // the cap for generous budgets so the envelope is never partial.
    let mut mc_cfg = protogen_mc::McConfig::with_caches(2);
    mc_cfg.max_states = mc_cfg.max_states.max(budget);
    let Ok(envelope) = checked_envelope(&g.cache, &g.directory, mc_cfg) else {
        return miss("envelope verification failed");
    };
    for seed in 0..5u64 {
        let mut cfg = ServeConfig::new(2);
        cfg.dir_shards = 2;
        cfg.n_addrs = 4;
        cfg.total_ops = 8_000;
        cfg.mailbox_cap = 16;
        // Store-heavy: the crashed cache almost surely holds lines to lose.
        cfg.workload = protogen_sim::Workload::Uniform { store_pct: 90 };
        cfg.seed = seed;
        cfg.faults =
            Some(FaultConfig { crashes: 1, unsafe_reset: true, ..FaultConfig::none(seed) });
        let caught = match serve(&g.cache, &g.directory, &cfg) {
            Err(_) => true, // dropped state made a later message unhandleable
            Ok(report) => {
                if report.faults.is_some_and(|f| f.lines_lost == 0) {
                    continue; // vacuous: nothing was held at the crash point
                }
                !report.escapes(&envelope).is_empty() || report.stop_reason != StopReason::Quiesced
            }
        };
        if caught {
            return ControlRecord {
                name,
                outcome: "rejected-by-oracle".into(),
                family: Some("serve-conformance".into()),
                detail: "planted lossy crash recovery flagged by the live-run oracle".into(),
                caught: true,
            };
        }
        return miss("lines were lost but no oracle fired");
    }
    miss("every seed was vacuous (no lines held at the crash point)")
}

/// Runs the composed negative control: MSI-under-MSI 2×2 with the `GetM`
/// glue gate weakened `ReadWrite → Read` (see [`crate::compose`]), checked
/// hierarchically. The flat controls calibrate the flat pipeline; this one
/// calibrates the composition pass and the hierarchical checker.
pub fn run_glue_control(budget: usize) -> ControlRecord {
    let (comp, m) = glue_control();
    let r = run_composed_mutant(&comp, &[m], &protogen_core::GenConfig::stalling(), budget);
    ControlRecord {
        name: "msi-under-msi-glue-getm-weakened",
        outcome: r.outcome.label().to_string(),
        family: r.outcome.family().map(str::to_string),
        detail: r.outcome.detail(),
        caught: matches!(r.outcome, Outcome::Caught { .. }),
    }
}

/// Runs a full fuzzing campaign: every negative control, then `mutants`
/// seeded mutants fanned across [`FuzzConfig::effective_threads`]
/// workers, with every unexpected outcome shrunk to a minimal
/// reproducer.
///
/// # Errors
///
/// Returns an error message when a configured protocol name is unknown.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut bases = Vec::with_capacity(cfg.protocols.len());
    for name in &cfg.protocols {
        let ssp = protogen_protocols::by_name(name).ok_or_else(|| {
            format!("unknown protocol `{name}` (try {})", protogen_protocols::NAMES.join(", "))
        })?;
        bases.push(ssp);
    }
    if bases.is_empty() {
        return Err("no base protocols configured".into());
    }

    let mut controls: Vec<ControlRecord> = negative_controls()
        .iter()
        .map(|c| run_control(c, &|n| protogen_protocols::by_name(n), cfg.budget))
        .collect();
    controls.push(run_glue_control(cfg.budget));
    controls.push(run_recovery_control(cfg.budget));

    let threads = cfg.effective_threads();
    let bases_ref = &bases;
    let worker = |w: usize| -> Vec<MutantRecord> {
        (0..cfg.mutants)
            .filter(|i| i % threads == w)
            .map(|index| {
                let spec = derive_mutant(cfg.seed, index, bases_ref);
                let base = &bases_ref[spec.protocol_idx];
                let gen_cfg = if spec.stalling {
                    protogen_core::GenConfig::stalling()
                } else {
                    protogen_core::GenConfig::non_stalling()
                };
                let r = run_mutant(base, &spec.mutations, &gen_cfg, cfg.budget, false);
                let shrunk = r.outcome.is_unexpected().then(|| {
                    let s = shrink(base, &spec.mutations, &gen_cfg, cfg.budget, r.outcome.label());
                    let script = Script {
                        protocol: cfg.protocols[spec.protocol_idx].clone(),
                        stalling: spec.stalling,
                        mutations: s.mutations.clone(),
                    };
                    ShrunkCase {
                        script: script.render(&format!(
                            "seed {} mutant {} — outcome {}",
                            cfg.seed,
                            index,
                            s.result.outcome.label()
                        )),
                        outcome: s.result.outcome.label().to_string(),
                        detail: s.result.outcome.detail(),
                        trace: s.result.trace,
                    }
                });
                MutantRecord {
                    index,
                    protocol: cfg.protocols[spec.protocol_idx].clone(),
                    config: if spec.stalling { "stalling" } else { "non-stalling" },
                    mutations: spec.mutations,
                    outcome: r.outcome.label().to_string(),
                    family: r.outcome.family().map(str::to_string),
                    detail: r.outcome.detail(),
                    shrunk,
                }
            })
            .collect()
    };

    let mut merged: Vec<Option<MutantRecord>> = Vec::new();
    merged.resize_with(cfg.mutants, || None);
    let per_worker: Vec<Vec<MutantRecord>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || worker(w))).collect();
        handles.into_iter().map(|h| h.join().expect("fuzz worker panicked")).collect()
    });
    for rec in per_worker.into_iter().flatten() {
        let slot = rec.index;
        merged[slot] = Some(rec);
    }
    let records: Vec<MutantRecord> =
        merged.into_iter().map(|r| r.expect("every index sharded to one worker")).collect();

    Ok(FuzzReport {
        seed: cfg.seed,
        budget: cfg.budget,
        protocols: cfg.protocols.clone(),
        records,
        controls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutant_derivation_is_a_pure_function_of_seed_and_index() {
        let bases: Vec<Ssp> = vec![protogen_protocols::msi(), protogen_protocols::mesi()];
        for index in 0..16 {
            let a = derive_mutant(7, index, &bases);
            let b = derive_mutant(7, index, &bases);
            assert_eq!(a.mutations, b.mutations, "mutant {index} drifted");
            assert_eq!(a.protocol_idx, b.protocol_idx);
            assert_eq!(a.stalling, b.stalling);
            assert!(!a.mutations.is_empty() && a.mutations.len() <= 3);
        }
        // Different seeds diverge somewhere in a small window.
        let differs = (0..16).any(|i| {
            derive_mutant(7, i, &bases).mutations != derive_mutant(8, i, &bases).mutations
        });
        assert!(differs, "seed does not influence derivation");
    }

    #[test]
    fn every_negative_control_is_caught() {
        for c in negative_controls() {
            let rec = run_control(&c, &|n| protogen_protocols::by_name(n), 200_000);
            assert!(rec.caught, "{}: {} — {}", c.name, rec.outcome, rec.detail);
            assert!(rec.family.is_some(), "{}: caught without a property family", c.name);
        }
    }

    #[test]
    fn controls_are_caught_by_the_expected_property_families() {
        // The taxonomy is property-aware: each seeded bug names *which*
        // invariant family fired, not just that something did.
        let expected =
            [("msi-s-gains-write-permission", "swmr"), ("msi-inv-ack-never-sent", "deadlock")];
        for (name, family) in expected {
            let c = negative_controls().into_iter().find(|c| c.name == name).unwrap();
            let rec = run_control(&c, &|n| protogen_protocols::by_name(n), 200_000);
            assert_eq!(rec.family.as_deref(), Some(family), "{name}: {}", rec.detail);
        }
    }

    #[test]
    fn recovery_control_is_caught_by_the_live_oracle() {
        let rec = run_recovery_control(20_000);
        assert!(rec.caught, "{}: {} — {}", rec.name, rec.outcome, rec.detail);
        assert_eq!(rec.family.as_deref(), Some("serve-conformance"));
    }

    #[test]
    fn small_run_is_thread_count_invariant() {
        let base = FuzzConfig {
            seed: 3,
            mutants: 12,
            budget: 20_000,
            protocols: vec!["msi".into(), "mesi".into()],
            threads: 1,
        };
        let one = run_fuzz(&base).unwrap();
        let four = run_fuzz(&FuzzConfig { threads: 4, ..base }).unwrap();
        assert_eq!(one.to_json().render(), four.to_json().render());
    }
}
