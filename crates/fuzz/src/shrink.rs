//! Greedy counterexample shrinking: reduce a mutation list to a minimal
//! set that still produces the same outcome class.
//!
//! The fuzzer applies 1–3 mutations per mutant, so the search space is
//! tiny; a greedy delta-debugging loop (try dropping each mutation, keep
//! the drop while the outcome label is preserved, repeat to fixpoint) is
//! exact enough and deterministic.

use crate::harness::{run_mutant, RunResult};
use crate::mutate::Mutation;
use protogen_core::GenConfig;
use protogen_spec::Ssp;

/// A shrunk reproducer: the minimal mutation list plus the rerun that
/// confirms it still produces the target outcome.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal mutation list (never empty unless the base protocol
    /// itself produces the outcome).
    pub mutations: Vec<Mutation>,
    /// The confirming run of the minimal list.
    pub result: RunResult,
}

/// Shrinks `mutations` against `base`, preserving the outcome *label* of
/// the original run (panic messages may differ between equivalent
/// reproducers; the class is what matters).
///
/// Deterministic: the scan order is left to right, restarting after every
/// successful removal, so the result depends only on the inputs.
pub fn shrink(
    base: &Ssp,
    mutations: &[Mutation],
    gen_cfg: &GenConfig,
    budget: usize,
    target_label: &str,
) -> Shrunk {
    let mut current: Vec<Mutation> = mutations.to_vec();
    'outer: loop {
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            let r = run_mutant(base, &candidate, gen_cfg, budget, false);
            if r.outcome.label() == target_label {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    let result = run_mutant(base, &current, gen_cfg, budget, false);
    Shrunk { mutations: current, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{MutOp, Mutation};

    #[test]
    fn shrinking_drops_irrelevant_mutations() {
        // A caught mutation (flip S to ReadWrite) padded with a harmless
        // one (reorder wait arcs): shrinking must isolate the flip.
        let base = protogen_protocols::msi();
        let s = base.cache.state_by_name("S").unwrap();
        let muts = vec![
            Mutation { op: MutOp::ReorderWaitArcs, site: 0 },
            Mutation { op: MutOp::FlipPermission, site: s.as_usize() },
        ];
        let cfg = GenConfig::non_stalling();
        let full = run_mutant(&base, &muts, &cfg, 200_000, false);
        assert_eq!(full.outcome.label(), "rejected-by-checker", "{:?}", full.outcome);
        let shrunk = shrink(&base, &muts, &cfg, 200_000, full.outcome.label());
        assert_eq!(shrunk.mutations.len(), 1, "{:?}", shrunk.mutations);
        assert_eq!(shrunk.mutations[0].op, MutOp::FlipPermission);
        assert_eq!(shrunk.result.outcome.label(), "rejected-by-checker");
    }
}
