//! Composition-aware mutation: perturb the *derived glue* of a composed
//! stack and require the hierarchical checker to notice.
//!
//! The flat operators in [`crate::mutate`] rewrite an SSP before
//! generation; a composed stack has a second attack surface the SSP never
//! sees — the glue the composition pass derives between levels. The
//! operator here weakens one inner message's outer-permission gate
//! (e.g. `GetM: ReadWrite → Read`), which is precisely the read-holding
//! bug class the exclusive-at-parent discipline exists to prevent
//! (DESIGN.md §12): a parent holding only a read copy serves an inner
//! write, and two subtrees end up with incompatible leaf permissions. The
//! seeded negative control pins that the hierarchical checker catches it.

use crate::harness::{panic_message, violation_family, Outcome, RunResult};
use protogen_core::{compose, Composed, GenConfig};
use protogen_mc::{HierChecker, HierConfig, ViolationKind};
use protogen_spec::{Composition, Perm};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One glue mutation: weaken the outer permission that inner message
/// `msg` of glue layer `level` needs at its hosting node before delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlueMutation {
    /// Glue layer index (`0` gates level 0's directory behind level 1's
    /// cache side).
    pub level: usize,
    /// Inner `MsgId` index whose gate is rewritten.
    pub msg: usize,
    /// The weakened requirement.
    pub to: Perm,
}

impl std::fmt::Display for GlueMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "glue[{}].needed_perm[{}] -> {}", self.level, self.msg, self.to)
    }
}

/// Applies `m` to a composed stack's derived glue.
///
/// # Errors
///
/// Returns a message when the site is out of range or the mutation does
/// not actually *weaken* the gate (a no-op or strengthening mutant would
/// silently pass and prove nothing).
pub fn apply_glue(c: &mut Composed, m: GlueMutation) -> Result<(), String> {
    let layers = c.glue.len();
    let glue = c
        .glue
        .get_mut(m.level)
        .ok_or(format!("glue level {} out of range 0..{layers}", m.level))?;
    let slot =
        glue.needed_perm.get_mut(m.msg).ok_or(format!("message index {} out of range", m.msg))?;
    if m.to >= *slot {
        return Err(format!("{} does not weaken the derived gate {}", m.to, *slot));
    }
    *slot = m.to;
    Ok(())
}

/// Runs a composition with `mutations` applied to its derived glue
/// through the hierarchical checker, classifying the outcome exactly as
/// [`crate::run_mutant`] does for flat mutants. Never panics.
pub fn run_composed_mutant(
    comp: &Composition,
    mutations: &[GlueMutation],
    gen_cfg: &GenConfig,
    budget: usize,
) -> RunResult {
    let no_trace = |outcome| RunResult { outcome, trace: Vec::new() };
    let mut composed = match catch_unwind(AssertUnwindSafe(|| compose(comp, gen_cfg))) {
        Ok(Ok(c)) => c,
        Ok(Err(e)) => return no_trace(Outcome::RejectedByGenerator(e.to_string())),
        Err(payload) => return no_trace(Outcome::GeneratorPanic(panic_message(payload))),
    };
    for &m in mutations {
        if let Err(e) = apply_glue(&mut composed, m) {
            return no_trace(Outcome::MutationInapplicable(e));
        }
    }
    let cfg = HierConfig { max_states: budget.max(1), ..HierConfig::default() };
    let result = catch_unwind(AssertUnwindSafe(|| HierChecker::new(&composed, cfg).check()));
    match result {
        Err(payload) => no_trace(Outcome::CheckerPanic(panic_message(payload))),
        Ok(r) => {
            if let Some(v) = r.violation {
                let outcome = match &v.kind {
                    ViolationKind::Exec(d) => Outcome::ExecViolation(d.clone()),
                    kind => {
                        Outcome::Caught { family: violation_family(kind), detail: kind.to_string() }
                    }
                };
                RunResult { outcome, trace: v.trace }
            } else if r.hit_state_limit {
                no_trace(Outcome::ResourceExhausted(format!("state budget of {budget} exhausted")))
            } else {
                no_trace(Outcome::SilentPass { states: r.states, transitions: r.transitions })
            }
        }
    }
}

/// The seeded composed negative control: the 2×2 MSI-under-MSI stack
/// with the `GetM` gate weakened `ReadWrite → Read`. Returns the
/// composition and the mutation so callers (the campaign, tests, CI) run
/// it identically.
pub fn glue_control() -> (Composition, GlueMutation) {
    let comp = protogen_protocols::msi_under_msi(2, 2);
    let getm =
        comp.levels[0].ssp.msg_by_name("GetM").expect("bundled MSI declares GetM").as_usize();
    (comp, GlueMutation { level: 0, msg: getm, to: Perm::Read })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmutated_composition_passes_silently() {
        let (comp, _) = glue_control();
        let r = run_composed_mutant(&comp, &[], &GenConfig::stalling(), 1_000_000);
        assert!(matches!(r.outcome, Outcome::SilentPass { .. }), "{:?}", r.outcome);
    }

    #[test]
    fn weakened_getm_gate_is_caught() {
        // The must-catch control: serving an inner write from a
        // read-holding parent breaks leaf-level coherence, and the
        // checker must say so with a counterexample.
        let (comp, m) = glue_control();
        let r = run_composed_mutant(&comp, &[m], &GenConfig::stalling(), 1_000_000);
        let Outcome::Caught { family, .. } = &r.outcome else {
            panic!("expected a caught violation, got {:?}", r.outcome);
        };
        assert_eq!(family, "swmr", "a weakened write gate must break SWMR");
        assert!(!r.trace.is_empty(), "caught outcomes carry the counterexample");
    }

    #[test]
    fn non_weakening_mutations_are_inapplicable() {
        let (comp, mut m) = glue_control();
        m.to = Perm::ReadWrite; // no-op, not a weakening
        let r = run_composed_mutant(&comp, &[m], &GenConfig::stalling(), 10_000);
        assert!(matches!(r.outcome, Outcome::MutationInapplicable(_)), "{:?}", r.outcome);
        m.msg = 9999;
        let r = run_composed_mutant(&comp, &[m], &GenConfig::stalling(), 10_000);
        assert!(matches!(r.outcome, Outcome::MutationInapplicable(_)), "{:?}", r.outcome);
    }
}
