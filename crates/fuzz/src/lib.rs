//! Mutation-based fuzzing of the ProtoGen generate→check pipeline.
//!
//! The paper's central claim is that `generate` turns *any* well-formed
//! atomic SSP into a safe, deadlock-free concurrent protocol. The bundled
//! protocols only exercise six happy paths; this crate probes everything
//! around them:
//!
//! 1. **Mutate** ([`mutate`]): derive mutants from the bundled SSPs via a
//!    catalog of semantic mutation operators (drop/duplicate a directory
//!    reaction, swap a transition target, flip a permission, reorder
//!    await arcs, drop an acknowledgment, retarget a forward), addressed
//!    by deterministic `(operator, site)` pairs.
//! 2. **Run** ([`harness`]): push each mutant through
//!    `validate → generate → model-check` (2 caches, budgeted
//!    quick-check) with every stage under `catch_unwind`, classifying the
//!    outcome: rejected-at-build, rejected-by-generator,
//!    rejected-by-checker (the oracle working), resource-exhausted,
//!    silent-pass — or the *unexpected* classes (generator panic, checker
//!    panic, exec violation) that evidence toolchain bugs.
//! 3. **Shrink** ([`mod@shrink`]): greedily reduce any unexpected outcome to
//!    a minimal mutation set and emit a replayable mutation script
//!    ([`script`]) plus the checker trace.
//!
//! Batches fan across threads with index-derived seeds (the sweep-sharding
//! discipline of `protogen-sim`): reports are **byte-identical at any
//! thread count**. Seeded negative controls — the TSO-CC invariant
//! relaxation, four hand-planted protocol bugs, and a composed stack with
//! a weakened glue gate ([`mod@compose`]) — calibrate every run: a
//! campaign that misses one is broken by construction.
//!
//! # Example
//!
//! ```
//! use protogen_fuzz::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig {
//!     mutants: 4,
//!     threads: 2,
//!     protocols: vec!["msi".into()],
//!     ..FuzzConfig::default()
//! })
//! .unwrap();
//! assert!(report.all_controls_caught());
//! assert_eq!(report.records.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod harness;
pub mod mutate;
pub mod script;
pub mod shrink;

mod run;

pub use compose::{apply_glue, glue_control, run_composed_mutant, GlueMutation};
pub use harness::{quick_check_config, run_mutant, Outcome, RunResult};
pub use mutate::{apply, apply_all, site_count, Inapplicable, MutOp, Mutation};
pub use run::{
    derive_mutant, negative_controls, run_fuzz, run_glue_control, run_recovery_control, Control,
    ControlRecord, FuzzConfig, FuzzReport, MutantRecord, MutantSpec, ShrunkCase, LABELS,
};
pub use script::{Script, ScriptError};
pub use shrink::{shrink, Shrunk};
