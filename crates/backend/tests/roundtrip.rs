//! Round-trip coverage for the export back-ends: every state and message
//! of the MSI tables must survive rendering, identical FSMs must diff
//! clean, and the DOT/Murϕ emitters must mention every state they were
//! given.

use protogen_backend::{diff, render_ssp_table, render_table, to_dot, to_murphi, TableOptions};
use protogen_core::{generate, GenConfig};
use protogen_spec::MachineKind;

/// Table I round-trip: every cache stable state is a row and every
/// access/handled message is a column of the rendered atomic table.
#[test]
fn ssp_table_roundtrips_msi_cache_rows_and_columns() {
    let ssp = protogen_protocols::msi();
    let t = render_ssp_table(&ssp, MachineKind::Cache);
    let header = t.lines().next().expect("table has a header");
    for col in ["load", "store", "replacement", "Fwd_GetS", "Fwd_GetM", "Inv"] {
        assert!(header.contains(col), "column {col} missing from:\n{t}");
    }
    for st in &ssp.cache.states {
        assert!(
            t.lines().any(|l| l.starts_with(&format!("{} ", st.name))),
            "row {} missing from:\n{t}",
            st.name
        );
    }
    // Cell spot-checks straight from Table I.
    let row = |name: &str| t.lines().find(|l| l.starts_with(name)).unwrap().to_string();
    assert!(row("S ").contains("hit"), "S row allows load hits");
    assert!(row("I ").contains("GetS"), "I load issues GetS");
    assert!(row("M ").contains("Data>Req"), "M serves forwarded readers");
}

/// Table II round-trip: same for the directory machine.
#[test]
fn ssp_table_roundtrips_msi_directory_rows_and_columns() {
    let ssp = protogen_protocols::msi();
    let t = render_ssp_table(&ssp, MachineKind::Directory);
    let header = t.lines().next().expect("table has a header");
    for col in ["GetS", "GetM", "PutS", "PutM"] {
        assert!(header.contains(col), "column {col} missing from:\n{t}");
    }
    for st in &ssp.directory.states {
        assert!(
            t.lines().any(|l| l.starts_with(&format!("{} ", st.name))),
            "row {} missing from:\n{t}",
            st.name
        );
    }
    // M+GetS is a blocking transaction: the renderer marks it `..`.
    assert!(t.lines().find(|l| l.starts_with("M ")).unwrap().contains(".."));
}

/// Generated-table round-trip: every state (including merged names) of
/// both generated MSI controllers appears as a row.
#[test]
fn generated_table_roundtrips_every_state() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    for fsm in [&g.cache, &g.directory] {
        let t = render_table(fsm, &TableOptions::default());
        for st in &fsm.states {
            assert!(
                t.lines().any(|l| l.starts_with(&st.full_name())),
                "row {} missing from:\n{t}",
                st.full_name()
            );
        }
    }
}

/// Markdown mode emits a well-formed pipe table: every row has the same
/// column count as the header.
#[test]
fn markdown_table_is_rectangular() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::stalling()).unwrap();
    let opts = TableOptions { markdown: true, ..TableOptions::default() };
    let t = render_table(&g.cache, &opts);
    let cols: Vec<usize> = t.lines().map(|l| l.matches('|').count()).collect();
    assert!(cols.len() > 3, "table too short:\n{t}");
    assert!(
        cols.iter().all(|&c| c == cols[0]),
        "ragged markdown table (pipe counts {cols:?}):\n{t}"
    );
}

/// `diff` of a machine against itself reports no differences, for every
/// protocol, both machines, both configurations.
#[test]
fn diff_of_identical_fsms_is_empty() {
    for ssp in protogen_protocols::all() {
        for cfg in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &cfg).unwrap();
            for fsm in [&g.cache, &g.directory] {
                let d = diff(fsm, fsm);
                assert!(d.is_empty(), "{}: self-diff not empty: {d:?}", ssp.name);
            }
        }
    }
}

/// `diff` between two *regenerations* of the same protocol is also empty —
/// generation is deterministic, so the export layer sees identical input.
#[test]
fn diff_of_regenerated_fsms_is_empty() {
    let a = generate(&protogen_protocols::mesi(), &GenConfig::non_stalling()).unwrap();
    let b = generate(&protogen_protocols::mesi(), &GenConfig::non_stalling()).unwrap();
    assert!(diff(&a.cache, &b.cache).is_empty());
    assert!(diff(&a.directory, &b.directory).is_empty());
}

/// DOT output mentions every state and is syntactically bracketed.
#[test]
fn dot_mentions_every_state() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    let d = to_dot(&g.cache);
    assert!(d.starts_with("digraph"), "{d}");
    assert_eq!(d.matches('{').count(), d.matches('}').count());
    for st in &g.cache.states {
        assert!(d.contains(&st.full_name()), "{} missing from DOT", st.full_name());
    }
}

/// The Murϕ emitter covers both machines' states and the invariant set.
#[test]
fn murphi_covers_states_and_invariants() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    let m = to_murphi(&g.cache, &g.directory, 3);
    assert!(m.contains("scalarset"));
    assert!(m.contains("invariant \"SWMR\""));
    for st in &g.cache.states {
        // The emitter uses the sanitized base name (no `=`/`+` merge
        // aliases — those are not Murphi identifiers).
        let murphi_name = st.name.replace(['=', '+'], "_");
        assert!(m.contains(&murphi_name), "{murphi_name} missing from Murphi");
    }
}
