//! Structural comparison of two generated FSMs (the paper's §VI-B
//! generated-vs-primer methodology).

use protogen_spec::{ArcKind, Event, Fsm};
use std::collections::{BTreeMap, BTreeSet};

/// Differences between two controllers.
#[derive(Debug, Clone, Default)]
pub struct FsmDiff {
    /// State names only in the left machine.
    pub only_left: Vec<String>,
    /// State names only in the right machine.
    pub only_right: Vec<String>,
    /// `(state, event)` pairs where one machine stalls and the other acts —
    /// the "stalls less often" comparison of §VI-B.
    pub stall_differences: Vec<String>,
}

impl FsmDiff {
    /// No differences at all.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty() && self.stall_differences.is_empty()
    }
}

/// Compares two FSMs by state name (including merged aliases) and by
/// stall behaviour on common states.
pub fn diff(left: &Fsm, right: &Fsm) -> FsmDiff {
    let names = |f: &Fsm| -> BTreeSet<String> {
        f.states
            .iter()
            .flat_map(|s| {
                let mut v = vec![s.name.clone()];
                v.extend(s.merged_names.iter().cloned());
                v
            })
            .collect()
    };
    let ln = names(left);
    let rn = names(right);
    let mut d = FsmDiff {
        only_left: ln.difference(&rn).cloned().collect(),
        only_right: rn.difference(&ln).cloned().collect(),
        ..FsmDiff::default()
    };
    for name in ln.intersection(&rn) {
        let (Some(ls), Some(rs)) = (left.state_by_name(name), right.state_by_name(name)) else {
            continue;
        };
        // Compare stall behaviour per event, keyed by message name so the
        // machines may use different message id spaces. Guarded entries can
        // legitimately mix stalling and acting arcs on one (state, event)
        // pair, so aggregate per label: a difference exists only when one
        // machine stalls on an event the other handles without ever
        // stalling.
        let events = |f: &Fsm, s| -> BTreeMap<String, (bool, bool)> {
            let mut m: BTreeMap<String, (bool, bool)> = BTreeMap::new();
            for a in f.arcs.iter().filter(|a| a.from == s) {
                let label = match a.event {
                    Event::Access(acc) => acc.to_string(),
                    Event::Msg(m) => f.msg(m).name.clone(),
                };
                let entry = m.entry(label).or_default();
                if a.kind == ArcKind::Stall {
                    entry.0 = true;
                } else {
                    entry.1 = true;
                }
            }
            m
        };
        let revents = events(right, rs);
        for (label, (lstall, lact)) in events(left, ls) {
            let Some(&(rstall, ract)) = revents.get(&label) else { continue };
            if lstall && !rstall && ract {
                d.stall_differences.push(format!("{name} + {label}: left stalls, right acts"));
            }
            if rstall && !lstall && lact {
                d.stall_differences.push(format!("{name} + {label}: right stalls, left acts"));
            }
        }
    }
    d.stall_differences.sort();
    d.stall_differences.dedup();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{generate, GenConfig};

    #[test]
    fn identical_machines_have_empty_diff() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        assert!(diff(&g.cache, &g.cache).is_empty());
    }

    #[test]
    fn nonstalling_stalls_less_than_stalling() {
        // §VI-B's central comparison: the non-stalling protocol acts where
        // the stalling one stalls (IM_AD + Fwd_GetS and friends).
        let ssp = protogen_protocols::msi();
        let st = generate(&ssp, &GenConfig::stalling()).unwrap();
        let ns = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let d = diff(&st.cache, &ns.cache);
        // The non-stalling machine has extra chain states.
        assert!(d.only_right.iter().any(|n| n == "IM_AD_S"), "{:?}", d.only_right);
        // And acts where the stalling machine stalls.
        assert!(
            d.stall_differences.iter().any(|s| s.contains("IM_AD + ") && s.contains("left stalls")),
            "{:?}",
            d.stall_differences
        );
    }
}
