//! Structural comparison of two generated FSMs (the paper's §VI-B
//! generated-vs-primer methodology).

use protogen_spec::{ArcKind, Event, Fsm};
use std::collections::BTreeSet;

/// Differences between two controllers.
#[derive(Debug, Clone, Default)]
pub struct FsmDiff {
    /// State names only in the left machine.
    pub only_left: Vec<String>,
    /// State names only in the right machine.
    pub only_right: Vec<String>,
    /// `(state, event)` pairs where one machine stalls and the other acts —
    /// the "stalls less often" comparison of §VI-B.
    pub stall_differences: Vec<String>,
}

impl FsmDiff {
    /// No differences at all.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty()
            && self.only_right.is_empty()
            && self.stall_differences.is_empty()
    }
}

/// Compares two FSMs by state name (including merged aliases) and by
/// stall behaviour on common states.
pub fn diff(left: &Fsm, right: &Fsm) -> FsmDiff {
    let names = |f: &Fsm| -> BTreeSet<String> {
        f.states
            .iter()
            .flat_map(|s| {
                let mut v = vec![s.name.clone()];
                v.extend(s.merged_names.iter().cloned());
                v
            })
            .collect()
    };
    let ln = names(left);
    let rn = names(right);
    let mut d = FsmDiff {
        only_left: ln.difference(&rn).cloned().collect(),
        only_right: rn.difference(&ln).cloned().collect(),
        ..FsmDiff::default()
    };
    for name in ln.intersection(&rn) {
        let (Some(ls), Some(rs)) = (left.state_by_name(name), right.state_by_name(name)) else {
            continue;
        };
        // Compare stall behaviour per event, keyed by message name so the
        // machines may use different message id spaces.
        let events = |f: &Fsm, s| -> Vec<(String, bool)> {
            f.arcs
                .iter()
                .filter(|a| a.from == s)
                .map(|a| {
                    let label = match a.event {
                        Event::Access(acc) => acc.to_string(),
                        Event::Msg(m) => f.msg(m).name.clone(),
                    };
                    (label, a.kind == ArcKind::Stall)
                })
                .collect()
        };
        for (label, lstall) in events(left, ls) {
            for (rlabel, rstall) in events(right, rs) {
                if label == rlabel && lstall != rstall {
                    let (staller, actor) = if lstall { ("left", "right") } else { ("right", "left") };
                    d.stall_differences.push(format!(
                        "{name} + {label}: {staller} stalls, {actor} acts"
                    ));
                }
            }
        }
    }
    d.stall_differences.sort();
    d.stall_differences.dedup();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{generate, GenConfig};

    #[test]
    fn identical_machines_have_empty_diff() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        assert!(diff(&g.cache, &g.cache).is_empty());
    }

    #[test]
    fn nonstalling_stalls_less_than_stalling() {
        // §VI-B's central comparison: the non-stalling protocol acts where
        // the stalling one stalls (IM_AD + Fwd_GetS and friends).
        let ssp = protogen_protocols::msi();
        let st = generate(&ssp, &GenConfig::stalling()).unwrap();
        let ns = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let d = diff(&st.cache, &ns.cache);
        // The non-stalling machine has extra chain states.
        assert!(d.only_right.iter().any(|n| n == "IM_AD_S"), "{:?}", d.only_right);
        // And acts where the stalling machine stalls.
        assert!(
            d.stall_differences.iter().any(|s| s.contains("IM_AD + ") && s.contains("left stalls")),
            "{:?}",
            d.stall_differences
        );
    }
}
