//! Render a generated FSM as a table in the style of the paper's Table VI.

use protogen_spec::{Access, AccessSummary, ArcKind, ArcNote, Event, Fsm, Guard, MsgClass};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Hide synthesized defensive stale-forward handlers (the paper's
    /// tables omit them).
    pub hide_defensive: bool,
    /// Produce Markdown (`|`-delimited) instead of aligned ASCII.
    pub markdown: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { hide_defensive: true, markdown: false }
    }
}

/// Renders `fsm` as a state × event table.
///
/// Columns: the three accesses (for caches), then one column per message
/// the machine reacts to, splitting messages that carry an acknowledgment
/// count into `(last)` / `(not last)` sub-columns the way the primer's
/// tables split `Data (ack=0)` from `Data (ack>0)` and `Inv-Ack` from
/// `Last-Inv-Ack`.
pub fn render_table(fsm: &Fsm, opts: &TableOptions) -> String {
    // Columns: accesses + every message with at least one arc.
    let mut msg_cols: Vec<protogen_spec::MsgId> = Vec::new();
    for a in &fsm.arcs {
        if let Event::Msg(m) = a.event {
            if opts.hide_defensive && a.note == ArcNote::Defensive {
                continue;
            }
            if !msg_cols.contains(&m) {
                msg_cols.push(m);
            }
        }
    }
    msg_cols.sort_by_key(|m| {
        let d = fsm.msg(*m);
        (
            match d.class {
                MsgClass::Forward => 0,
                MsgClass::Response => 1,
                MsgClass::Request => 2,
            },
            m.as_usize(),
        )
    });

    let is_cache = fsm.machine == protogen_spec::MachineKind::Cache;
    let mut headers: Vec<String> = vec!["State".into()];
    if is_cache {
        headers.extend(["load", "store", "repl"].map(String::from));
    }
    for &m in &msg_cols {
        headers.push(fsm.msg(m).name.clone());
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        let mut row = vec![st.full_name()];
        if is_cache {
            for access in Access::ALL {
                row.push(match fsm.access_summary(sid, access) {
                    AccessSummary::Hit => "hit".into(),
                    AccessSummary::Stall => "stall".into(),
                    AccessSummary::Issue(to) => {
                        let target = fsm.state(to).full_name();
                        let req = fsm
                            .arcs_for(sid, Event::Access(access))
                            .first()
                            .and_then(|a| first_send_name(fsm, &a.actions))
                            .unwrap_or_default();
                        if req.is_empty() {
                            format!("/{target}")
                        } else {
                            format!("{req}/{target}")
                        }
                    }
                    AccessSummary::Undefined => String::new(),
                });
            }
        }
        for &m in &msg_cols {
            let arcs = fsm.arcs_for(sid, Event::Msg(m));
            let mut cells = Vec::new();
            for a in arcs {
                if opts.hide_defensive && a.note == ArcNote::Defensive {
                    continue;
                }
                let mut cell = String::new();
                if !a.guards.is_empty() {
                    let gs: Vec<String> = a.guards.iter().map(render_guard).collect();
                    cell.push_str(&format!("[{}] ", gs.join("&")));
                }
                if a.kind == ArcKind::Stall {
                    cell.push_str("stall");
                } else {
                    let sends: Vec<String> = a
                        .actions
                        .iter()
                        .filter_map(|act| match act {
                            protogen_spec::Action::Send(sp) => {
                                Some(format!("{}>{}", fsm.msg(sp.msg).name, sp.dst))
                            }
                            _ => None,
                        })
                        .collect();
                    if !sends.is_empty() {
                        cell.push_str(&sends.join(","));
                    }
                    if a.to != sid {
                        cell.push_str(&format!("/{}", fsm.state(a.to).full_name()));
                    } else if sends.is_empty() {
                        cell.push('-');
                    }
                }
                cells.push(cell);
            }
            // `|` inside a cell would break the Markdown table grid.
            row.push(cells.join(if opts.markdown { " ; " } else { " | " }));
        }
        rows.push(row);
    }

    layout(&headers, &rows, opts.markdown)
}

fn render_guard(g: &Guard) -> String {
    g.to_string()
}

fn first_send_name(fsm: &Fsm, actions: &[protogen_spec::Action]) -> Option<String> {
    actions.iter().find_map(|a| match a {
        protogen_spec::Action::Send(sp) => Some(fsm.msg(sp.msg).name.clone()),
        _ => None,
    })
}

fn layout(headers: &[String], rows: &[Vec<String>], markdown: bool) -> String {
    let ncols = headers.len();
    let mut widths = vec![0usize; ncols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let sep = if markdown { " | " } else { "  " };
    let edge = if markdown { "| " } else { "" };
    let edge_r = if markdown { " |" } else { "" };
    let line = |cells: &[String], out: &mut String| {
        out.push_str(edge);
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:w$}", c, w = widths[i]));
            if i + 1 < ncols {
                out.push_str(sep);
            }
        }
        out.push_str(edge_r);
        out.push('\n');
    };
    line(headers, &mut out);
    if markdown {
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&dashes, &mut out);
    } else {
        let total: usize = widths.iter().sum::<usize>() + sep.len() * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
    }
    for row in rows {
        line(row, &mut out);
    }
    out
}

/// Renders the atomic SSP of one machine as a table (the paper's Tables I
/// and II).
pub fn render_ssp_table(ssp: &protogen_spec::Ssp, kind: protogen_spec::MachineKind) -> String {
    use protogen_spec::{Effect, Trigger};
    let m = ssp.machine(kind);
    let mut headers: Vec<String> = vec!["State".into()];
    let mut triggers: Vec<Trigger> = Vec::new();
    if kind == protogen_spec::MachineKind::Cache {
        for a in Access::ALL {
            triggers.push(Trigger::Access(a));
            headers.push(a.to_string());
        }
    }
    for mid in ssp.msg_ids() {
        let t = Trigger::Msg(mid);
        if m.entries.iter().any(|e| e.trigger == t) {
            triggers.push(t);
            headers.push(ssp.msg(mid).name.clone());
        }
    }
    let mut rows = Vec::new();
    for sid in m.state_ids() {
        let mut row = vec![m.state(sid).name.clone()];
        for &t in &triggers {
            let entries = m.entries_for(sid, t);
            let cells: Vec<String> = entries
                .iter()
                .map(|e| {
                    let mut cell = String::new();
                    if !e.guards.is_empty() {
                        let gs: Vec<String> = e.guards.iter().map(render_guard).collect();
                        cell.push_str(&format!("[{}] ", gs.join("&")));
                    }
                    match &e.effect {
                        Effect::Local { actions, next } => {
                            let sends: Vec<String> = actions
                                .iter()
                                .filter_map(|a| match a {
                                    protogen_spec::Action::Send(sp) => {
                                        Some(format!("{}>{}", ssp.msg(sp.msg).name, sp.dst))
                                    }
                                    protogen_spec::Action::PerformAccess => Some("hit".into()),
                                    _ => None,
                                })
                                .collect();
                            cell.push_str(&sends.join(","));
                            if let Some(n) = next {
                                cell.push_str(&format!("/{}", m.state(*n).name));
                            }
                        }
                        Effect::Issue { request, chain } => {
                            if let Some(r) = first_send_name_ssp(ssp, request) {
                                cell.push_str(&r);
                            }
                            let finals: Vec<String> = chain
                                .final_states()
                                .iter()
                                .map(|f| m.state(*f).name.clone())
                                .collect();
                            cell.push_str(&format!("../{}", finals.join("|")));
                        }
                    }
                    cell
                })
                .collect();
            row.push(cells.join(" | "));
        }
        rows.push(row);
    }
    layout(&headers, &rows, false)
}

fn first_send_name_ssp(
    ssp: &protogen_spec::Ssp,
    actions: &[protogen_spec::Action],
) -> Option<String> {
    actions.iter().find_map(|a| match a {
        protogen_spec::Action::Send(sp) => Some(ssp.msg(sp.msg).name.clone()),
        _ => None,
    })
}

/// Renders a composed stack as one table section per level, leaf-first:
/// the level header, the cache- and directory-side tables, and (for
/// non-root levels) the derived glue — which outer permission each inner
/// message needs at the hosting node before it may be delivered.
pub fn render_composed_table(c: &protogen_core::Composed, opts: &TableOptions) -> String {
    let mut out = String::new();
    for (j, l) in c.levels.iter().enumerate() {
        let title = format!(
            "level {j}: {} — {} (fanout {}, {} node{})",
            l.label,
            l.generated.cache.protocol,
            l.fanout,
            c.node_count(j),
            if c.node_count(j) == 1 { "" } else { "s" }
        );
        if opts.markdown {
            out.push_str(&format!("## {title}\n\n### cache side\n\n"));
        } else {
            out.push_str(&format!("=== {title} ===\n\n--- cache side ---\n"));
        }
        out.push_str(&render_table(&l.generated.cache, opts));
        out.push_str(if opts.markdown {
            "\n### directory side\n\n"
        } else {
            "\n--- directory side ---\n"
        });
        out.push_str(&render_table(&l.generated.directory, opts));
        if let Some(glue) = c.glue.get(j) {
            out.push_str(if opts.markdown {
                "\n### glue (outer permission gate)\n\n"
            } else {
                "\n--- glue (outer permission gate) ---\n"
            });
            let dir = &l.generated.directory;
            for (i, perm) in glue.needed_perm.iter().enumerate() {
                let mid = protogen_spec::MsgId(i as u16);
                let name = &dir.msg(mid).name;
                let line = match perm {
                    protogen_spec::Perm::None => format!("{name}: always deliverable"),
                    p => format!(
                        "{name}: hosting node must hold {p} in {} (acquired by {:?})",
                        c.levels[j + 1].label,
                        glue.acquire_access(mid).unwrap()
                    ),
                };
                if opts.markdown {
                    out.push_str(&format!("- {line}\n"));
                } else {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{compose, generate, GenConfig};

    #[test]
    fn table_contains_paper_states_and_cells() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let t = render_table(&g.cache, &TableOptions::default());
        // Table VI anchor points.
        assert!(t.contains("IM_AD_S"), "{t}");
        assert!(t.contains("IM_A_S=SM_A_S"), "{t}");
        assert!(t.contains("IS_D_I"), "{t}");
        // SMAD processes a Case-1 Inv by acknowledging and restarting at
        // IM_AD (Figure 1 of the paper).
        let smad_row: &str = t.lines().find(|l| l.starts_with("SM_AD ")).unwrap();
        assert!(smad_row.contains("Inv_Ack>Req/IM_AD"), "{smad_row}");
    }

    #[test]
    fn ssp_table_matches_table_i() {
        let ssp = protogen_protocols::msi();
        let t = render_ssp_table(&ssp, protogen_spec::MachineKind::Cache);
        assert!(t.contains("GetS"));
        let s_row: &str = t.lines().find(|l| l.starts_with("S ")).unwrap();
        assert!(s_row.contains("hit"));
    }

    #[test]
    fn composed_table_has_one_section_per_level_with_glue() {
        let comp = protogen_protocols::msi_under_msi(2, 2);
        let c = compose(&comp, &GenConfig::stalling()).unwrap();
        let t = render_composed_table(&c, &TableOptions::default());
        assert!(t.contains("=== level 0: l1 — MSI (fanout 2, 4 nodes) ==="), "{t}");
        assert!(t.contains("=== level 1: llc — MSI (fanout 2, 2 nodes) ==="), "{t}");
        // The leaf level carries the glue gate; the root level has none.
        assert!(t.contains("glue (outer permission gate)"));
        assert!(t.contains("must hold RW in llc"), "{t}");
        assert_eq!(t.matches("--- cache side ---").count(), 2);
        assert_eq!(t.matches("glue (outer permission gate)").count(), 1);
    }

    #[test]
    fn markdown_mode_emits_pipes() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::stalling()).unwrap();
        let t = render_table(&g.directory, &TableOptions { markdown: true, hide_defensive: true });
        assert!(t.starts_with("| "));
    }
}
