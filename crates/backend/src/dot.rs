//! Graphviz DOT export of generated FSMs (Figures 1 and 2 of the paper are
//! state-transition diagrams of this shape).

use protogen_spec::{ArcKind, ArcNote, Event, Fsm};
use std::fmt::Write as _;

/// Renders `fsm` as a DOT digraph. Stable states are drawn as double
/// circles; stall entries and defensive handlers are omitted for
/// readability.
pub fn to_dot(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_{}\" {{", fsm.protocol, fsm.machine);
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, s) in fsm.states.iter().enumerate() {
        let shape = if s.is_stable() { "doublecircle" } else { "ellipse" };
        let _ = writeln!(out, "  q{i} [label=\"{}\", shape={shape}];", s.full_name());
    }
    for a in &fsm.arcs {
        if a.kind == ArcKind::Stall || a.note == ArcNote::Defensive {
            continue;
        }
        let label = match a.event {
            Event::Access(acc) => acc.to_string(),
            Event::Msg(m) => fsm.msg(m).name.clone(),
        };
        let style = match a.note {
            ArcNote::Case1 => ", color=red",
            ArcNote::Case2 => ", color=blue",
            ArcNote::Completion => ", color=darkgreen",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  q{} -> q{} [label=\"{label}\"{style}];",
            a.from.as_usize(),
            a.to.as_usize()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the topology of a composed stack as a DOT digraph: one cluster
/// per machine level (leaf caches at the bottom, the root directory at the
/// top), a solid edge from every node to the directory serving it, and a
/// dashed glue edge per hosting node labelled with the outer acquisition
/// its inner requests force (DESIGN.md §12).
pub fn to_dot_composed(c: &protogen_core::Composed) -> String {
    let depth = c.depth();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_topology\" {{", c.name);
    let _ = writeln!(out, "  rankdir=BT;");
    for jm in 0..=depth {
        let _ = writeln!(out, "  subgraph cluster_m{jm} {{");
        let label = if jm == depth {
            "root directory".to_string()
        } else {
            let l = &c.levels[jm];
            format!("{} — {} (fanout {})", l.label, l.generated.cache.protocol, l.fanout)
        };
        let _ = writeln!(out, "    label=\"{label}\";");
        for g in 0..c.node_count(jm) {
            let role = if jm == depth {
                format!("dir {}", c.levels[depth - 1].label)
            } else if jm == 0 {
                format!("{} cache", c.levels[0].label)
            } else {
                // Interior nodes are both sides at once.
                format!("{} dir / {} cache", c.levels[jm - 1].label, c.levels[jm].label)
            };
            let _ = writeln!(out, "    m{jm}_{g} [label=\"L{jm}.{g}\\n{role}\", shape=box];");
        }
        let _ = writeln!(out, "  }}");
    }
    // Subnet membership: each node talks to the directory its parent hosts.
    for jm in 0..depth {
        let fanout = c.levels[jm].fanout;
        for g in 0..c.node_count(jm) {
            let _ = writeln!(out, "  m{jm}_{g} -> m{}_{};", jm + 1, g / fanout);
        }
    }
    // Glue: a node hosting the level-`j` directory acquires through its
    // own outer cache machine before inner requests may be delivered.
    for (j, glue) in c.glue.iter().enumerate() {
        let inner = &c.levels[j].generated.directory;
        let mut needs: Vec<String> = Vec::new();
        for (i, perm) in glue.needed_perm.iter().enumerate() {
            if *perm != protogen_spec::Perm::None {
                needs.push(format!("{}⇒{perm}", inner.msg(protogen_spec::MsgId(i as u16)).name));
            }
        }
        let jm = j + 1;
        let fanout = c.levels[jm].fanout;
        for g in 0..c.node_count(jm) {
            let _ = writeln!(
                out,
                "  m{jm}_{g} -> m{}_{} [label=\"glue: {}\", style=dashed];",
                jm + 1,
                g / fanout,
                needs.join(", ")
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{compose, generate, GenConfig};

    #[test]
    fn composed_dot_emits_level_clusters_and_dashed_glue() {
        let comp = protogen_protocols::msi_under_mesi(2, 2);
        let c = compose(&comp, &GenConfig::stalling()).unwrap();
        let d = to_dot_composed(&c);
        assert!(d.starts_with("digraph"));
        // One cluster per machine level plus the root.
        assert!(d.contains("subgraph cluster_m0"));
        assert!(d.contains("subgraph cluster_m1"));
        assert!(d.contains("subgraph cluster_m2"));
        assert!(d.contains("l1 — MSI (fanout 2)"));
        assert!(d.contains("llc — MESI (fanout 2)"));
        // Four leaves feed two interior nodes feeding one root.
        assert!(d.contains("m0_3 -> m1_1;"));
        assert!(d.contains("m1_1 -> m2_0;"));
        // Glue edges are dashed and name the forced acquisition.
        assert!(d.contains("style=dashed"));
        assert!(d.contains("glue: "), "{d}");
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let d = to_dot(&g.cache);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("doublecircle"));
        assert!(d.trim_end().ends_with('}'));
        // Figure 1's transition is present: SM_AD --Inv--> IM_AD.
        let smad = g.cache.state_by_name("SM_AD").unwrap().as_usize();
        let imad = g.cache.state_by_name("IM_AD").unwrap().as_usize();
        assert!(d.contains(&format!("q{smad} -> q{imad} [label=\"Inv\"")));
    }
}
