//! Graphviz DOT export of generated FSMs (Figures 1 and 2 of the paper are
//! state-transition diagrams of this shape).

use protogen_spec::{ArcKind, ArcNote, Event, Fsm};
use std::fmt::Write as _;

/// Renders `fsm` as a DOT digraph. Stable states are drawn as double
/// circles; stall entries and defensive handlers are omitted for
/// readability.
pub fn to_dot(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_{}\" {{", fsm.protocol, fsm.machine);
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, s) in fsm.states.iter().enumerate() {
        let shape = if s.is_stable() { "doublecircle" } else { "ellipse" };
        let _ = writeln!(out, "  q{i} [label=\"{}\", shape={shape}];", s.full_name());
    }
    for a in &fsm.arcs {
        if a.kind == ArcKind::Stall || a.note == ArcNote::Defensive {
            continue;
        }
        let label = match a.event {
            Event::Access(acc) => acc.to_string(),
            Event::Msg(m) => fsm.msg(m).name.clone(),
        };
        let style = match a.note {
            ArcNote::Case1 => ", color=red",
            ArcNote::Case2 => ", color=blue",
            ArcNote::Completion => ", color=darkgreen",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  q{} -> q{} [label=\"{label}\"{style}];",
            a.from.as_usize(),
            a.to.as_usize()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{generate, GenConfig};

    #[test]
    fn dot_output_is_wellformed() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let d = to_dot(&g.cache);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("doublecircle"));
        assert!(d.trim_end().ends_with('}'));
        // Figure 1's transition is present: SM_AD --Inv--> IM_AD.
        let smad = g.cache.state_by_name("SM_AD").unwrap().as_usize();
        let imad = g.cache.state_by_name("IM_AD").unwrap().as_usize();
        assert!(d.contains(&format!("q{smad} -> q{imad} [label=\"Inv\"")));
    }
}
