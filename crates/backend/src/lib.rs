//! Export back-ends for generated protocols.
//!
//! * [`render_table`] / [`render_ssp_table`] — the paper's table format
//!   (Tables I, II and VI);
//! * [`diff`] — structural comparison of two controllers (the §VI-B
//!   generated-vs-primer methodology);
//! * [`to_dot`] / [`to_dot_composed`] — Graphviz diagrams (Figures 1 and
//!   2; composed-stack topology with dashed glue edges);
//! * [`render_composed_table`] — one table section per composition level;
//! * [`to_murphi`] — Murϕ model text (§IV-B's verification back-end).
//!
//! # Example
//!
//! ```
//! use protogen_core::{generate, GenConfig};
//! use protogen_backend::{render_table, TableOptions};
//!
//! let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
//! let table = render_table(&g.cache, &TableOptions::default());
//! assert!(table.contains("IM_AD"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod dot;
mod murphi;
mod table;

pub use diff::{diff, FsmDiff};
pub use dot::{to_dot, to_dot_composed};
pub use murphi::to_murphi;
pub use table::{render_composed_table, render_ssp_table, render_table, TableOptions};
