//! Benchmarks regenerating the paper's tables and figures (E1–E7, E13, E14
//! of DESIGN.md). Each harness first prints the reproduced artifact, then
//! measures the generation machinery behind it. §VI-E reports generation
//! runtimes "well less than one second"; these benches quantify ours.

use criterion::{criterion_group, criterion_main, Criterion};
use protogen_backend::{render_ssp_table, render_table, TableOptions};
use protogen_core::{generate, preprocess, GenConfig};
use protogen_spec::MachineKind;
use std::hint::black_box;

fn table1_2_atomic_msi(c: &mut Criterion) {
    let ssp = protogen_protocols::msi();
    println!("\n=== Table I: atomic MSI cache specification ===");
    println!("{}", render_ssp_table(&ssp, MachineKind::Cache));
    println!("=== Table II: atomic MSI directory specification ===");
    println!("{}", render_ssp_table(&ssp, MachineKind::Directory));
    c.bench_function("table1_2/render_atomic_msi", |b| {
        b.iter(|| {
            black_box(render_ssp_table(&ssp, MachineKind::Cache));
            black_box(render_ssp_table(&ssp, MachineKind::Directory));
        })
    });
}

fn table3_4_preprocess_mosi(c: &mut Criterion) {
    let ssp = protogen_protocols::mosi();
    let (_, renames) = preprocess(&ssp).unwrap();
    println!("\n=== Tables III/IV: MOSI preprocessing ===");
    for r in &renames {
        println!("  {} -> {} (arrives at {})", r.original, r.renamed, r.state);
    }
    c.bench_function("table3_4/preprocess_mosi", |b| {
        b.iter(|| black_box(preprocess(&ssp).unwrap()))
    });
}

fn table5_step2(c: &mut Criterion) {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    println!("\n=== Table V: transient states of the I->M transaction ===");
    for name in ["IM_AD", "IM_A"] {
        let id = g.cache.state_by_name(name).unwrap();
        println!("  {name}: {:?} perm", g.cache.state(id).perm);
    }
    c.bench_function("table5/generate_msi_step2", |b| {
        b.iter(|| black_box(generate(&ssp, &GenConfig::non_stalling()).unwrap()))
    });
}

fn table6_nonstalling_msi(c: &mut Criterion) {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    println!("\n=== Table VI: generated non-stalling MSI cache controller ===");
    println!("{}", g.report);
    println!("{}", render_table(&g.cache, &TableOptions::default()));
    c.bench_function("table6/generate_nonstalling_msi", |b| {
        b.iter(|| black_box(generate(&ssp, &GenConfig::non_stalling()).unwrap()))
    });
}

fn sec6e_generation_runtime(c: &mut Criterion) {
    println!("\n=== §VI-E: generation runtime for every protocol (paper: <1s) ===");
    let mut group = c.benchmark_group("sec6e_generation");
    for ssp in protogen_protocols::all() {
        for (label, cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let start = std::time::Instant::now();
            let g = generate(&ssp, &cfg).unwrap();
            println!(
                "  {:<14} {:<13} {:>3} cache / {:>3} dir states in {:?}",
                ssp.name,
                label,
                g.cache.state_count(),
                g.directory.state_count(),
                start.elapsed()
            );
            group.bench_function(format!("{}/{label}", ssp.name), |b| {
                b.iter(|| black_box(generate(&ssp, &cfg).unwrap()))
            });
        }
    }
    group.finish();
}

fn sec5d_upgrade_reinterpretation(c: &mut Criterion) {
    let ssp = protogen_protocols::msi_upgrade();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    println!("\n=== §V-D1: Upgrade reinterpretation rules ===");
    for r in &g.report.reinterpretations {
        println!("  {} treated as {} at directory {}", r.original, r.treated_as, r.dir_state);
    }
    c.bench_function("sec5d/generate_msi_upgrade", |b| {
        b.iter(|| black_box(generate(&ssp, &GenConfig::non_stalling()).unwrap()))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = table1_2_atomic_msi, table3_4_preprocess_mosi, table5_step2,
              table6_nonstalling_msi, sec6e_generation_runtime,
              sec5d_upgrade_reinterpretation
}
criterion_main!(tables);
