//! Canonicalization microbenchmark: full n!-permutation sweep vs. the
//! pruned sort-key path (ISSUE 5).
//!
//! Symmetry canonicalization is the model checker's single hottest
//! operation — every successor state is canonicalized before dedup. The
//! seed path streamed all n! permuted encodings through the fingerprinter
//! (24 at 4 caches); the pruned path sorts caches by a
//! permutation-invariant key first and only enumerates permutations
//! within equal-key groups, which collapses to 1–2 encodings for typical
//! states. This harness measures both paths over the *same* corpus of
//! reachable MESI states at 2, 3, and 4 caches and prints the
//! states/second table; `mc_scaling` runs the same measurement and folds
//! the numbers into `BENCH_mc.json` for the nightly pipeline.
//!
//! The representative-equivalence of the two paths (byte-for-byte) is
//! pinned by `crates/mc/tests/canon_prop.rs`, not here.

use protogen_bench::canonicalization_points;

fn main() {
    println!(
        "=== canonicalization: full n! sweep vs pruned sort-key path (MESI, reachable states) ==="
    );
    println!(
        "{:>7} {:>8} {:>11} {:>15} {:>15} {:>9}",
        "caches", "corpus", "mean cands", "full states/s", "pruned states/s", "speedup"
    );
    for p in canonicalization_points(600, 40) {
        println!(
            "{:>7} {:>8} {:>11.2} {:>15.0} {:>15.0} {:>8.2}×",
            p.caches,
            p.corpus,
            p.mean_candidates,
            p.full_states_per_sec,
            p.pruned_states_per_sec,
            p.speedup()
        );
    }
}
