//! Benchmarks for the performance-shape experiment (E10): stalling vs
//! non-stalling generated MSI under increasing write contention. The
//! paper's claim — stalling "degrades performance" on racing transactions —
//! appears as the speedup column; the crossover toward 1.0x at 0% stores
//! shows the protocols are identical without contention.

use criterion::{criterion_group, criterion_main, Criterion};
use protogen_core::{generate, GenConfig};
use protogen_sim::{simulate, SimConfig, Workload};
use std::hint::black_box;

fn contention_sweep(c: &mut Criterion) {
    let ssp = protogen_protocols::msi();
    let st = generate(&ssp, &GenConfig::stalling()).unwrap();
    let ns = generate(&ssp, &GenConfig::non_stalling()).unwrap();

    println!("\n=== E10: stalling vs non-stalling MSI, 4 cores, contended block ===");
    println!("{:>8} {:>14} {:>14} {:>9}", "store %", "stalling cyc", "non-stall cyc", "speedup");
    for store_pct in [0u8, 25, 50, 75, 100] {
        // n_addrs = 1: every access races on the same block.
        let cfg = SimConfig {
            workload: Workload::Uniform { store_pct },
            n_addrs: 1,
            ..SimConfig::default()
        };
        let a = simulate(&st.cache, &st.directory, &cfg).unwrap();
        let b = simulate(&ns.cache, &ns.directory, &cfg).unwrap();
        println!(
            "{:>8} {:>14} {:>14} {:>8.3}x",
            store_pct,
            a.cycles,
            b.cycles,
            a.cycles as f64 / b.cycles as f64
        );
    }

    let mut group = c.benchmark_group("simulate_msi");
    group.sample_size(20);
    let cfg = SimConfig {
        workload: Workload::Uniform { store_pct: 50 },
        n_addrs: 1,
        accesses_per_core: 100,
        ..SimConfig::default()
    };
    group.bench_function("stalling/50pct", |b| {
        b.iter(|| black_box(simulate(&st.cache, &st.directory, &cfg).unwrap()))
    });
    group.bench_function("non_stalling/50pct", |b| {
        b.iter(|| black_box(simulate(&ns.cache, &ns.directory, &cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(sim, contention_sweep);
criterion_main!(sim);
