//! Thread-scaling and behaviour-regression benchmark for the simulation
//! subsystem.
//!
//! Runs the default sweep grid — `{MSI, MESI} × {stalling, non-stalling}
//! × {uniform, zipfian, producer-consumer, false-sharing} × {2, 4 caches}
//! × {ordered, unordered}` — at 1, 2, and 4 sweep workers, asserts the
//! merged report is **byte-identical at every thread count** (the sweep's
//! determinism contract), and writes `BENCH_sim.json` at the workspace
//! root for the nightly CI gate.
//!
//! Gated metrics:
//!
//! * `sim_cycles_per_sec_4t` / `cells_per_sec_4t` — simulator throughput
//!   (floor: −20 % vs `BENCH_sim_baseline.json`);
//! * `mean_p95_latency` — the mean simulated p95 miss latency across
//!   cells. This is a *behavioural* metric: it is seed-deterministic, so
//!   any drift beyond ±20 % means the protocols, workloads, or engine
//!   semantics changed, not the hardware.
//!
//! Environment knobs (off by default): `SIM_ENFORCE_BASELINE=1` enables
//! the baseline gate (`SIM_BASELINE` overrides the path);
//! `SIM_ENFORCE_SCALING=1` asserts the 4-worker sweep delivers > 1.3× the
//! 1-worker simulated-cycles/sec. `cores_available` is detected up front:
//! a host with fewer cores than workers measures scheduling overhead, not
//! speedup, so requesting enforcement there is a hard **failure**
//! (provision a bigger runner or unset the toggle), never a silent skip.
//! The decision string is recorded in the report's `speedup_gate` field
//! in every case.

use protogen_bench::{
    cores_available, enforce_baseline, enforce_scaling, env_on, speedup_gate, workspace_root,
    write_report, BaselineCheck, Json, Tolerance,
};
use protogen_sim::{run_sweep, SweepConfig, SweepReport};
use std::path::PathBuf;
use std::time::Instant;

const THREAD_POINTS: [usize; 3] = [1, 2, 4];
/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 2;

struct Point {
    threads: usize,
    seconds: f64,
    cells_per_sec: f64,
    sim_cycles_per_sec: f64,
}

fn total_sim_cycles(report: &SweepReport) -> u64 {
    report.cells.iter().map(|c| c.stats.cycles).sum()
}

fn main() {
    let base = SweepConfig { accesses_per_core: 300, ..SweepConfig::default() };
    let n_cells = base.cells().len();

    // Detect the scaling-gate decision before any measurement: a nightly
    // that requested enforcement on an undersized runner should announce
    // the failure immediately, not after minutes of meaningless numbers.
    let (scaling_gate, gate_decision) = speedup_gate(4, env_on("SIM_ENFORCE_SCALING"));
    println!("scaling gate: {gate_decision}");

    println!("=== sim_scaling: default sweep grid, {n_cells} cells, 300 accesses/core ===");
    println!("{:>7} {:>9} {:>13} {:>17}", "threads", "seconds", "cells/sec", "sim cycles/sec");

    let mut reference: Option<(String, SweepReport)> = None;
    let mut points: Vec<Point> = Vec::new();
    for &threads in &THREAD_POINTS {
        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let cfg = SweepConfig { threads, ..base.clone() };
            let start = Instant::now();
            let report = run_sweep(&cfg).expect("sweep completes");
            let seconds = start.elapsed().as_secs_f64();
            let rendered = report.to_json().render();
            match &reference {
                None => reference = Some((rendered, report)),
                Some((r, _)) => assert_eq!(
                    r, &rendered,
                    "sweep JSON must be byte-identical at every thread count"
                ),
            }
            let cycles = total_sim_cycles(&reference.as_ref().unwrap().1);
            let p = Point {
                threads,
                seconds,
                cells_per_sec: n_cells as f64 / seconds,
                sim_cycles_per_sec: cycles as f64 / seconds,
            };
            if best.as_ref().is_none_or(|b| p.cells_per_sec > b.cells_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>9.3} {:>13.1} {:>17.0}",
            p.threads, p.seconds, p.cells_per_sec, p.sim_cycles_per_sec
        );
        points.push(p);
    }

    let (_, report) = reference.expect("at least one run");
    let mean = |f: &dyn Fn(&protogen_sim::CellResult) -> f64| {
        report.cells.iter().map(f).sum::<f64>() / report.cells.len() as f64
    };
    let mean_p95 = mean(&|c| c.stats.p95_latency as f64);
    let mean_msgs_per_miss = mean(&|c| c.stats.msgs_per_miss);
    let rate = |threads: usize| {
        points.iter().find(|p| p.threads == threads).map(|p| p.sim_cycles_per_sec).unwrap()
    };
    let speedup = rate(4) / rate(1);
    println!(
        "mean p95 latency {mean_p95:.1} cycles, {mean_msgs_per_miss:.2} msgs/miss, \
         speedup 4t/1t {speedup:.2}× (cores available: {})",
        cores_available()
    );

    let mut doc = Json::obj([
        ("workload", Json::Str(format!("default sweep grid, {n_cells} cells, 300 accesses/core"))),
        ("cells", Json::U64(n_cells as u64)),
        ("cores_available", Json::U64(cores_available() as u64)),
        ("speedup_gate", Json::Str(gate_decision.clone())),
        ("total_sim_cycles", Json::U64(total_sim_cycles(&report))),
        ("mean_p95_latency", Json::F64(mean_p95)),
        ("mean_msgs_per_miss", Json::F64(mean_msgs_per_miss)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("threads", Json::U64(p.threads as u64)),
                            ("seconds", Json::F64(p.seconds)),
                            ("cells_per_sec", Json::F64(p.cells_per_sec)),
                            ("sim_cycles_per_sec", Json::F64(p.sim_cycles_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    for p in &points {
        doc.push(&format!("sim_cycles_per_sec_{}t", p.threads), Json::F64(p.sim_cycles_per_sec));
        doc.push(&format!("cells_per_sec_{}t", p.threads), Json::F64(p.cells_per_sec));
    }
    doc.push("speedup_4t", Json::F64(speedup));
    write_report("BENCH_sim.json", &doc);

    let mut failed = false;
    if env_on("SIM_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("SIM_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_sim_baseline.json"));
        failed |= enforce_baseline(
            &baseline_path,
            &[
                BaselineCheck {
                    key: "sim_cycles_per_sec_4t",
                    current: rate(4),
                    tolerance: Tolerance::FloorPct(20.0),
                },
                BaselineCheck {
                    key: "mean_p95_latency",
                    current: mean_p95,
                    tolerance: Tolerance::WithinPct(20.0),
                },
            ],
        );
    }
    failed |= enforce_scaling(scaling_gate, &gate_decision, Some(speedup), 1.3, "4-worker");
    if failed {
        std::process::exit(1);
    }
}
