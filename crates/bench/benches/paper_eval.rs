//! Benchmarks for the paper's verification evaluation (§VI-A/B/C/D,
//! experiments E8, E9, E11, E12): generate every protocol and model-check
//! it at the paper's 3-cache bound, reporting explored states and wall
//! time (the paper's Murϕ runs exhausted memory beyond 3 caches; ours
//! complete in seconds thanks to symmetry reduction).

use criterion::{criterion_group, criterion_main, Criterion};
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker, PropertySet};
use std::hint::black_box;

fn verify_all(c: &mut Criterion) {
    println!("\n=== §VI: full verification sweep at 3 caches ===");
    println!(
        "{:<14} {:<13} {:>6} {:>6} {:>10} {:>8} {:>8}",
        "protocol", "config", "cache", "dir", "explored", "result", "time"
    );
    let mut group = c.benchmark_group("verify_3_caches");
    group.sample_size(10);
    for ssp in protogen_protocols::all() {
        for (label, cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let g = generate(&ssp, &cfg).unwrap();
            let mut mc_cfg = McConfig::with_caches(3);
            mc_cfg.ordered = ssp.network_ordered;
            mc_cfg.properties = PropertySet::promised(ssp.consistency);
            let r = ModelChecker::new(&g.cache, &g.directory, mc_cfg.clone()).run();
            println!(
                "{:<14} {:<13} {:>6} {:>6} {:>10} {:>8} {:>7.2}s",
                ssp.name,
                label,
                g.cache.state_count(),
                g.directory.state_count(),
                r.states,
                if r.passed() { "PASSED" } else { "FAILED" },
                r.seconds
            );
            assert!(r.passed(), "{} {label}: {:?}", ssp.name, r.violation);
            // Benchmark the cheaper 2-cache exploration so the suite stays
            // fast; the 3-cache numbers above are the reported result.
            let mut small = mc_cfg.clone();
            small.n_caches = 2;
            group.bench_function(format!("{}/{label}", ssp.name), |b| {
                b.iter(|| {
                    let mc = ModelChecker::new(&g.cache, &g.directory, small.clone());
                    black_box(mc.run())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(eval, verify_all);
criterion_main!(eval);
