//! Overhead benchmark for the two robustness features: deterministic
//! fault injection in the live service and epoch checkpointing in the
//! model checker.
//!
//! Both features are *off by default*; this bench quantifies what
//! turning them on costs, and hard-asserts that neither changes results:
//!
//! * **serve**: MSI (non-stalling) at 2 cache workers, 100k uniform
//!   50%-store operations, once in the perfect world and once under the
//!   full fault schedule (delays + stalls + squeezes + one crash/recovery
//!   cycle per cache). Both runs must quiesce inside the model-checked
//!   envelope with zero escapes; the faulted run must complete its
//!   planned crashes and lose no lines. Reported: ops/sec each, the
//!   slowdown ratio, and the fault counters.
//! * **mc**: MSI stalling at 3 caches, once plain and once writing a
//!   checkpoint every 2 epochs to a temp directory. Reported: seconds
//!   each and the overhead percentage; state/transition counts are
//!   hard-asserted identical (checkpointing must never change the
//!   exploration).
//!
//! Writes `BENCH_faults.json` at the workspace root. No baseline gate —
//! the numbers are recorded for trend-watching; the correctness asserts
//! are the only failure conditions, so plain `cargo bench` never fails
//! on a slow laptop.

use protogen_bench::{write_report, Json};
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker};
use protogen_serve::{checked_envelope, pair_label, serve, FaultConfig, ServeConfig, StopReason};
use std::path::PathBuf;

const SERVE_OPS: usize = 100_000;
const SERVE_WORKERS: usize = 2;

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("protogen-bench-ck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp checkpoint dir");
    d
}

fn main() {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).expect("msi generates");

    let mut mc_cfg = McConfig::with_caches(SERVE_WORKERS);
    mc_cfg.ordered = ssp.network_ordered;
    let envelope = checked_envelope(&g.cache, &g.directory, mc_cfg).expect("envelope run passes");

    println!("=== fault_overhead: MSI non-stalling, {SERVE_WORKERS} workers, {SERVE_OPS} ops ===");
    let run = |faults: Option<FaultConfig>| {
        let mut cfg = ServeConfig::new(SERVE_WORKERS);
        cfg.total_ops = SERVE_OPS;
        cfg.seed = 7;
        cfg.max_seconds = 120.0;
        cfg.faults = faults;
        let report = serve(&g.cache, &g.directory, &cfg).expect("service run completes");
        assert_eq!(report.stop_reason, StopReason::Quiesced, "run must quiesce");
        let escapes = report.escapes(&envelope);
        assert!(
            escapes.is_empty(),
            "run escaped the verified envelope: {:?}",
            escapes.iter().map(|p| pair_label(&g.cache, &g.directory, p)).collect::<Vec<_>>()
        );
        report
    };

    let clean = run(None);
    let faulted = run(Some(FaultConfig::all(7)));
    let fs = faulted.faults.expect("faulted run reports fault stats");
    assert_eq!(fs.crashes_completed, fs.planned_crashes, "every planned crash must recover");
    assert_eq!(fs.lines_lost, 0, "recovery must not lose lines");

    let slowdown = clean.ops_per_sec() / faulted.ops_per_sec();
    println!(
        "{:>9} {:>13.0} ops/sec\n{:>9} {:>13.0} ops/sec  (slowdown {slowdown:.2}x, \
         {} crashes recovered, {} recovery writebacks, {} delays, {} stalls)",
        "clean",
        clean.ops_per_sec(),
        "faulted",
        faulted.ops_per_sec(),
        fs.crashes_completed,
        fs.recovery_writebacks,
        fs.delays_injected,
        fs.stalls_injected,
    );

    // Checkpoint overhead: same exploration, once plain and once writing
    // epoch snapshots. Counts must match exactly.
    let ck_ssp = protogen_protocols::msi();
    let ck = generate(&ck_ssp, &GenConfig::stalling()).expect("msi stalling generates");
    let base_cfg = McConfig::with_caches(3);
    let plain = ModelChecker::new(&ck.cache, &ck.directory, base_cfg.clone()).run();
    assert!(plain.passed(), "plain verification must pass: {:?}", plain.violation);

    let dir = tmpdir();
    let mut cfg = base_cfg;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 2;
    let checked = ModelChecker::new(&ck.cache, &ck.directory, cfg).run();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(checked.states, plain.states, "checkpointing must not change the exploration");
    assert_eq!(checked.transitions, plain.transitions, "transition counts must match");

    let ck_overhead_pct = (checked.seconds / plain.seconds - 1.0) * 100.0;
    println!(
        "mc MSI@3 stalling: plain {:.3}s, checkpointed {:.3}s ({ck_overhead_pct:+.1}% overhead, \
         {} states)",
        plain.seconds, checked.seconds, plain.states
    );

    let doc = Json::obj([
        (
            "serve_workload",
            Json::Str(format!(
                "MSI non-stalling, uniform-50, {SERVE_WORKERS} workers, {SERVE_OPS} ops"
            )),
        ),
        ("serve_ops_per_sec_clean", Json::F64(clean.ops_per_sec())),
        ("serve_ops_per_sec_faulted", Json::F64(faulted.ops_per_sec())),
        ("serve_fault_slowdown", Json::F64(slowdown)),
        ("serve_crashes_completed", Json::U64(fs.crashes_completed)),
        ("serve_recovery_writebacks", Json::U64(fs.recovery_writebacks)),
        ("serve_delays_injected", Json::U64(fs.delays_injected)),
        ("serve_stalls_injected", Json::U64(fs.stalls_injected)),
        ("serve_squeeze_parks", Json::U64(fs.squeeze_parks)),
        ("mc_workload", Json::Str("MSI stalling, 3 caches, checkpoint every 2 epochs".into())),
        ("mc_states", Json::U64(plain.states as u64)),
        ("mc_seconds_plain", Json::F64(plain.seconds)),
        ("mc_seconds_checkpointed", Json::F64(checked.seconds)),
        ("mc_checkpoint_overhead_pct", Json::F64(ck_overhead_pct)),
    ]);
    write_report("BENCH_faults.json", &doc);
}
