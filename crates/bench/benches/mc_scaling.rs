//! Thread-scaling benchmark for the sharded model checker.
//!
//! Runs the 3-cache MESI (non-stalling) verification workload at 1, 2,
//! and 4 worker threads, reports states/second and peak visited-set
//! bytes, and writes the results to `BENCH_mc.json` at the workspace root
//! — the artifact the `bench-nightly` CI workflow uploads and gates on.
//!
//! Environment knobs (all off by default so plain `cargo bench` never
//! fails on a laptop):
//!
//! * `MC_ENFORCE_BASELINE=1` — exit non-zero if 4-thread states/sec fall
//!   more than 20 % below the committed `BENCH_mc_baseline.json`.
//! * `MC_ENFORCE_SCALING=1` — exit non-zero unless 4 threads deliver more
//!   than 1.8× the 1-thread states/sec (only meaningful on a machine with
//!   4+ cores; the nightly CI runner qualifies).

use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker};
use std::path::{Path, PathBuf};

const THREAD_POINTS: [usize; 3] = [1, 2, 4];
/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 3;

struct Point {
    threads: usize,
    seconds: f64,
    states_per_sec: f64,
    peak_store_bytes: usize,
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn main() {
    let ssp = protogen_protocols::mesi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();

    println!("=== mc_scaling: MESI non-stalling, 3 caches ===");
    println!(
        "{:>7} {:>10} {:>9} {:>14} {:>16}",
        "threads", "states", "seconds", "states/sec", "peak store (B)"
    );

    let mut states = 0usize;
    let mut points: Vec<Point> = Vec::new();
    for &threads in &THREAD_POINTS {
        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let mut cfg = McConfig::with_caches(3);
            cfg.ordered = ssp.network_ordered;
            cfg.threads = threads;
            let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
            assert!(r.passed(), "scaling workload must verify: {:?}", r.violation);
            assert!(states == 0 || states == r.states, "state count drifted across runs");
            states = r.states;
            let p = Point {
                threads,
                seconds: r.seconds,
                states_per_sec: r.states as f64 / r.seconds,
                peak_store_bytes: r.store_bytes,
            };
            if best.as_ref().is_none_or(|b| p.states_per_sec > b.states_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>10} {:>9.3} {:>14.0} {:>16}",
            p.threads, states, p.seconds, p.states_per_sec, p.peak_store_bytes
        );
        points.push(p);
    }

    let rate = |threads: usize| {
        points.iter().find(|p| p.threads == threads).map(|p| p.states_per_sec).unwrap()
    };
    let speedup = rate(4) / rate(1);
    let peak = points.iter().map(|p| p.peak_store_bytes).max().unwrap();
    println!("speedup 4t/1t: {speedup:.2}×  (cores available: {})", available());

    let json = render_json(states, &points, speedup, peak);
    let out_path = workspace_root().join("BENCH_mc.json");
    std::fs::write(&out_path, &json).expect("write BENCH_mc.json");
    println!("wrote {}", out_path.display());

    let mut failed = false;
    if env_on("MC_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("MC_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_mc_baseline.json"));
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match extract_number(&text, "states_per_sec_4t") {
                Some(base) => {
                    // A baseline from a different core count gates nothing
                    // useful (a 1-core-measured floor is far below any
                    // multi-core run), so an incomparable baseline is a
                    // hard failure — the freshly written BENCH_mc.json is
                    // still uploaded by CI, ready to be committed as the
                    // new baseline.
                    if let Some(cores) = extract_number(&text, "cores_available") {
                        if cores as usize != available() {
                            eprintln!(
                                "STALE BASELINE: measured on {} core(s) but this machine \
                                 has {} — the regression floor is not comparable. \
                                 Refresh {} from this run's BENCH_mc.json.",
                                cores,
                                available(),
                                baseline_path.display()
                            );
                            failed = true;
                        }
                    }
                    let floor = base * 0.8;
                    if rate(4) < floor {
                        eprintln!(
                            "REGRESSION: 4-thread states/sec {:.0} < 80% of baseline {:.0} \
                             (floor {:.0})",
                            rate(4),
                            base,
                            floor
                        );
                        failed = true;
                    } else {
                        println!(
                            "baseline check OK: {:.0} states/sec vs baseline {:.0} (floor {:.0})",
                            rate(4),
                            base,
                            floor
                        );
                    }
                }
                None => {
                    eprintln!("baseline {} lacks states_per_sec_4t", baseline_path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                failed = true;
            }
        }
    }
    if env_on("MC_ENFORCE_SCALING") {
        if speedup > 1.8 {
            println!("scaling check OK: {speedup:.2}× > 1.8×");
        } else {
            eprintln!("SCALING FAILURE: 4-thread speedup {speedup:.2}× ≤ 1.8×");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn env_on(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

fn render_json(states: usize, points: &[Point], speedup: f64, peak: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"workload\": \"MESI non-stalling, 3 caches\",\n");
    s.push_str(&format!("  \"states\": {states},\n"));
    s.push_str(&format!("  \"cores_available\": {},\n", available()));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.4}, \"states_per_sec\": {:.0}, \
             \"peak_store_bytes\": {}}}{}\n",
            p.threads,
            p.seconds,
            p.states_per_sec,
            p.peak_store_bytes,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    for p in points {
        s.push_str(&format!("  \"states_per_sec_{}t\": {:.0},\n", p.threads, p.states_per_sec));
    }
    s.push_str(&format!("  \"speedup_4t\": {speedup:.3},\n"));
    s.push_str(&format!("  \"peak_store_bytes\": {peak}\n"));
    s.push_str("}\n");
    s
}

/// Minimal flat-JSON number lookup (`"key": 123.4`) — enough for the
/// baseline file, which this harness itself writes.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
