//! Thread-scaling benchmark for the sharded model checker.
//!
//! Runs the 3-cache MESI (non-stalling) verification workload at 1, 2,
//! and 4 worker threads, reports states/second and peak accounted
//! memory, runs one memory-budgeted verify (4-cache MSI stalling under a
//! deliberately tiny budget, delta store) and hard-gates that its
//! state/transition counts match the unbudgeted run — spilling must
//! never change results — folds in the canonicalization microbenchmark
//! (full n! sweep vs the pruned sort-key path, see
//! `benches/canonicalization.rs`), and writes the results to
//! `BENCH_mc.json` at the workspace root — the artifact the
//! `bench-nightly` CI workflow uploads and gates on. Serialization and
//! baseline checking go through `protogen_bench`'s shared report writer
//! (the same one `sim_scaling` uses).
//!
//! Environment knobs (all off by default so plain `cargo bench` never
//! fails on a laptop):
//!
//! * `MC_ENFORCE_BASELINE=1` — exit non-zero if 4-thread states/sec fall
//!   more than 20 % below the committed `BENCH_mc_baseline.json` (or the
//!   baseline is unreadable/stale; `MC_BASELINE` overrides the path).
//! * `MC_ENFORCE_SCALING=1` — exit non-zero unless 4 threads deliver more
//!   than 1.5× the 1-thread states/sec. `cores_available` is detected up
//!   front: a host with fewer cores than workers measures scheduling
//!   overhead, not speedup (the seed baseline was recorded on a 1-core
//!   box, where an unconditional gate misfired), so requesting
//!   enforcement on such a host is a hard **failure** — provision a
//!   bigger runner or unset the toggle — never a silent skip. Without
//!   the toggle the ratio is recorded only. The decision string is
//!   written to the report's `speedup_gate` field in every case.
//! * `MC_THREAD_POINTS=1,2,4` — override the measured thread counts (the
//!   PR-CI perf smoke runs just `1`).
//! * `MC_MIN_STATES_PER_SEC=N` — exit non-zero if 1-thread states/sec
//!   fall below `N` (the PR-CI perf smoke's generous hot-path floor).

use protogen_bench::{
    canonicalization_points, cores_available, enforce_baseline, enforce_scaling, env_on,
    speedup_gate, workspace_root, write_report, BaselineCheck, Json, Tolerance,
};
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker, StoreMode};
use std::path::PathBuf;

/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 3;

/// Budget for the spill-path workload: small enough that a 4-cache MSI
/// stalling run (≈ 215 k states) is forced out of core almost
/// immediately, so the nightly always exercises the spill tier.
const BUDGET_BYTES: usize = 1 << 20;

struct Point {
    threads: usize,
    seconds: f64,
    states_per_sec: f64,
    peak_store_bytes: usize,
    peak_mem_bytes: usize,
}

fn thread_points() -> Vec<usize> {
    match std::env::var("MC_THREAD_POINTS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad MC_THREAD_POINTS `{v}`")))
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn main() {
    let ssp = protogen_protocols::mesi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
    let points_requested = thread_points();

    // Detect the scaling-gate decision before any measurement: a nightly
    // that requested enforcement on an undersized runner should announce
    // the failure immediately, not after minutes of meaningless numbers.
    let (scaling_gate, gate_decision) = speedup_gate(4, env_on("MC_ENFORCE_SCALING"));
    println!("scaling gate: {gate_decision}");

    println!("=== mc_scaling: MESI non-stalling, 3 caches ===");
    println!(
        "{:>7} {:>10} {:>9} {:>14} {:>16} {:>14}",
        "threads", "states", "seconds", "states/sec", "peak store (B)", "peak mem (B)"
    );

    let mut states = 0usize;
    let mut points: Vec<Point> = Vec::new();
    for &threads in &points_requested {
        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let mut cfg = McConfig::with_caches(3);
            cfg.ordered = ssp.network_ordered;
            cfg.threads = threads;
            let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
            assert!(r.passed(), "scaling workload must verify: {:?}", r.violation);
            assert!(states == 0 || states == r.states, "state count drifted across runs");
            states = r.states;
            let p = Point {
                threads,
                seconds: r.seconds,
                states_per_sec: r.states as f64 / r.seconds,
                peak_store_bytes: r.store_bytes,
                peak_mem_bytes: r.peak_mem_bytes,
            };
            if best.as_ref().is_none_or(|b| p.states_per_sec > b.states_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>10} {:>9.3} {:>14.0} {:>16} {:>14}",
            p.threads, states, p.seconds, p.states_per_sec, p.peak_store_bytes, p.peak_mem_bytes
        );
        points.push(p);
    }

    let rate =
        |threads: usize| points.iter().find(|p| p.threads == threads).map(|p| p.states_per_sec);
    let speedup = match (rate(1), rate(4)) {
        (Some(r1), Some(r4)) => Some(r4 / r1),
        _ => None,
    };
    let peak = points.iter().map(|p| p.peak_store_bytes).max().unwrap();
    let peak_mem = points.iter().map(|p| p.peak_mem_bytes).max().unwrap();
    if let Some(s) = speedup {
        println!("speedup 4t/1t: {s:.2}×  (cores available: {})", cores_available());
    }

    // The memory-budgeted verify: 4-cache MSI stalling under a tiny
    // budget with the delta store. The spill tier must leave results
    // byte-identical, so the unbudgeted counts are a hard gate, not a
    // tracked metric — a mismatch fails the nightly outright.
    let msi = generate(&protogen_protocols::msi(), &GenConfig::stalling()).unwrap();
    let budgeted_run = |budget: usize| {
        let mut cfg = McConfig::with_caches(4);
        cfg.threads = 1;
        cfg.mem_budget_bytes = budget;
        cfg.store = if budget == 0 { StoreMode::Full } else { StoreMode::Delta };
        let r = ModelChecker::new(&msi.cache, &msi.directory, cfg).run();
        assert!(r.passed(), "budgeted workload must verify: {:?}", r.violation);
        r
    };
    let unbudgeted = budgeted_run(0);
    let budgeted = budgeted_run(BUDGET_BYTES);
    assert_eq!(
        (budgeted.states, budgeted.transitions),
        (unbudgeted.states, unbudgeted.transitions),
        "spilling changed exploration results"
    );
    let budgeted_rate = budgeted.states as f64 / budgeted.seconds;
    println!(
        "budgeted MSI stalling @4 caches ({} B budget, delta store): {} states, \
         {:.0} states/s, peak mem {} B (unbudgeted {} B), spilled {} B in {} chunks",
        BUDGET_BYTES,
        budgeted.states,
        budgeted_rate,
        budgeted.peak_mem_bytes,
        unbudgeted.peak_mem_bytes,
        budgeted.spill_bytes,
        budgeted.spill_chunks
    );

    // The canonicalization microbenchmark rides along so the nightly
    // report tracks the pruned hot path, not just end-to-end throughput.
    let canon = canonicalization_points(600, 40);
    for c in &canon {
        println!(
            "canonicalization @{} caches: full {:.0}/s, pruned {:.0}/s ({:.2}×, {:.2} mean candidates)",
            c.caches,
            c.full_states_per_sec,
            c.pruned_states_per_sec,
            c.speedup(),
            c.mean_candidates
        );
    }

    let mut doc = Json::obj([
        ("workload", Json::Str("MESI non-stalling, 3 caches".into())),
        ("states", Json::U64(states as u64)),
        ("cores_available", Json::U64(cores_available() as u64)),
        ("speedup_gate", Json::Str(gate_decision.clone())),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("threads", Json::U64(p.threads as u64)),
                            ("seconds", Json::F64(p.seconds)),
                            ("states_per_sec", Json::F64(p.states_per_sec)),
                            ("peak_store_bytes", Json::U64(p.peak_store_bytes as u64)),
                            ("peak_mem_bytes", Json::U64(p.peak_mem_bytes as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "canonicalization",
            Json::Arr(
                canon
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("caches", Json::U64(c.caches as u64)),
                            ("corpus", Json::U64(c.corpus as u64)),
                            ("mean_candidates", Json::F64(c.mean_candidates)),
                            ("full_states_per_sec", Json::F64(c.full_states_per_sec)),
                            ("pruned_states_per_sec", Json::F64(c.pruned_states_per_sec)),
                            ("speedup", Json::F64(c.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    for p in &points {
        doc.push(&format!("states_per_sec_{}t", p.threads), Json::F64(p.states_per_sec));
    }
    for c in &canon {
        doc.push(
            &format!("canon_pruned_states_per_sec_{}c", c.caches),
            Json::F64(c.pruned_states_per_sec),
        );
        doc.push(&format!("canon_speedup_{}c", c.caches), Json::F64(c.speedup()));
    }
    if let Some(s) = speedup {
        doc.push("speedup_4t", Json::F64(s));
    }
    doc.push("peak_store_bytes", Json::U64(peak as u64));
    doc.push("peak_mem_bytes", Json::U64(peak_mem as u64));
    doc.push(
        "budgeted_verify",
        Json::obj([
            ("workload", Json::Str("MSI stalling, 4 caches, delta store".into())),
            ("mem_budget_bytes", Json::U64(BUDGET_BYTES as u64)),
            ("states", Json::U64(budgeted.states as u64)),
            ("states_per_sec", Json::F64(budgeted_rate)),
            ("peak_mem_bytes", Json::U64(budgeted.peak_mem_bytes as u64)),
            ("unbudgeted_peak_mem_bytes", Json::U64(unbudgeted.peak_mem_bytes as u64)),
            ("spill_bytes", Json::U64(budgeted.spill_bytes)),
            ("spill_chunks", Json::U64(budgeted.spill_chunks)),
        ]),
    );
    write_report("BENCH_mc.json", &doc);

    let mut failed = false;
    if env_on("MC_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("MC_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_mc_baseline.json"));
        match rate(4) {
            Some(r4) => {
                failed |= enforce_baseline(
                    &baseline_path,
                    &[BaselineCheck {
                        key: "states_per_sec_4t",
                        current: r4,
                        tolerance: Tolerance::FloorPct(20.0),
                    }],
                );
            }
            None => {
                // A structured gate failure, not a panic: an env combo
                // like the perf-smoke's MC_THREAD_POINTS="1" plus
                // MC_ENFORCE_BASELINE gates nothing and must say so.
                eprintln!("BASELINE FAILURE: MC_ENFORCE_BASELINE needs a 4-thread point");
                failed = true;
            }
        }
    }
    failed |= enforce_scaling(scaling_gate, &gate_decision, speedup, 1.5, "4-thread");
    if let Ok(floor) = std::env::var("MC_MIN_STATES_PER_SEC") {
        let floor: f64 = floor.parse().expect("MC_MIN_STATES_PER_SEC must be a number");
        let r1 = rate(1).expect("1-thread point required for the throughput floor");
        if r1 >= floor {
            println!("perf smoke OK: 1-thread {r1:.0} states/s >= floor {floor:.0}");
        } else {
            eprintln!("PERF REGRESSION: 1-thread {r1:.0} states/s < floor {floor:.0}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
