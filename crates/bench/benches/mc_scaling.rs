//! Thread-scaling benchmark for the sharded model checker.
//!
//! Runs the 3-cache MESI (non-stalling) verification workload at 1, 2,
//! and 4 worker threads, reports states/second and peak visited-set
//! bytes, and writes the results to `BENCH_mc.json` at the workspace root
//! — the artifact the `bench-nightly` CI workflow uploads and gates on.
//! Serialization and baseline checking go through `protogen_bench`'s
//! shared report writer (the same one `sim_scaling` uses).
//!
//! Environment knobs (all off by default so plain `cargo bench` never
//! fails on a laptop):
//!
//! * `MC_ENFORCE_BASELINE=1` — exit non-zero if 4-thread states/sec fall
//!   more than 20 % below the committed `BENCH_mc_baseline.json` (or the
//!   baseline is unreadable/stale; `MC_BASELINE` overrides the path).
//! * `MC_ENFORCE_SCALING=1` — exit non-zero unless 4 threads deliver more
//!   than 1.8× the 1-thread states/sec (only meaningful on a machine with
//!   4+ cores; the nightly CI runner qualifies).

use protogen_bench::{
    cores_available, enforce_baseline, env_on, workspace_root, write_report, BaselineCheck, Json,
    Tolerance,
};
use protogen_core::{generate, GenConfig};
use protogen_mc::{McConfig, ModelChecker};
use std::path::PathBuf;

const THREAD_POINTS: [usize; 3] = [1, 2, 4];
/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 3;

struct Point {
    threads: usize,
    seconds: f64,
    states_per_sec: f64,
    peak_store_bytes: usize,
}

fn main() {
    let ssp = protogen_protocols::mesi();
    let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();

    println!("=== mc_scaling: MESI non-stalling, 3 caches ===");
    println!(
        "{:>7} {:>10} {:>9} {:>14} {:>16}",
        "threads", "states", "seconds", "states/sec", "peak store (B)"
    );

    let mut states = 0usize;
    let mut points: Vec<Point> = Vec::new();
    for &threads in &THREAD_POINTS {
        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let mut cfg = McConfig::with_caches(3);
            cfg.ordered = ssp.network_ordered;
            cfg.threads = threads;
            let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
            assert!(r.passed(), "scaling workload must verify: {:?}", r.violation);
            assert!(states == 0 || states == r.states, "state count drifted across runs");
            states = r.states;
            let p = Point {
                threads,
                seconds: r.seconds,
                states_per_sec: r.states as f64 / r.seconds,
                peak_store_bytes: r.store_bytes,
            };
            if best.as_ref().is_none_or(|b| p.states_per_sec > b.states_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>10} {:>9.3} {:>14.0} {:>16}",
            p.threads, states, p.seconds, p.states_per_sec, p.peak_store_bytes
        );
        points.push(p);
    }

    let rate = |threads: usize| {
        points.iter().find(|p| p.threads == threads).map(|p| p.states_per_sec).unwrap()
    };
    let speedup = rate(4) / rate(1);
    let peak = points.iter().map(|p| p.peak_store_bytes).max().unwrap();
    println!("speedup 4t/1t: {speedup:.2}×  (cores available: {})", cores_available());

    let mut doc = Json::obj([
        ("workload", Json::Str("MESI non-stalling, 3 caches".into())),
        ("states", Json::U64(states as u64)),
        ("cores_available", Json::U64(cores_available() as u64)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("threads", Json::U64(p.threads as u64)),
                            ("seconds", Json::F64(p.seconds)),
                            ("states_per_sec", Json::F64(p.states_per_sec)),
                            ("peak_store_bytes", Json::U64(p.peak_store_bytes as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    for p in &points {
        doc.push(&format!("states_per_sec_{}t", p.threads), Json::F64(p.states_per_sec));
    }
    doc.push("speedup_4t", Json::F64(speedup));
    doc.push("peak_store_bytes", Json::U64(peak as u64));
    write_report("BENCH_mc.json", &doc);

    let mut failed = false;
    if env_on("MC_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("MC_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_mc_baseline.json"));
        failed |= enforce_baseline(
            &baseline_path,
            &[BaselineCheck {
                key: "states_per_sec_4t",
                current: rate(4),
                tolerance: Tolerance::FloorPct(20.0),
            }],
        );
    }
    if env_on("MC_ENFORCE_SCALING") {
        if speedup > 1.8 {
            println!("scaling check OK: {speedup:.2}× > 1.8×");
        } else {
            eprintln!("SCALING FAILURE: 4-thread speedup {speedup:.2}× ≤ 1.8×");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
