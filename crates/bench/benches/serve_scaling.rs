//! Worker-scaling benchmark for the live cache service (`protogen-serve`).
//!
//! Runs MSI (non-stalling) at 1, 2, and 4 cache worker threads (plus one
//! directory shard per two caches), 200k uniform 50%-store operations per
//! point, each run checked against the exhaustive model checker's pair
//! coverage at the same cache count. A coverage escape fails the bench
//! immediately — the conformance contract is not a recorded metric, it is
//! a precondition for the numbers meaning anything. Writes
//! `BENCH_serve.json` at the workspace root for the nightly CI gate.
//!
//! Gated metrics:
//!
//! * `ops_per_sec_4w` — live service throughput at 4 workers (floor:
//!   −30 % vs `BENCH_serve_baseline.json`). Latency percentiles are
//!   recorded (`p99_ns_{n}w`) but not gated: wall-clock nanoseconds vary
//!   too much across hosts to hold a tolerance band.
//!
//! Environment knobs (off by default): `SERVE_ENFORCE_BASELINE=1` enables
//! the baseline gate (`SERVE_BASELINE` overrides the path);
//! `SERVE_ENFORCE_SCALING=1` asserts the 4-worker run delivers > 1.3× the
//! 1-worker ops/sec — **only when `cores_available >= 4`** (with fewer
//! cores than workers the service is concurrent but serialized, so the
//! ratio measures scheduling overhead). The enforced/skipped decision is
//! recorded in the report's `speedup_gate` field either way.

use protogen_bench::{
    cores_available, enforce_baseline, enforce_scaling, env_on, speedup_gate, workspace_root,
    write_report, BaselineCheck, Json, Tolerance,
};
use protogen_core::{generate, GenConfig};
use protogen_mc::McConfig;
use protogen_serve::{checked_envelope, pair_label, serve, ServeConfig};
use std::path::PathBuf;

const WORKER_POINTS: [usize; 3] = [1, 2, 4];
const OPS_PER_POINT: usize = 200_000;
/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 2;

struct Point {
    workers: usize,
    seconds: f64,
    ops_per_sec: f64,
    p99_ns: u64,
    misses: u64,
}

fn main() {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).expect("msi generates");
    println!("=== serve_scaling: MSI non-stalling, {OPS_PER_POINT} ops/point ===");
    println!(
        "{:>7} {:>9} {:>13} {:>12} {:>8}",
        "workers", "seconds", "ops/sec", "p99 ns", "misses"
    );

    let mut points: Vec<Point> = Vec::new();
    for &workers in &WORKER_POINTS {
        let mut mc_cfg = McConfig::with_caches(workers);
        mc_cfg.ordered = ssp.network_ordered;
        let envelope =
            checked_envelope(&g.cache, &g.directory, mc_cfg).expect("envelope run passes");

        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let mut cfg = ServeConfig::new(workers);
            cfg.dir_shards = (workers / 2).max(1);
            cfg.total_ops = OPS_PER_POINT;
            cfg.seed = 7;
            cfg.max_seconds = 300.0;
            let report = serve(&g.cache, &g.directory, &cfg).expect("service run completes");
            let escapes = report.escapes(&envelope);
            assert!(
                escapes.is_empty(),
                "{workers}-worker run escaped the verified envelope: {:?}",
                escapes.iter().map(|p| pair_label(&g.cache, &g.directory, p)).collect::<Vec<_>>()
            );
            let p = Point {
                workers,
                seconds: report.seconds,
                ops_per_sec: report.ops_per_sec(),
                p99_ns: if report.miss_latency.is_empty() {
                    0
                } else {
                    report.miss_latency.percentile(99.0)
                },
                misses: report.misses,
            };
            if best.as_ref().is_none_or(|b| p.ops_per_sec > b.ops_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>9.3} {:>13.0} {:>12} {:>8}",
            p.workers, p.seconds, p.ops_per_sec, p.p99_ns, p.misses
        );
        points.push(p);
    }

    let rate = |workers: usize| {
        points.iter().find(|p| p.workers == workers).map(|p| p.ops_per_sec).unwrap()
    };
    let speedup = rate(4) / rate(1);
    let (gate_on, gate_decision) = speedup_gate(4);
    println!(
        "speedup 4w/1w {speedup:.2}× (cores available: {}, gate: {gate_decision})",
        cores_available()
    );

    let mut doc = Json::obj([
        ("workload", Json::Str(format!("MSI non-stalling, uniform-50, {OPS_PER_POINT} ops/point"))),
        ("cores_available", Json::U64(cores_available() as u64)),
        ("speedup_gate", Json::Str(gate_decision.clone())),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("workers", Json::U64(p.workers as u64)),
                            ("seconds", Json::F64(p.seconds)),
                            ("ops_per_sec", Json::F64(p.ops_per_sec)),
                            ("p99_ns", Json::U64(p.p99_ns)),
                            ("misses", Json::U64(p.misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    for p in &points {
        doc.push(&format!("ops_per_sec_{}w", p.workers), Json::F64(p.ops_per_sec));
        doc.push(&format!("p99_ns_{}w", p.workers), Json::U64(p.p99_ns));
    }
    doc.push("speedup_4w", Json::F64(speedup));
    write_report("BENCH_serve.json", &doc);

    let mut failed = false;
    if env_on("SERVE_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("SERVE_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_serve_baseline.json"));
        failed |= enforce_baseline(
            &baseline_path,
            &[BaselineCheck {
                key: "ops_per_sec_4w",
                current: rate(4),
                tolerance: Tolerance::FloorPct(30.0),
            }],
        );
    }
    if env_on("SERVE_ENFORCE_SCALING") {
        failed |= enforce_scaling(gate_on, &gate_decision, Some(speedup), 1.3, "4-worker");
    }
    if failed {
        std::process::exit(1);
    }
}
