//! Worker-scaling benchmark for the live cache service (`protogen-serve`).
//!
//! Runs MSI (non-stalling) at 1, 2, and 4 cache worker threads (plus one
//! directory shard per two caches), 200k uniform 50%-store operations per
//! point, each run checked against the exhaustive model checker's pair
//! coverage at the same cache count. A coverage escape fails the bench
//! immediately — the conformance contract is not a recorded metric, it is
//! a precondition for the numbers meaning anything. Writes
//! `BENCH_serve.json` at the workspace root for the nightly CI gate.
//!
//! Each point runs a discarded **warmup** pass first. The seed's report
//! showed a 2-worker p99 of 2.68 ms against 25 µs at one worker and a
//! 4-worker collapse to a fraction of single-worker throughput — cold
//! thread spawn, allocator arena growth, and first-touch page faults
//! landing inside the first measured percentiles, not service latency.
//! Warming each worker configuration before measuring keeps startup cost
//! out of the histogram, and **per-point sanity bounds** (an absolute p99
//! ceiling and a relative throughput floor) fail the bench loudly if a
//! nonsense point ever rides into the report again.
//!
//! Gated metrics:
//!
//! * `ops_per_sec_4w` — live service throughput at 4 workers (floor:
//!   −30 % vs `BENCH_serve_baseline.json`). Latency percentiles are
//!   recorded (`p99_ns_{n}w`) but not gated against a baseline: wall-clock
//!   nanoseconds vary too much across hosts to hold a tolerance band (the
//!   sanity ceiling above is a plausibility check, not a regression gate).
//!
//! Environment knobs (off by default): `SERVE_ENFORCE_BASELINE=1` enables
//! the baseline gate (`SERVE_BASELINE` overrides the path);
//! `SERVE_ENFORCE_SCALING=1` asserts the 4-worker run delivers > 1.3× the
//! 1-worker ops/sec. `cores_available` is detected up front: with fewer
//! cores than workers the service is concurrent but serialized, so the
//! ratio measures scheduling overhead — requesting enforcement there is a
//! hard **failure** (provision a bigger runner or unset the toggle),
//! never a silent skip. The decision string is recorded in the report's
//! `speedup_gate` field in every case.

use protogen_bench::{
    cores_available, enforce_baseline, enforce_scaling, env_on, speedup_gate, workspace_root,
    write_report, BaselineCheck, Json, Tolerance,
};
use protogen_core::{generate, GenConfig};
use protogen_mc::McConfig;
use protogen_serve::{checked_envelope, pair_label, serve, ServeConfig};
use std::path::PathBuf;

const WORKER_POINTS: [usize; 3] = [1, 2, 4];
const OPS_PER_POINT: usize = 200_000;
/// Best-of-N to damp scheduler noise without statistical machinery.
const REPS: usize = 2;
/// Discarded warmup ops per point, enough to spawn threads, grow
/// allocator arenas, and fault in the working set before measuring.
const WARMUP_OPS: usize = OPS_PER_POINT / 10;
/// Per-point sanity ceiling on p99 miss latency. An in-memory cache op
/// whose p99 exceeds 50 ms is a broken measurement (startup cost in the
/// percentiles), not a slow host; the seed anomaly this guards against
/// was a 2.68 ms p99 at 2 workers vs 25 µs at 1.
const MAX_SANE_P99_NS: u64 = 50_000_000;
/// Per-point sanity floor: no worker count may deliver less than this
/// fraction of the 1-worker throughput. Adding workers can plateau, but
/// a collapse below it means the point measured contention pathology or
/// cold-start cost, not the service.
const MIN_RELATIVE_THROUGHPUT: f64 = 0.25;

struct Point {
    workers: usize,
    seconds: f64,
    ops_per_sec: f64,
    p99_ns: u64,
    misses: u64,
}

fn main() {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).expect("msi generates");

    // Detect the scaling-gate decision before any measurement: a nightly
    // that requested enforcement on an undersized runner should announce
    // the failure immediately, not after minutes of meaningless numbers.
    let (scaling_gate, gate_decision) = speedup_gate(4, env_on("SERVE_ENFORCE_SCALING"));
    println!("scaling gate: {gate_decision}");

    println!(
        "=== serve_scaling: MSI non-stalling, {OPS_PER_POINT} ops/point \
         ({WARMUP_OPS} warmup ops) ==="
    );
    println!(
        "{:>7} {:>9} {:>13} {:>12} {:>8}",
        "workers", "seconds", "ops/sec", "p99 ns", "misses"
    );

    let mut points: Vec<Point> = Vec::new();
    for &workers in &WORKER_POINTS {
        let mut mc_cfg = McConfig::with_caches(workers);
        mc_cfg.ordered = ssp.network_ordered;
        let envelope =
            checked_envelope(&g.cache, &g.directory, mc_cfg).expect("envelope run passes");

        // Discarded warmup pass at the same configuration: spawns the
        // worker threads, grows allocator arenas, and faults in the
        // working set so the measured reps start hot.
        let mut warm = ServeConfig::new(workers);
        warm.dir_shards = (workers / 2).max(1);
        warm.total_ops = WARMUP_OPS;
        warm.seed = 7;
        warm.max_seconds = 60.0;
        serve(&g.cache, &g.directory, &warm).expect("warmup run completes");

        let mut best: Option<Point> = None;
        for _ in 0..REPS {
            let mut cfg = ServeConfig::new(workers);
            cfg.dir_shards = (workers / 2).max(1);
            cfg.total_ops = OPS_PER_POINT;
            cfg.seed = 7;
            cfg.max_seconds = 300.0;
            let report = serve(&g.cache, &g.directory, &cfg).expect("service run completes");
            let escapes = report.escapes(&envelope);
            assert!(
                escapes.is_empty(),
                "{workers}-worker run escaped the verified envelope: {:?}",
                escapes.iter().map(|p| pair_label(&g.cache, &g.directory, p)).collect::<Vec<_>>()
            );
            let p = Point {
                workers,
                seconds: report.seconds,
                ops_per_sec: report.ops_per_sec(),
                p99_ns: if report.miss_latency.is_empty() {
                    0
                } else {
                    report.miss_latency.percentile(99.0)
                },
                misses: report.misses,
            };
            if best.as_ref().is_none_or(|b| p.ops_per_sec > b.ops_per_sec) {
                best = Some(p);
            }
        }
        let p = best.unwrap();
        println!(
            "{:>7} {:>9.3} {:>13.0} {:>12} {:>8}",
            p.workers, p.seconds, p.ops_per_sec, p.p99_ns, p.misses
        );
        points.push(p);
    }

    let rate = |workers: usize| {
        points.iter().find(|p| p.workers == workers).map(|p| p.ops_per_sec).unwrap()
    };
    let speedup = rate(4) / rate(1);
    println!(
        "speedup 4w/1w {speedup:.2}× (cores available: {}, gate: {gate_decision})",
        cores_available()
    );

    let mut doc = Json::obj([
        ("workload", Json::Str(format!("MSI non-stalling, uniform-50, {OPS_PER_POINT} ops/point"))),
        ("cores_available", Json::U64(cores_available() as u64)),
        ("speedup_gate", Json::Str(gate_decision.clone())),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("workers", Json::U64(p.workers as u64)),
                            ("seconds", Json::F64(p.seconds)),
                            ("ops_per_sec", Json::F64(p.ops_per_sec)),
                            ("p99_ns", Json::U64(p.p99_ns)),
                            ("misses", Json::U64(p.misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    for p in &points {
        doc.push(&format!("ops_per_sec_{}w", p.workers), Json::F64(p.ops_per_sec));
        doc.push(&format!("p99_ns_{}w", p.workers), Json::U64(p.p99_ns));
    }
    doc.push("speedup_4w", Json::F64(speedup));
    write_report("BENCH_serve.json", &doc);

    let mut failed = false;

    // Per-point sanity bounds, always on: a nonsense measurement must
    // fail the bench loudly, not ride into the report as data. The
    // bounds are deliberately loose — they catch broken measurements
    // (startup cost polluting percentiles, a point collapsing to a
    // fraction of single-worker throughput), not merely slow hosts.
    let throughput_floor = rate(1) * MIN_RELATIVE_THROUGHPUT;
    for p in &points {
        if p.misses > 0 && p.p99_ns > MAX_SANE_P99_NS {
            eprintln!(
                "SANITY FAILURE: {}-worker p99 {} ns exceeds the {} ns plausibility \
                 ceiling — startup cost is polluting the percentiles",
                p.workers, p.p99_ns, MAX_SANE_P99_NS
            );
            failed = true;
        }
        if p.ops_per_sec < throughput_floor {
            eprintln!(
                "SANITY FAILURE: {}-worker throughput {:.0} ops/s is below {:.0}% of \
                 the 1-worker rate ({:.0} ops/s) — that is a measurement pathology, \
                 not scaling",
                p.workers,
                p.ops_per_sec,
                MIN_RELATIVE_THROUGHPUT * 100.0,
                rate(1)
            );
            failed = true;
        }
    }

    if env_on("SERVE_ENFORCE_BASELINE") {
        let baseline_path = std::env::var("SERVE_BASELINE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root().join("BENCH_serve_baseline.json"));
        failed |= enforce_baseline(
            &baseline_path,
            &[BaselineCheck {
                key: "ops_per_sec_4w",
                current: rate(4),
                tolerance: Tolerance::FloorPct(30.0),
            }],
        );
    }
    failed |= enforce_scaling(scaling_gate, &gate_decision, Some(speedup), 1.3, "4-worker");
    if failed {
        std::process::exit(1);
    }
}
