//! Shared infrastructure for the bench harnesses in `benches/`, plus the
//! harness index.
//!
//! Each bench regenerates one of the paper's tables or figures (DESIGN.md
//! §5) and then measures the machinery behind it. `mc_scaling` and
//! `sim_scaling` additionally write machine-readable reports
//! (`BENCH_mc.json`, `BENCH_sim.json`) for the nightly CI regression
//! gates; both go through this crate's one report writer and baseline
//! checker rather than hand-rolling their serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use protogen_sim::Json;
use std::path::{Path, PathBuf};

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// Whether an environment toggle is set (`1` or `true`).
pub fn env_on(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

/// Available hardware parallelism (1 when unknown).
pub fn cores_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Writes a report document to `<workspace root>/<filename>` and returns
/// the path written.
///
/// # Panics
///
/// Panics when the file cannot be written — a bench without its report is
/// a CI artifact silently missing.
pub fn write_report(filename: &str, doc: &Json) -> PathBuf {
    let path = workspace_root().join(filename);
    std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {filename}: {e}"));
    println!("wrote {}", path.display());
    path
}

/// Minimal flat-JSON number lookup (`"key": 123.4`) — enough for the
/// baseline files, which [`write_report`] itself produces.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// How a measured value may legally relate to its baseline.
#[derive(Debug, Clone, Copy)]
pub enum Tolerance {
    /// Throughput-style: the value must stay above `100 - pct`% of the
    /// baseline (higher is better, only regressions fail).
    FloorPct(f64),
    /// Latency/behaviour-style: the value must stay within ±`pct`% of the
    /// baseline (drift in either direction is a change worth flagging).
    WithinPct(f64),
}

/// One measured value to gate against the committed baseline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineCheck<'a> {
    /// The flat JSON key in both the report and the baseline.
    pub key: &'a str,
    /// This run's value.
    pub current: f64,
    /// The allowed relation to the baseline value.
    pub tolerance: Tolerance,
}

/// Gates this run against a committed baseline file, mirroring the model
/// checker's nightly discipline:
///
/// * a missing/unreadable baseline or key is a **failure** (a gate that
///   silently skips gates nothing);
/// * a baseline measured on a different core count is a **failure** (an
///   incomparable floor gates nothing useful — refresh the baseline from
///   this run's uploaded report);
/// * each [`BaselineCheck`] is then enforced per its [`Tolerance`].
///
/// Prints one line per check and returns `true` when anything failed.
pub fn enforce_baseline(baseline_path: &Path, checks: &[BaselineCheck]) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return true;
        }
    };
    let mut failed = false;
    if let Some(cores) = extract_number(&text, "cores_available") {
        if cores as usize != cores_available() {
            eprintln!(
                "STALE BASELINE: measured on {} core(s) but this machine has {} — the \
                 regression floor is not comparable. Refresh {} from this run's report.",
                cores,
                cores_available(),
                baseline_path.display()
            );
            failed = true;
        }
    }
    for check in checks {
        let Some(base) = extract_number(&text, check.key) else {
            eprintln!("baseline {} lacks {}", baseline_path.display(), check.key);
            failed = true;
            continue;
        };
        let ok = match check.tolerance {
            Tolerance::FloorPct(pct) => check.current >= base * (1.0 - pct / 100.0),
            Tolerance::WithinPct(pct) => (check.current - base).abs() <= base * (pct / 100.0),
        };
        if ok {
            println!(
                "baseline check OK: {} = {:.2} vs baseline {:.2} ({:?})",
                check.key, check.current, base, check.tolerance
            );
        } else {
            eprintln!(
                "REGRESSION: {} = {:.2} vs baseline {:.2} violates {:?}",
                check.key, check.current, base, check.tolerance
            );
            failed = true;
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_reads_flat_keys() {
        let json = "{\n  \"a\": 12.5,\n  \"b_4t\": 300,\n  \"s\": \"text\"\n}";
        assert_eq!(extract_number(json, "a"), Some(12.5));
        assert_eq!(extract_number(json, "b_4t"), Some(300.0));
        assert_eq!(extract_number(json, "missing"), None);
        assert_eq!(extract_number(json, "s"), None);
    }

    #[test]
    fn enforce_baseline_fails_on_missing_file_and_missing_keys() {
        let dir = std::env::temp_dir().join("protogen-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nonexistent-baseline.json");
        let _ = std::fs::remove_file(&path);
        assert!(enforce_baseline(
            &path,
            &[BaselineCheck { key: "x", current: 1.0, tolerance: Tolerance::FloorPct(20.0) }]
        ));
        // Present file, absent key: also a failure.
        std::fs::write(&path, "{\n  \"y\": 1\n}\n").unwrap();
        assert!(enforce_baseline(
            &path,
            &[BaselineCheck { key: "x", current: 1.0, tolerance: Tolerance::FloorPct(20.0) }]
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerances_gate_in_the_right_directions() {
        let dir = std::env::temp_dir().join("protogen-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            format!("{{\n  \"cores_available\": {},\n  \"rate\": 100\n}}\n", cores_available()),
        )
        .unwrap();
        let gate = |current: f64, tolerance: Tolerance| {
            enforce_baseline(&path, &[BaselineCheck { key: "rate", current, tolerance }])
        };
        // Floor: improvements always pass, 20% drops fail.
        assert!(!gate(130.0, Tolerance::FloorPct(20.0)));
        assert!(!gate(81.0, Tolerance::FloorPct(20.0)));
        assert!(gate(79.0, Tolerance::FloorPct(20.0)));
        // Within: drift in either direction fails.
        assert!(!gate(110.0, Tolerance::WithinPct(20.0)));
        assert!(gate(130.0, Tolerance::WithinPct(20.0)));
        assert!(gate(70.0, Tolerance::WithinPct(20.0)));
        std::fs::remove_file(&path).unwrap();
    }
}
