//! Shared infrastructure for the bench harnesses in `benches/`, plus the
//! harness index.
//!
//! Each bench regenerates one of the paper's tables or figures (DESIGN.md
//! §5) and then measures the machinery behind it. `mc_scaling` and
//! `sim_scaling` additionally write machine-readable reports
//! (`BENCH_mc.json`, `BENCH_sim.json`) for the nightly CI regression
//! gates; both go through this crate's one report writer and baseline
//! checker rather than hand-rolling their serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use protogen_sim::Json;
use std::path::{Path, PathBuf};

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// Whether an environment toggle is set (`1` or `true`).
pub fn env_on(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

/// Available hardware parallelism (1 when unknown).
pub fn cores_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The up-front verdict on a `*_scaling` bench's speedup assertion:
/// whether this host can measure it, and what to do when it cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingGate {
    /// Enforcement requested and the host has enough cores: assert the
    /// speedup threshold at the end of the run.
    Enforce,
    /// Enforcement not requested: measure, record, gate nothing.
    RecordOnly,
    /// Enforcement explicitly requested (`*_ENFORCE_SCALING`) on a host
    /// with fewer cores than the bench's workers. The run cannot measure
    /// what it was asked to gate, so it must **fail loudly** — a silent
    /// skip here is a nightly that gates nothing while looking green.
    FailUndersized,
}

/// Decides, **up front**, whether a multi-thread-speedup assertion at
/// `threads` workers is meaningful on this host, and returns the decision
/// string the report JSON records under its `speedup_gate` key. A host
/// with fewer cores than workers measures scheduling overhead, not
/// parallel speedup — BENCH_mc's seed baseline was recorded on a 1-core
/// box, where an unconditional gate asserted an impossible 1.8× and
/// misfired by design. When the caller did not request enforcement the
/// gate degrades to record-only; when it *did* (`enforce_requested`), an
/// undersized host is a hard failure, never a skip.
pub fn speedup_gate(threads: usize, enforce_requested: bool) -> (ScalingGate, String) {
    speedup_gate_with_cores(threads, cores_available(), enforce_requested)
}

/// [`speedup_gate`] with the core count injected, so every quadrant of
/// the decision is unit-testable regardless of the host running the
/// tests.
pub fn speedup_gate_with_cores(
    threads: usize,
    cores: usize,
    enforce_requested: bool,
) -> (ScalingGate, String) {
    match (cores >= threads, enforce_requested) {
        (true, true) => {
            (ScalingGate::Enforce, format!("enforced ({cores} cores >= {threads} threads)"))
        }
        (true, false) => (
            ScalingGate::RecordOnly,
            format!(
                "recorded only ({cores} cores >= {threads} threads, enforcement not requested)"
            ),
        ),
        (false, true) => (
            ScalingGate::FailUndersized,
            format!(
                "unsatisfiable: scaling enforcement requested but cores_available \
                 ({cores}) < threads ({threads})"
            ),
        ),
        (false, false) => (
            ScalingGate::RecordOnly,
            format!("recorded only: cores_available ({cores}) < threads ({threads})"),
        ),
    }
}

/// Applies a multi-thread-speedup assertion uniformly for the `*_scaling`
/// benches, honouring the up-front [`speedup_gate`] decision:
///
/// * [`ScalingGate::RecordOnly`] prints the decision and passes — the
///   measurement is informational;
/// * [`ScalingGate::FailUndersized`] **fails** regardless of the measured
///   ratio: enforcement was requested on a host that cannot measure it,
///   and the fix is a bigger runner or unsetting the toggle, not a skip;
/// * [`ScalingGate::Enforce`] treats missing measurement points as a
///   structured failure and enforces `speedup > threshold` otherwise.
///
/// Returns `true` when the gate failed.
pub fn enforce_scaling(
    gate: ScalingGate,
    decision: &str,
    speedup: Option<f64>,
    threshold: f64,
    label: &str,
) -> bool {
    match gate {
        ScalingGate::RecordOnly => {
            println!("scaling check {decision}");
            false
        }
        ScalingGate::FailUndersized => {
            eprintln!(
                "SCALING FAILURE: {decision} — provision a runner with at least as many \
                 cores as the bench's workers, or unset the *_ENFORCE_SCALING toggle"
            );
            true
        }
        ScalingGate::Enforce => match speedup {
            None => {
                eprintln!("SCALING FAILURE: {label} needs both 1- and 4-worker points");
                true
            }
            Some(s) if s > threshold => {
                println!("scaling check OK: {s:.2}× > {threshold}×");
                false
            }
            Some(s) => {
                eprintln!("SCALING FAILURE: {label} speedup {s:.2}× ≤ {threshold}×");
                true
            }
        },
    }
}

/// One cache-count point of the canonicalization microbenchmark: how many
/// states per second the symmetry canonicalizer fingerprints through the
/// full n!-permutation `encode_permuted_to` sweep versus the pruned
/// sort-key path, over the same reachable-state corpus.
#[derive(Debug, Clone, Copy)]
pub struct CanonPoint {
    /// Cache count (n! permutations for the full sweep).
    pub caches: usize,
    /// States the corpus holds.
    pub corpus: usize,
    /// Mean permutations the pruned path actually enumerated per state.
    pub mean_candidates: f64,
    /// Full-sweep canonicalizations per second.
    pub full_states_per_sec: f64,
    /// Pruned canonicalizations per second.
    pub pruned_states_per_sec: f64,
}

impl CanonPoint {
    /// Pruned-over-full throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.pruned_states_per_sec / self.full_states_per_sec
    }
}

/// Measures the canonicalization microbenchmark (ISSUE 5 satellite) on
/// the MESI non-stalling controllers at 2, 3, and 4 caches: a reachable
/// corpus of `corpus` states per cache count, canonicalized `reps` times
/// through the seed full-sweep discipline (minimum fingerprint over all
/// n! streamed `encode_permuted_to` encodings) and through the pruned
/// sort-key path. The pruned path's *representative* equivalence to the
/// full sweep is pinned separately by the `canon_prop` proptests; this
/// measures the enumeration cost the pruning removes.
pub fn canonicalization_points(corpus: usize, reps: usize) -> Vec<CanonPoint> {
    use protogen_mc::{permutations, Canonicalizer, Fingerprinter, McConfig, ModelChecker};
    use std::time::Instant;
    let ssp = protogen_protocols::mesi();
    let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::non_stalling())
        .expect("MESI generates");
    let mut out = Vec::new();
    for n in 2..=4usize {
        let mc = ModelChecker::new(&g.cache, &g.directory, McConfig::with_caches(n));
        let states = mc.sample_states(corpus);
        let perms = permutations(n);
        let invs: Vec<Vec<u8>> = perms.iter().map(|p| protogen_mc::invert(p)).collect();

        // Full sweep: minimum fingerprint over all n! streamed encodings
        // (the seed hot path).
        let start = Instant::now();
        for _ in 0..reps {
            for s in &states {
                let mut best = u64::MAX;
                for (p, inv) in perms.iter().zip(&invs) {
                    let mut h = Fingerprinter::new();
                    s.encode_permuted_to(p, inv, &mut h);
                    best = best.min(h.finish());
                }
                std::hint::black_box(best);
            }
        }
        let full_secs = start.elapsed().as_secs_f64();

        // Pruned path (the shipping hot path).
        let mut canon = Canonicalizer::new(n, true);
        let start = Instant::now();
        for _ in 0..reps {
            for s in &states {
                std::hint::black_box(canon.canonical_fp(s));
            }
        }
        let pruned_secs = start.elapsed().as_secs_f64();

        let mean_candidates = states.iter().map(|s| canon.pruned_candidates(s) as f64).sum::<f64>()
            / states.len() as f64;
        let total = (reps * states.len()) as f64;
        out.push(CanonPoint {
            caches: n,
            corpus: states.len(),
            mean_candidates,
            full_states_per_sec: total / full_secs,
            pruned_states_per_sec: total / pruned_secs,
        });
    }
    out
}

/// Writes a report document to `<workspace root>/<filename>` and returns
/// the path written.
///
/// # Panics
///
/// Panics when the file cannot be written — a bench without its report is
/// a CI artifact silently missing.
pub fn write_report(filename: &str, doc: &Json) -> PathBuf {
    let path = workspace_root().join(filename);
    std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {filename}: {e}"));
    println!("wrote {}", path.display());
    path
}

/// Minimal flat-JSON number lookup (`"key": 123.4`) — enough for the
/// baseline files, which [`write_report`] itself produces.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// How a measured value may legally relate to its baseline.
#[derive(Debug, Clone, Copy)]
pub enum Tolerance {
    /// Throughput-style: the value must stay above `100 - pct`% of the
    /// baseline (higher is better, only regressions fail).
    FloorPct(f64),
    /// Latency/behaviour-style: the value must stay within ±`pct`% of the
    /// baseline (drift in either direction is a change worth flagging).
    WithinPct(f64),
}

/// One measured value to gate against the committed baseline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineCheck<'a> {
    /// The flat JSON key in both the report and the baseline.
    pub key: &'a str,
    /// This run's value.
    pub current: f64,
    /// The allowed relation to the baseline value.
    pub tolerance: Tolerance,
}

/// Gates this run against a committed baseline file, mirroring the model
/// checker's nightly discipline:
///
/// * a missing/unreadable baseline or key is a **failure** (a gate that
///   silently skips gates nothing);
/// * a baseline measured on a different core count is a **failure** (an
///   incomparable floor gates nothing useful — refresh the baseline from
///   this run's uploaded report);
/// * each [`BaselineCheck`] is then enforced per its [`Tolerance`].
///
/// Prints one line per check and returns `true` when anything failed.
pub fn enforce_baseline(baseline_path: &Path, checks: &[BaselineCheck]) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return true;
        }
    };
    let mut failed = false;
    if let Some(cores) = extract_number(&text, "cores_available") {
        if cores as usize != cores_available() {
            eprintln!(
                "STALE BASELINE: measured on {} core(s) but this machine has {} — the \
                 regression floor is not comparable. Refresh {} from this run's report.",
                cores,
                cores_available(),
                baseline_path.display()
            );
            failed = true;
        }
    }
    for check in checks {
        let Some(base) = extract_number(&text, check.key) else {
            eprintln!("baseline {} lacks {}", baseline_path.display(), check.key);
            failed = true;
            continue;
        };
        let ok = match check.tolerance {
            Tolerance::FloorPct(pct) => check.current >= base * (1.0 - pct / 100.0),
            Tolerance::WithinPct(pct) => (check.current - base).abs() <= base * (pct / 100.0),
        };
        if ok {
            println!(
                "baseline check OK: {} = {:.2} vs baseline {:.2} ({:?})",
                check.key, check.current, base, check.tolerance
            );
        } else {
            eprintln!(
                "REGRESSION: {} = {:.2} vs baseline {:.2} violates {:?}",
                check.key, check.current, base, check.tolerance
            );
            failed = true;
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_gate_fails_rather_than_skips_when_enforcement_is_unsatisfiable() {
        // Enforcement requested on an undersized host: hard failure, even
        // when the (meaningless) measured ratio would clear the threshold.
        let (gate, decision) = speedup_gate_with_cores(4, 2, true);
        assert_eq!(gate, ScalingGate::FailUndersized);
        assert!(decision.contains("unsatisfiable"), "{decision}");
        assert!(enforce_scaling(gate, &decision, Some(3.0), 1.5, "4-thread"));
        // Same host without the toggle: informational, never fails.
        let (gate, decision) = speedup_gate_with_cores(4, 2, false);
        assert_eq!(gate, ScalingGate::RecordOnly);
        assert!(!enforce_scaling(gate, &decision, Some(0.5), 1.5, "4-thread"));
    }

    #[test]
    fn scaling_gate_enforces_threshold_on_a_big_enough_host() {
        let (gate, decision) = speedup_gate_with_cores(4, 8, true);
        assert_eq!(gate, ScalingGate::Enforce);
        assert!(decision.starts_with("enforced"), "{decision}");
        assert!(!enforce_scaling(gate, &decision, Some(2.0), 1.5, "4-thread"));
        assert!(enforce_scaling(gate, &decision, Some(1.2), 1.5, "4-thread"));
        // Missing points under enforcement are a structured failure.
        assert!(enforce_scaling(gate, &decision, None, 1.5, "4-thread"));
        // Enforcement not requested: recorded, not gated.
        let (gate, decision) = speedup_gate_with_cores(4, 8, false);
        assert_eq!(gate, ScalingGate::RecordOnly);
        assert!(!enforce_scaling(gate, &decision, Some(1.0), 1.5, "4-thread"));
    }

    #[test]
    fn extract_number_reads_flat_keys() {
        let json = "{\n  \"a\": 12.5,\n  \"b_4t\": 300,\n  \"s\": \"text\"\n}";
        assert_eq!(extract_number(json, "a"), Some(12.5));
        assert_eq!(extract_number(json, "b_4t"), Some(300.0));
        assert_eq!(extract_number(json, "missing"), None);
        assert_eq!(extract_number(json, "s"), None);
    }

    #[test]
    fn enforce_baseline_fails_on_missing_file_and_missing_keys() {
        let dir = std::env::temp_dir().join("protogen-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nonexistent-baseline.json");
        let _ = std::fs::remove_file(&path);
        assert!(enforce_baseline(
            &path,
            &[BaselineCheck { key: "x", current: 1.0, tolerance: Tolerance::FloorPct(20.0) }]
        ));
        // Present file, absent key: also a failure.
        std::fs::write(&path, "{\n  \"y\": 1\n}\n").unwrap();
        assert!(enforce_baseline(
            &path,
            &[BaselineCheck { key: "x", current: 1.0, tolerance: Tolerance::FloorPct(20.0) }]
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerances_gate_in_the_right_directions() {
        let dir = std::env::temp_dir().join("protogen-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            format!("{{\n  \"cores_available\": {},\n  \"rate\": 100\n}}\n", cores_available()),
        )
        .unwrap();
        let gate = |current: f64, tolerance: Tolerance| {
            enforce_baseline(&path, &[BaselineCheck { key: "rate", current, tolerance }])
        };
        // Floor: improvements always pass, 20% drops fail.
        assert!(!gate(130.0, Tolerance::FloorPct(20.0)));
        assert!(!gate(81.0, Tolerance::FloorPct(20.0)));
        assert!(gate(79.0, Tolerance::FloorPct(20.0)));
        // Within: drift in either direction fails.
        assert!(!gate(110.0, Tolerance::WithinPct(20.0)));
        assert!(gate(130.0, Tolerance::WithinPct(20.0)));
        assert!(gate(70.0, Tolerance::WithinPct(20.0)));
        std::fs::remove_file(&path).unwrap();
    }
}
