//! Benchmark-only crate; see the `benches/` directory. Each bench harness
//! regenerates one of the paper's tables or figures (DESIGN.md, §5) and
//! then measures the machinery behind it; `mc_scaling` additionally
//! records the model checker's thread-scaling in `BENCH_mc.json` for the
//! nightly CI regression gate.
