//! Benchmark-only crate; see the `benches/` directory. Each bench harness
//! regenerates one of the paper's tables or figures (DESIGN.md, §4) and
//! then measures the machinery behind it with Criterion.
