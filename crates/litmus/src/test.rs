//! The litmus test format and its parser.
//!
//! A litmus test is a tiny multi-threaded program over a handful of shared
//! locations plus (optionally) outcomes asserted never to occur. The
//! concrete syntax is the classical assignment shorthand:
//!
//! ```text
//! litmus SB;
//! thread P0 { x = 1; r0 = y; }
//! thread P1 { y = 1; r1 = x; }
//! ```
//!
//! A statement `loc = n;` (integer right-hand side) is a store; a
//! statement `reg = loc;` (identifier right-hand side) is a load into a
//! register. Registers are write-once and globally unique, so the tuple of
//! register values at the end of an execution — in order of first
//! appearance, thread-major — is the test's *outcome*. `forbid (r0=1,
//! r1=0);` asserts that no execution may satisfy all listed equalities
//! (a partial constraint: unlisted registers are unconstrained).
//!
//! All shared locations start at 0; stores should therefore write non-zero
//! values to be observable.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A data value (matches [`protogen_runtime::Val`]).
pub type Val = u8;

/// One statement of a litmus thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `reg = loc;` — read `addr` into register `reg`.
    Load {
        /// Index into [`LitmusTest::addrs`].
        addr: u8,
        /// Index into [`LitmusTest::registers`].
        reg: u8,
    },
    /// `loc = n;` — write `val` to `addr`.
    Store {
        /// Index into [`LitmusTest::addrs`].
        addr: u8,
        /// The stored value.
        val: Val,
    },
}

/// A parsed litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    /// Test name (`litmus <name>;`).
    pub name: String,
    /// Per-thread programs, in declaration order.
    pub threads: Vec<Vec<Op>>,
    /// Register names; the index is the register id and the position in an
    /// outcome tuple (order of first appearance, thread-major).
    pub registers: Vec<String>,
    /// Shared-location names; the index is the address id.
    pub addrs: Vec<String>,
    /// Forbidden outcomes: each entry is a conjunction of
    /// `(register, value)` equalities that no execution may satisfy.
    pub forbids: Vec<Vec<(u8, Val)>>,
}

impl LitmusTest {
    /// Outcomes (full register tuples) matching a forbid conjunction.
    pub fn violates_forbid(&self, outcome: &[Val]) -> Option<usize> {
        self.forbids
            .iter()
            .position(|conj| conj.iter().all(|&(r, v)| outcome.get(r as usize) == Some(&v)))
    }

    /// Renders a thread's program as source-like text (for reports).
    pub fn render_thread(&self, t: usize) -> String {
        let mut s = String::new();
        for op in &self.threads[t] {
            match *op {
                Op::Load { addr, reg } => s.push_str(&format!(
                    "{} = {}; ",
                    self.registers[reg as usize], self.addrs[addr as usize]
                )),
                Op::Store { addr, val } => {
                    s.push_str(&format!("{} = {}; ", self.addrs[addr as usize], val))
                }
            }
        }
        s.trim_end().to_string()
    }
}

/// Parse errors, with a line number and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for LitmusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "litmus parse error (line {}): {}", self.line, self.msg)
    }
}

impl Error for LitmusParseError {}

/// The classical store-buffering test: the canonical SC/TSO separator.
/// TSO (and anything weaker) allows `(r0, r1) = (0, 0)`.
pub const SB: &str = "litmus SB;
thread P0 { x = 1; r0 = y; }
thread P1 { y = 1; r1 = x; }
";

/// Message passing: a flag-protected publish. Any model at least as strong
/// as TSO forbids `(r0, r1) = (1, 0)`; self-invalidation protocols without
/// epoch decay allow it.
pub const MP: &str = "litmus MP;
thread P0 { x = 1; y = 1; }
thread P1 { r0 = y; r1 = x; }
";

/// Load buffering. `(1, 1)` needs a load to read from a program-order-later
/// store; in-order blocking cores can never show it, so it is asserted
/// forbidden outright.
pub const LB: &str = "litmus LB;
thread P0 { r0 = x; y = 1; }
thread P1 { r1 = y; x = 1; }
forbid (r0=1, r1=1);
";

/// Independent reads of independent writes: the multi-copy-atomicity test.
/// SC and TSO forbid the two readers disagreeing on the write order,
/// `(r0, r1, r2, r3) = (1, 0, 1, 0)`.
pub const IRIW: &str = "litmus IRIW;
thread P0 { x = 1; }
thread P1 { y = 1; }
thread P2 { r0 = x; r1 = y; }
thread P3 { r2 = y; r3 = x; }
";

/// Coherence of read-read pairs: two reads of one location may not observe
/// new-then-old. Even the weak SI/SD protocols keep per-location values
/// monotone at the directory, so `(1, 0)` is asserted forbidden for all.
pub const CORR: &str = "litmus CoRR;
thread P0 { x = 1; }
thread P1 { r0 = x; r1 = x; }
forbid (r0=1, r1=0);
";

/// The bundled tests, parsed: SB, MP, LB, IRIW, CoRR.
pub fn bundled() -> Vec<LitmusTest> {
    [SB, MP, LB, IRIW, CORR]
        .iter()
        .map(|src| parse_litmus(src).expect("bundled litmus sources parse"))
        .collect()
}

/// The limits the harness machinery depends on: thread count is bounded by
/// the runtime's 8-bit sharer bitmask, the rest keep state tuples small.
pub const MAX_THREADS: usize = 8;
/// Maximum distinct shared locations per test.
pub const MAX_ADDRS: usize = 8;
/// Maximum registers (and thus loads) per test.
pub const MAX_REGISTERS: usize = 16;

struct Cursor<'a> {
    toks: Vec<(usize, Tok<'a>)>,
    pos: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    Int(u64),
    Punct(char),
}

impl fmt::Display for Tok<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok<'_>)>, LitmusParseError> {
    let mut toks = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line = line.split("//").next().unwrap_or("");
        let mut rest = line;
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            let c = rest.chars().next().unwrap();
            if c.is_ascii_alphabetic() || c == '_' {
                let end = rest
                    .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                    .unwrap_or(rest.len());
                toks.push((ln + 1, Tok::Ident(&rest[..end])));
                rest = &rest[end..];
            } else if c.is_ascii_digit() {
                let end = rest.find(|ch: char| !ch.is_ascii_digit()).unwrap_or(rest.len());
                let n: u64 = rest[..end].parse().map_err(|_| LitmusParseError {
                    line: ln + 1,
                    msg: format!("integer out of range: {}", &rest[..end]),
                })?;
                toks.push((ln + 1, Tok::Int(n)));
                rest = &rest[end..];
            } else if "{}();,=".contains(c) {
                toks.push((ln + 1, Tok::Punct(c)));
                rest = &rest[c.len_utf8()..];
            } else {
                return Err(LitmusParseError {
                    line: ln + 1,
                    msg: format!("unexpected character `{c}`"),
                });
            }
        }
    }
    Ok(toks)
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<Tok<'a>> {
        self.toks.get(self.pos).map(|&(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(1, |&(l, _)| l)
    }

    fn err(&self, msg: impl Into<String>) -> LitmusParseError {
        LitmusParseError { line: self.line(), msg: msg.into() }
    }

    fn bump(&mut self) -> Option<Tok<'a>> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), LitmusParseError> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            Some(t) => Err(self.err(format!("expected `{c}`, found {t}"))),
            None => Err(self.err(format!("expected `{c}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<&'a str, LitmusParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LitmusParseError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            Some(t) => Err(LitmusParseError { line, msg: format!("expected `{kw}`, found {t}") }),
            None => Err(LitmusParseError { line, msg: format!("expected `{kw}`") }),
        }
    }

    fn expect_val(&mut self) -> Result<Val, LitmusParseError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(n)) if n <= Val::MAX as u64 => Ok(n as Val),
            Some(Tok::Int(n)) => {
                Err(LitmusParseError { line, msg: format!("value {n} exceeds {}", Val::MAX) })
            }
            Some(t) => Err(LitmusParseError { line, msg: format!("expected value, found {t}") }),
            None => Err(LitmusParseError { line, msg: "expected value".into() }),
        }
    }
}

/// Parses litmus source into a validated [`LitmusTest`].
///
/// # Errors
///
/// Returns a [`LitmusParseError`] for syntax errors and for semantic
/// problems: register reuse, a name used both as register and location,
/// or exceeding [`MAX_THREADS`] / [`MAX_ADDRS`] / [`MAX_REGISTERS`].
pub fn parse_litmus(src: &str) -> Result<LitmusTest, LitmusParseError> {
    let mut cur = Cursor { toks: lex(src)?, pos: 0 };
    cur.expect_keyword("litmus")?;
    let name = cur.expect_ident()?.to_string();
    cur.expect_punct(';')?;

    let mut threads: Vec<Vec<Op>> = Vec::new();
    let mut registers: Vec<String> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    let mut forbids: Vec<Vec<(u8, Val)>> = Vec::new();

    let intern_addr = |addrs: &mut Vec<String>, name: &str, line| -> Result<u8, LitmusParseError> {
        if let Some(i) = addrs.iter().position(|a| a == name) {
            return Ok(i as u8);
        }
        if addrs.len() >= MAX_ADDRS {
            return Err(LitmusParseError { line, msg: format!("more than {MAX_ADDRS} locations") });
        }
        addrs.push(name.to_string());
        Ok((addrs.len() - 1) as u8)
    };

    while let Some(tok) = cur.peek() {
        match tok {
            Tok::Ident("thread") => {
                cur.bump();
                cur.expect_ident()?; // thread label, informational
                if threads.len() >= MAX_THREADS {
                    return Err(cur.err(format!("more than {MAX_THREADS} threads")));
                }
                cur.expect_punct('{')?;
                let mut ops = Vec::new();
                while cur.peek() != Some(Tok::Punct('}')) {
                    let line = cur.line();
                    let lhs = cur.expect_ident()?;
                    cur.expect_punct('=')?;
                    match cur.peek() {
                        Some(Tok::Int(_)) => {
                            let val = cur.expect_val()?;
                            let addr = intern_addr(&mut addrs, lhs, line)?;
                            ops.push(Op::Store { addr, val });
                        }
                        Some(Tok::Ident(_)) => {
                            let loc = cur.expect_ident()?;
                            if registers.iter().any(|r| r == lhs) {
                                return Err(LitmusParseError {
                                    line,
                                    msg: format!("register {lhs} assigned twice"),
                                });
                            }
                            if registers.len() >= MAX_REGISTERS {
                                return Err(LitmusParseError {
                                    line,
                                    msg: format!("more than {MAX_REGISTERS} registers"),
                                });
                            }
                            registers.push(lhs.to_string());
                            let reg = (registers.len() - 1) as u8;
                            let addr = intern_addr(&mut addrs, loc, line)?;
                            ops.push(Op::Load { addr, reg });
                        }
                        other => {
                            return Err(LitmusParseError {
                                line,
                                msg: match other {
                                    Some(t) => format!("expected value or location, found {t}"),
                                    None => "expected value or location".into(),
                                },
                            })
                        }
                    }
                    cur.expect_punct(';')?;
                }
                cur.expect_punct('}')?;
                threads.push(ops);
            }
            Tok::Ident("forbid") => {
                cur.bump();
                cur.expect_punct('(')?;
                let mut conj = Vec::new();
                loop {
                    let line = cur.line();
                    let reg_name = cur.expect_ident()?;
                    let reg = registers.iter().position(|r| r == reg_name).ok_or_else(|| {
                        LitmusParseError { line, msg: format!("unknown register {reg_name}") }
                    })?;
                    cur.expect_punct('=')?;
                    let val = cur.expect_val()?;
                    conj.push((reg as u8, val));
                    match cur.bump() {
                        Some(Tok::Punct(',')) => continue,
                        Some(Tok::Punct(')')) => break,
                        Some(t) => return Err(cur.err(format!("expected `,` or `)`, found {t}"))),
                        None => return Err(cur.err("unterminated forbid clause")),
                    }
                }
                cur.expect_punct(';')?;
                forbids.push(conj);
            }
            t => return Err(cur.err(format!("expected `thread` or `forbid`, found {t}"))),
        }
    }

    if threads.is_empty() {
        return Err(LitmusParseError { line: 1, msg: "litmus test declares no threads".into() });
    }
    if let Some(clash) = registers.iter().find(|r| addrs.contains(r)) {
        return Err(LitmusParseError {
            line: 1,
            msg: format!("{clash} used both as register and location"),
        });
    }
    Ok(LitmusTest { name, threads, registers, addrs, forbids })
}

/// Collects the distinct outcome tuples of `set` as display strings
/// (`"(r0=0, r1=1)"`) — used by reports and error messages.
pub fn render_outcomes(test: &LitmusTest, set: &BTreeSet<Vec<Val>>) -> Vec<String> {
    set.iter()
        .map(|o| {
            let fields: Vec<String> =
                o.iter().enumerate().map(|(i, v)| format!("{}={v}", test.registers[i])).collect();
            format!("({})", fields.join(", "))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_tests_parse() {
        let tests = bundled();
        assert_eq!(tests.len(), 5);
        let sb = &tests[0];
        assert_eq!(sb.name, "SB");
        assert_eq!(sb.threads.len(), 2);
        assert_eq!(sb.registers, vec!["r0", "r1"]);
        assert_eq!(sb.addrs, vec!["x", "y"]);
        assert_eq!(
            sb.threads[0],
            vec![Op::Store { addr: 0, val: 1 }, Op::Load { addr: 1, reg: 0 }]
        );
        let iriw = &tests[3];
        assert_eq!(iriw.threads.len(), 4);
        assert_eq!(iriw.registers.len(), 4);
    }

    #[test]
    fn forbid_is_a_partial_constraint() {
        let corr = parse_litmus(CORR).unwrap();
        assert_eq!(corr.violates_forbid(&[1, 0]), Some(0));
        assert_eq!(corr.violates_forbid(&[1, 1]), None);
        assert_eq!(corr.violates_forbid(&[0, 0]), None);
    }

    #[test]
    fn rejects_register_reuse_and_name_clashes() {
        let reuse = "litmus T;\nthread P0 { r0 = x; r0 = y; }\n";
        assert!(parse_litmus(reuse).unwrap_err().msg.contains("assigned twice"));
        let clash = "litmus T;\nthread P0 { x = 1; x = y; }\n";
        assert!(parse_litmus(clash).unwrap_err().msg.contains("both as register and location"));
        let noreg = "litmus T;\nthread P0 { r0 = x; }\nforbid (bogus=1);\n";
        assert!(parse_litmus(noreg).unwrap_err().msg.contains("unknown register"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_litmus("litmus T;\nthread P0 { x # 1; }\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_litmus("").is_err());
        assert!(parse_litmus("litmus T;").unwrap_err().msg.contains("no threads"));
    }

    #[test]
    fn render_thread_round_trips_the_shorthand() {
        let mp = parse_litmus(MP).unwrap();
        assert_eq!(mp.render_thread(0), "x = 1; y = 1;");
        assert_eq!(mp.render_thread(1), "r0 = y; r1 = x;");
    }
}
