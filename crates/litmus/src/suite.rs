//! Classification and reporting: running litmus tests across protocols
//! and deciding SC / TSO / WEAK per protocol.
//!
//! A protocol's verdict on one test compares its outcome set `O` against
//! the reference models: `O ⊆ SC` → SC, else `O ⊆ TSO` → TSO, else WEAK.
//! The protocol's overall verdict is the weakest verdict across the suite,
//! and the suite *passes* for a protocol iff that verdict equals the
//! memory model its SSP promises (`Ssp::consistency`) — a protocol must
//! exhibit its documented relaxations, not just stay within them, so an
//! SC-strong implementation labelled TSO fails the gate just like a
//! too-weak one.

use crate::machine::{Harness, Limits, LitmusError};
use crate::reference::{sc_outcomes, tso_outcomes};
use crate::test::{render_outcomes, LitmusTest, Val};
use protogen_core::{generate, GenConfig};
use protogen_spec::{MemoryModel, Ssp};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Where a protocol's observable outcomes sit in the model hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Every outcome is an SC outcome.
    Sc,
    /// Some outcome needs store buffering, none needs more.
    Tso,
    /// Some outcome is not even a TSO outcome.
    Weak,
}

impl Verdict {
    /// The verdict a protocol's promised memory model corresponds to.
    pub fn promised(m: MemoryModel) -> Verdict {
        match m {
            MemoryModel::Sc => Verdict::Sc,
            MemoryModel::Tso => Verdict::Tso,
            MemoryModel::Weak => Verdict::Weak,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Sc => "SC",
            Verdict::Tso => "TSO",
            Verdict::Weak => "WEAK",
        })
    }
}

/// One protocol's behaviour on one litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestReport {
    /// Test name.
    pub test: String,
    /// Every outcome the protocol can produce.
    pub outcomes: BTreeSet<Vec<Val>>,
    /// Containment verdict for this test alone.
    pub verdict: Verdict,
    /// Size of the SC reference outcome set (for reports).
    pub n_sc: usize,
    /// Size of the TSO reference outcome set (for reports).
    pub n_tso: usize,
    /// Rendered outcomes that violate the test's `forbid` clauses
    /// (must be empty for the suite to pass).
    pub forbidden: Vec<String>,
    /// Rendered outcomes beyond the SC reference (the interesting ones).
    pub beyond_sc: Vec<String>,
}

/// One protocol's behaviour across the whole suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolReport {
    /// Protocol name (`Ssp::name`).
    pub protocol: String,
    /// The verdict the SSP's declared consistency model corresponds to.
    pub promised: Verdict,
    /// Per-test results, in suite order.
    pub tests: Vec<TestReport>,
}

impl ProtocolReport {
    /// The weakest per-test verdict: what the protocol observably is.
    pub fn verdict(&self) -> Verdict {
        self.tests.iter().map(|t| t.verdict).max().unwrap_or(Verdict::Sc)
    }

    /// Classified exactly as promised and no forbidden outcome observed.
    pub fn passed(&self) -> bool {
        self.verdict() == self.promised && self.tests.iter().all(|t| t.forbidden.is_empty())
    }
}

/// The full suite result: every protocol against every test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteReport {
    /// Per-protocol results, in input order.
    pub protocols: Vec<ProtocolReport>,
}

impl SuiteReport {
    /// Every protocol classified exactly as promised.
    pub fn passed(&self) -> bool {
        self.protocols.iter().all(ProtocolReport::passed)
    }

    /// A plain-text report (the CLI's output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for p in &self.protocols {
            let status = if p.passed() { "ok" } else { "FAIL" };
            s.push_str(&format!(
                "{}: promised {}, observed {} [{}]\n",
                p.protocol,
                p.promised,
                p.verdict(),
                status
            ));
            for t in &p.tests {
                s.push_str(&format!(
                    "  {:<5} {:<4} {} outcomes (SC ref {}, TSO ref {})",
                    t.test,
                    t.verdict.to_string(),
                    t.outcomes.len(),
                    t.n_sc,
                    t.n_tso
                ));
                if !t.beyond_sc.is_empty() {
                    s.push_str(&format!("; beyond SC: {}", t.beyond_sc.join(" ")));
                }
                if !t.forbidden.is_empty() {
                    s.push_str(&format!("; FORBIDDEN: {}", t.forbidden.join(" ")));
                }
                s.push('\n');
            }
        }
        s
    }

    /// A GitHub-flavoured markdown table (EXPERIMENTS.md, CI artifacts).
    pub fn render_markdown(&self) -> String {
        let tests: Vec<&str> = self
            .protocols
            .first()
            .map(|p| p.tests.iter().map(|t| t.test.as_str()).collect())
            .unwrap_or_default();
        let mut s = String::from("| protocol | promised |");
        for t in &tests {
            s.push_str(&format!(" {t} |"));
        }
        s.push_str(" observed | gate |\n|---|---|");
        s.push_str(&"---|".repeat(tests.len() + 2));
        s.push('\n');
        for p in &self.protocols {
            s.push_str(&format!("| {} | {} |", p.protocol, p.promised));
            for t in &p.tests {
                s.push_str(&format!(" {} ({}) |", t.verdict, t.outcomes.len()));
            }
            s.push_str(&format!(
                " {} | {} |\n",
                p.verdict(),
                if p.passed() { "pass" } else { "**fail**" }
            ));
        }
        s
    }
}

/// A [`LitmusError`] with the `(protocol, test)` pair it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteError {
    /// The protocol being driven.
    pub protocol: String,
    /// The test being enumerated.
    pub test: String,
    /// The underlying failure.
    pub source: LitmusError,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: {}", self.protocol, self.test, self.source)
    }
}

impl Error for SuiteError {}

/// Runs one litmus test against one wired-up protocol.
///
/// # Errors
///
/// Propagates enumeration failures as [`LitmusError`].
pub fn run_test(
    harness: &Harness<'_>,
    test: &LitmusTest,
    limits: &Limits,
) -> Result<TestReport, LitmusError> {
    let outcomes = harness.outcomes(test, limits)?;
    let sc = sc_outcomes(test);
    let tso = tso_outcomes(test);
    let verdict = if outcomes.is_subset(&sc) {
        Verdict::Sc
    } else if outcomes.is_subset(&tso) {
        Verdict::Tso
    } else {
        Verdict::Weak
    };
    let forbidden: BTreeSet<Vec<Val>> =
        outcomes.iter().filter(|o| test.violates_forbid(o).is_some()).cloned().collect();
    let beyond: BTreeSet<Vec<Val>> = outcomes.difference(&sc).cloned().collect();
    Ok(TestReport {
        test: test.name.clone(),
        verdict,
        n_sc: sc.len(),
        n_tso: tso.len(),
        forbidden: render_outcomes(test, &forbidden),
        beyond_sc: render_outcomes(test, &beyond),
        outcomes,
    })
}

/// Runs the whole suite: every `ssp` × every `test`, sharded over
/// `workers` OS threads (pair `i` goes to worker `i % workers`). The
/// report is assembled in input order, so it is identical for any worker
/// count — a conformance test relies on this.
///
/// # Errors
///
/// Returns the first failing `(protocol, test)` pair in input order.
pub fn run_suite(
    ssps: &[Ssp],
    tests: &[LitmusTest],
    limits: &Limits,
    workers: usize,
) -> Result<SuiteReport, SuiteError> {
    let workers = workers.max(1);
    let generated: Vec<_> = ssps
        .iter()
        .map(|ssp| generate(ssp, &GenConfig::default()).expect("bundled protocols generate"))
        .collect();
    let harnesses: Vec<Harness<'_>> =
        ssps.iter().zip(&generated).map(|(ssp, g)| Harness::new(ssp, g)).collect();

    let pairs: Vec<(usize, usize)> =
        (0..ssps.len()).flat_map(|p| (0..tests.len()).map(move |t| (p, t))).collect();
    let mut slots: Vec<Option<Result<TestReport, SuiteError>>> = vec![None; pairs.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let harnesses = &harnesses;
            let pairs = &pairs;
            handles.push(scope.spawn(move || {
                let mut results = Vec::new();
                for (i, &(p, t)) in pairs.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let r = run_test(&harnesses[p], &tests[t], limits).map_err(|e| SuiteError {
                        protocol: ssps[p].name.clone(),
                        test: tests[t].name.clone(),
                        source: e,
                    });
                    results.push((i, r));
                }
                results
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("litmus worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    let mut protocols: Vec<ProtocolReport> = ssps
        .iter()
        .map(|ssp| ProtocolReport {
            protocol: ssp.name.clone(),
            promised: Verdict::promised(ssp.consistency),
            tests: Vec::new(),
        })
        .collect();
    for (slot, &(p, _)) in slots.into_iter().zip(&pairs) {
        let report = slot.expect("every pair sharded to exactly one worker")?;
        protocols[p].tests.push(report);
    }
    Ok(SuiteReport { protocols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::bundled;

    #[test]
    fn verdict_order_matches_model_strength() {
        assert!(Verdict::Sc < Verdict::Tso && Verdict::Tso < Verdict::Weak);
        assert_eq!(Verdict::promised(MemoryModel::Sc), Verdict::Sc);
        assert_eq!(Verdict::promised(MemoryModel::Tso), Verdict::Tso);
        assert_eq!(Verdict::promised(MemoryModel::Weak), Verdict::Weak);
    }

    #[test]
    fn suite_classifies_msi_and_tso_cc_as_promised() {
        let ssps = vec![protogen_protocols::msi(), protogen_protocols::tso_cc()];
        let report = run_suite(&ssps, &bundled(), &Limits::default(), 2).unwrap();
        assert!(report.passed(), "{}", report.render_text());
        assert_eq!(report.protocols[0].verdict(), Verdict::Sc);
        assert_eq!(report.protocols[1].verdict(), Verdict::Tso);
    }

    #[test]
    fn markdown_table_has_a_row_per_protocol() {
        let ssps = vec![protogen_protocols::msi()];
        let report = run_suite(&ssps, &bundled(), &Limits::default(), 1).unwrap();
        let md = report.render_markdown();
        assert!(md.contains("| MSI | SC |"), "{md}");
        assert!(md.contains("| pass |"), "{md}");
    }
}
