//! Litmus-test harness for generated coherence protocols.
//!
//! The model checker (`crates/mc`) verifies per-block safety under a
//! pluggable property set; this crate answers the complementary
//! *cross-block* question: what memory model do a protocol's observable
//! executions actually implement? It runs the classical litmus tests —
//! store buffering (SB), message passing (MP), load buffering (LB),
//! independent reads of independent writes (IRIW), read-read coherence
//! (CoRR) — through the generated cache and directory FSMs over multiple
//! locations, enumerates **every** interleaving of program steps, message
//! deliveries, and spontaneous self-invalidation/self-downgrade decay, and
//! compares the outcome set against executable SC and TSO reference
//! models.
//!
//! A protocol passes when it is classified exactly as its SSP promises:
//! MSI-family protocols must be SC, TSO-CC must show store-buffering
//! relaxations but nothing weaker, and the SI/SD protocol must exhibit its
//! weak sync-point semantics.
//!
//! # Example
//!
//! ```
//! use protogen_litmus::{bundled, run_suite, Limits, Verdict};
//!
//! let ssps = vec![protogen_protocols::msi(), protogen_protocols::tso_cc()];
//! let report = run_suite(&ssps, &bundled(), &Limits::default(), 2).unwrap();
//! assert!(report.passed());
//! assert_eq!(report.protocols[0].verdict(), Verdict::Sc);
//! assert_eq!(report.protocols[1].verdict(), Verdict::Tso);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
pub mod reference;
mod suite;
mod test;

pub use machine::{Harness, Limits, LitmusError};
pub use suite::{
    run_suite, run_test, ProtocolReport, SuiteError, SuiteReport, TestReport, Verdict,
};
pub use test::{
    bundled, parse_litmus, render_outcomes, LitmusParseError, LitmusTest, Op, Val, CORR, IRIW, LB,
    MAX_ADDRS, MAX_REGISTERS, MAX_THREADS, MP, SB,
};
