//! Reference memory models: the outcome sets a litmus test can produce
//! under sequential consistency and under TSO.
//!
//! Both are small operational models enumerated exhaustively:
//!
//! * **SC** — threads interleave whole operations against a single memory;
//!   a load returns the current memory value (Lamport's definition).
//! * **TSO** — each thread owns a FIFO store buffer. A store enqueues
//!   locally; an enqueued store drains to memory at any later point, in
//!   FIFO order. A load first forwards from the newest same-address store
//!   in its *own* buffer, else reads memory (the standard x86-TSO
//!   operational model). SC executions are the subset that drains every
//!   store immediately, so `sc ⊆ tso` by construction.
//!
//! Outcomes are register tuples in [`LitmusTest::registers`] order.

use crate::test::{LitmusTest, Op, Val};
use std::collections::{BTreeSet, HashSet};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RefState {
    cursor: Vec<u8>,
    mem: Vec<Val>,
    regs: Vec<Val>,
    /// Per-thread FIFO store buffers; always empty in the SC model.
    buffers: Vec<Vec<(u8, Val)>>,
}

fn enumerate(test: &LitmusTest, buffered: bool) -> BTreeSet<Vec<Val>> {
    let n = test.threads.len();
    let init = RefState {
        cursor: vec![0; n],
        mem: vec![0; test.addrs.len()],
        regs: vec![0; test.registers.len()],
        buffers: vec![Vec::new(); n],
    };
    let mut outcomes = BTreeSet::new();
    let mut seen: HashSet<RefState> = HashSet::new();
    let mut stack = vec![init];
    while let Some(st) = stack.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        let done = (0..n).all(|t| st.cursor[t] as usize == test.threads[t].len())
            && st.buffers.iter().all(Vec::is_empty);
        if done {
            outcomes.insert(st.regs.clone());
            continue;
        }
        for t in 0..n {
            // Execute the thread's next operation.
            if let Some(&op) = test.threads[t].get(st.cursor[t] as usize) {
                let mut s = st.clone();
                s.cursor[t] += 1;
                match op {
                    Op::Load { addr, reg } => {
                        let fwd = s.buffers[t].iter().rev().find(|&&(a, _)| a == addr);
                        s.regs[reg as usize] = fwd.map_or(s.mem[addr as usize], |&(_, v)| v);
                    }
                    Op::Store { addr, val } => {
                        if buffered {
                            s.buffers[t].push((addr, val));
                        } else {
                            s.mem[addr as usize] = val;
                        }
                    }
                }
                stack.push(s);
            }
            // Drain the thread's oldest buffered store to memory.
            if !st.buffers[t].is_empty() {
                let mut s = st.clone();
                let (addr, val) = s.buffers[t].remove(0);
                s.mem[addr as usize] = val;
                stack.push(s);
            }
        }
    }
    outcomes
}

/// All outcomes the test admits under sequential consistency.
pub fn sc_outcomes(test: &LitmusTest) -> BTreeSet<Vec<Val>> {
    enumerate(test, false)
}

/// All outcomes the test admits under TSO (store buffers with own-buffer
/// forwarding). Always a superset of [`sc_outcomes`].
pub fn tso_outcomes(test: &LitmusTest) -> BTreeSet<Vec<Val>> {
    enumerate(test, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test::{bundled, parse_litmus, CORR, IRIW, LB, MP, SB};

    fn outs(src: &str, buffered: bool) -> BTreeSet<Vec<Val>> {
        enumerate(&parse_litmus(src).unwrap(), buffered)
    }

    #[test]
    fn sb_separates_sc_from_tso() {
        let sc = outs(SB, false);
        let tso = outs(SB, true);
        assert!(!sc.contains(&vec![0, 0]), "SC forbids both loads missing both stores");
        assert!(tso.contains(&vec![0, 0]), "TSO's buffered stores allow (0,0)");
        assert_eq!(sc.len(), 3);
        assert_eq!(tso.len(), 4);
    }

    #[test]
    fn mp_and_iriw_hold_under_tso() {
        // TSO keeps message passing intact: r0=1 (flag seen) forces r1=1.
        assert!(!outs(MP, true).contains(&vec![1, 0]));
        // …and is multi-copy atomic: readers agree on the write order.
        assert!(!outs(IRIW, true).contains(&vec![1, 0, 1, 0]));
    }

    #[test]
    fn lb_and_corr_exotic_outcomes_never_appear() {
        assert!(!outs(LB, true).contains(&vec![1, 1]));
        assert!(!outs(CORR, true).contains(&vec![1, 0]));
    }

    #[test]
    fn sc_is_always_a_subset_of_tso() {
        for test in bundled() {
            let sc = sc_outcomes(&test);
            let tso = tso_outcomes(&test);
            assert!(sc.is_subset(&tso), "{}: SC ⊄ TSO", test.name);
        }
    }
}
