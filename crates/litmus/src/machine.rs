//! The multi-address litmus machine: drives a generated protocol's cache
//! and directory FSMs over several blocks at once and enumerates every
//! interleaving of a litmus test exhaustively.
//!
//! # Model
//!
//! One cache controller per litmus thread plus one directory node, each
//! holding an independent FSM instance per shared location (coherence is
//! specified per block, §IV-A of the paper). Messages travel per-`(src,
//! dst)` channels; on an ordered network each location's oldest queued
//! message is that location's head (the simulator's virtual-channel-per-
//! block semantics, `crates/sim`), on an unordered network every queued
//! message is deliverable.
//!
//! Cores are **in-order and blocking**: a thread issues its next program
//! operation only after the previous one performed. Loads that hit return
//! the local copy — possibly stale, which is exactly the behaviour the
//! harness exists to observe.
//!
//! # Enumeration
//!
//! A run starts from a *warmed-up* state: every thread loads every
//! location once, run to quiescence, so all caches start with a (shared,
//! value 0) copy and self-invalidation protocols have something to decay.
//! From there the enumerator explores every successor of every reachable
//! state — program issues, message deliveries, and the spontaneous
//! self-invalidation (`ArcNote::SelfInv`, whole-cache when the SSP sets
//! `si_epoch`) and self-downgrade (`ArcNote::SelfDown`) steps — with a
//! visited set for termination. Demand evictions never fire: capacity
//! pressure is not part of a litmus test's semantics.
//!
//! Terminal states (all program operations performed, network drained)
//! contribute their register tuple to the outcome set. The enumeration is
//! exhaustive, so the outcome set is independent of exploration order; the
//! `seed` in [`Limits`] only rotates successor order to make that property
//! testable.

use crate::test::{LitmusTest, Op, Val};
use protogen_core::Generated;
use protogen_runtime::{
    apply_into, select_arc_indexed, ApplyOutcome, CacheBlock, DirEntry, FsmIndex, MachineCtx, Msg,
    NodeId,
};
use protogen_spec::{Access, Arc, ArcKind, ArcNote, Event, Fsm, Ssp};
use std::collections::{BTreeSet, HashSet};
use std::error::Error;
use std::fmt;

/// Exploration limits and (order-only) perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Abort with [`LitmusError::StateLimit`] beyond this many distinct
    /// states per `(protocol, test)` run.
    pub max_states: usize,
    /// Rotates successor exploration order. The enumeration is exhaustive,
    /// so any seed yields the same outcome set (a conformance test relies
    /// on this).
    pub seed: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_states: 2_000_000, seed: 0 }
    }
}

/// Failures while driving a protocol through a litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LitmusError {
    /// A machine had no arc for a delivered message — the protocol is
    /// incomplete (the model checker reports the same situation).
    UnexpectedMessage {
        /// Receiving node (`n0`…; the highest id is the directory).
        node: String,
        /// The receiving FSM state.
        state: String,
        /// The message.
        msg: String,
    },
    /// A non-terminal state with no enabled step.
    Deadlock {
        /// Human-readable situation.
        detail: String,
    },
    /// The state space exceeded [`Limits::max_states`].
    StateLimit {
        /// The configured bound.
        limit: usize,
    },
    /// The runtime rejected an arc application (generation bug).
    Exec(String),
}

impl fmt::Display for LitmusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusError::UnexpectedMessage { node, state, msg } => {
                write!(f, "node {node} in state {state} has no transition for {msg}")
            }
            LitmusError::Deadlock { detail } => write!(f, "litmus deadlock: {detail}"),
            LitmusError::StateLimit { limit } => {
                write!(f, "state space exceeded {limit} states (raise --depth)")
            }
            LitmusError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl Error for LitmusError {}

/// A generated protocol wired up for litmus runs.
#[derive(Debug)]
pub struct Harness<'a> {
    ssp: &'a Ssp,
    cache: &'a Fsm,
    dir: &'a Fsm,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
}

/// One litmus machine state: per-(thread, location) cache blocks,
/// per-location directory entries, per-channel in-flight messages tagged
/// with their location, and the program state of every thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MState {
    /// `caches[t * n_addrs + a]` — thread `t`'s block for location `a`.
    caches: Vec<CacheBlock>,
    /// `dirs[a]` — the directory entry for location `a`.
    dirs: Vec<DirEntry>,
    /// `chans[src * n_nodes + dst]` — FIFO of `(location, message)`.
    chans: Vec<Vec<(u8, Msg)>>,
    /// Next program operation per thread.
    cursor: Vec<u8>,
    /// Whether the thread's current operation issued but has not performed.
    in_flight: Vec<bool>,
    /// Load results, indexed by register id.
    regs: Vec<Val>,
}

impl<'a> Harness<'a> {
    /// Wires up the generated FSMs of `ssp` for litmus execution.
    pub fn new(ssp: &'a Ssp, generated: &'a Generated) -> Self {
        Harness {
            ssp,
            cache: &generated.cache,
            dir: &generated.directory,
            cache_idx: FsmIndex::new(&generated.cache),
            dir_idx: FsmIndex::new(&generated.directory),
        }
    }

    /// Enumerates every outcome (register tuple) `test` can produce under
    /// this protocol.
    ///
    /// # Errors
    ///
    /// Returns a [`LitmusError`] if the protocol deadlocks, drops a
    /// message on the floor, or the exploration exceeds
    /// [`Limits::max_states`].
    pub fn outcomes(
        &self,
        test: &LitmusTest,
        limits: &Limits,
    ) -> Result<BTreeSet<Vec<Val>>, LitmusError> {
        let run = Run {
            h: self,
            test,
            n_threads: test.threads.len(),
            n_addrs: test.addrs.len(),
            n_nodes: test.threads.len() + 1,
            dir_id: NodeId(test.threads.len() as u8),
        };
        run.outcomes(limits)
    }
}

struct Run<'a> {
    h: &'a Harness<'a>,
    test: &'a LitmusTest,
    n_threads: usize,
    n_addrs: usize,
    n_nodes: usize,
    dir_id: NodeId,
}

impl Run<'_> {
    fn block_idx(&self, t: usize, addr: u8) -> usize {
        t * self.n_addrs + addr as usize
    }

    fn initial(&self) -> MState {
        MState {
            caches: vec![CacheBlock::new(); self.n_threads * self.n_addrs],
            dirs: vec![DirEntry::new(0); self.n_addrs],
            chans: vec![Vec::new(); self.n_nodes * self.n_nodes],
            cursor: vec![0; self.n_threads],
            in_flight: vec![false; self.n_threads],
            regs: vec![0; self.test.registers.len()],
        }
    }

    fn push_msg(&self, st: &mut MState, addr: u8, m: Msg) {
        st.chans[m.src.as_usize() * self.n_nodes + m.dst.as_usize()].push((addr, m));
    }

    /// Applies a cache arc to block `(t, addr)`, routes its sends, and
    /// returns what was performed.
    fn cache_apply(
        &self,
        st: &mut MState,
        t: usize,
        addr: u8,
        arc: &Arc,
        msg: Option<&Msg>,
        store_value: Val,
    ) -> Result<Option<(Access, Option<Val>)>, LitmusError> {
        let i = self.block_idx(t, addr);
        let mut block = st.caches[i].clone();
        let mut out = ApplyOutcome::default();
        let ctx =
            MachineCtx::Cache { block: &mut block, self_id: NodeId(t as u8), dir_id: self.dir_id };
        apply_into(self.h.cache, arc, msg, ctx, store_value, &mut out)
            .map_err(|e| LitmusError::Exec(e.to_string()))?;
        st.caches[i] = block;
        for m in out.outgoing.drain(..) {
            self.push_msg(st, addr, m);
        }
        Ok(out.performed)
    }

    /// The thread's next program step, if it is enabled in `st`.
    fn try_program_step(&self, st: &MState, t: usize) -> Result<Option<MState>, LitmusError> {
        if st.in_flight[t] {
            return Ok(None);
        }
        let Some(&op) = self.test.threads[t].get(st.cursor[t] as usize) else {
            return Ok(None);
        };
        let (addr, access, store_value) = match op {
            Op::Load { addr, .. } => (addr, Access::Load, 0),
            Op::Store { addr, val } => (addr, Access::Store, val),
        };
        let block = &st.caches[self.block_idx(t, addr)];
        let had_pending = block.pending.is_some();
        let Some(arc) = select_arc_indexed(
            self.h.cache,
            &self.h.cache_idx,
            block.state,
            Event::Access(access),
            None,
            Some(block),
            None,
        ) else {
            return Ok(None);
        };
        if arc.kind == ArcKind::Stall {
            return Ok(None);
        }
        let mut succ = st.clone();
        let performed = self.cache_apply(&mut succ, t, addr, arc, None, store_value)?;
        match performed {
            Some((_, v)) => {
                if let Op::Load { reg, .. } = op {
                    succ.regs[reg as usize] = v.ok_or_else(|| {
                        LitmusError::Exec("load performed without a value".into())
                    })?;
                }
                succ.cursor[t] += 1;
            }
            None => {
                // A transaction would stack on a block that already has one
                // pending (e.g. an unacknowledged self-downgrade): retry
                // after it completes.
                if had_pending {
                    return Ok(None);
                }
                succ.in_flight[t] = true;
            }
        }
        Ok(Some(succ))
    }

    /// Deliverable `(channel, queue index)` pairs: per-location heads on
    /// an ordered network, every message on an unordered one.
    fn delivery_candidates(&self, st: &MState, cands: &mut Vec<(usize, usize)>) {
        cands.clear();
        for (ci, q) in st.chans.iter().enumerate() {
            if self.h.ssp.network_ordered {
                let mut seen: Vec<u8> = Vec::new();
                for (qi, &(a, _)) in q.iter().enumerate() {
                    if seen.contains(&a) {
                        continue;
                    }
                    seen.push(a);
                    cands.push((ci, qi));
                }
            } else {
                cands.extend((0..q.len()).map(|qi| (ci, qi)));
            }
        }
    }

    /// Delivers the message at `(ci, qi)`. Returns `None` when the
    /// receiver stalls it (the message stays queued).
    fn try_deliver(
        &self,
        st: &MState,
        ci: usize,
        qi: usize,
    ) -> Result<Option<MState>, LitmusError> {
        let (addr, msg) = st.chans[ci][qi];
        if msg.dst == self.dir_id {
            let entry = &st.dirs[addr as usize];
            let Some(arc) = select_arc_indexed(
                self.h.dir,
                &self.h.dir_idx,
                entry.state,
                Event::Msg(msg.mtype),
                Some(&msg),
                None,
                Some(entry),
            ) else {
                return Err(LitmusError::UnexpectedMessage {
                    node: self.dir_id.to_string(),
                    state: self.h.dir.state(entry.state).name.clone(),
                    msg: msg.to_string(),
                });
            };
            if arc.kind == ArcKind::Stall {
                return Ok(None);
            }
            let mut succ = st.clone();
            succ.chans[ci].remove(qi);
            let mut entry = succ.dirs[addr as usize].clone();
            let mut out = ApplyOutcome::default();
            apply_into(
                self.h.dir,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut entry, self_id: self.dir_id },
                0,
                &mut out,
            )
            .map_err(|e| LitmusError::Exec(e.to_string()))?;
            succ.dirs[addr as usize] = entry;
            for m in out.outgoing.drain(..) {
                self.push_msg(&mut succ, addr, m);
            }
            return Ok(Some(succ));
        }

        let t = msg.dst.as_usize();
        let block = &st.caches[self.block_idx(t, addr)];
        let Some(arc) = select_arc_indexed(
            self.h.cache,
            &self.h.cache_idx,
            block.state,
            Event::Msg(msg.mtype),
            Some(&msg),
            Some(block),
            None,
        ) else {
            return Err(LitmusError::UnexpectedMessage {
                node: msg.dst.to_string(),
                state: self.h.cache.state(block.state).name.clone(),
                msg: msg.to_string(),
            });
        };
        if arc.kind == ArcKind::Stall {
            return Ok(None);
        }
        // If this delivery completes the thread's in-flight store, the
        // performing action needs that store's value.
        let cur_op = self.test.threads[t].get(st.cursor[t] as usize);
        let store_value = match cur_op {
            Some(&Op::Store { addr: a, val }) if st.in_flight[t] && a == addr => val,
            _ => 0,
        };
        let mut succ = st.clone();
        succ.chans[ci].remove(qi);
        let performed = self.cache_apply(&mut succ, t, addr, arc, Some(&msg), store_value)?;
        if let Some((access, v)) = performed {
            // A performed Load/Store completes the thread's program
            // operation (warmup loads have `in_flight` unset and need no
            // bookkeeping); a performed Replacement is a self-downgrade or
            // writeback finishing, which is not a program event.
            if matches!(access, Access::Load | Access::Store) && st.in_flight[t] {
                if let Some(&Op::Load { reg, .. }) = cur_op {
                    succ.regs[reg as usize] = v.ok_or_else(|| {
                        LitmusError::Exec("load completed without a value".into())
                    })?;
                }
                succ.cursor[t] += 1;
                succ.in_flight[t] = false;
            }
        }
        Ok(Some(succ))
    }

    /// The spontaneous-replacement arc of `block`, if `note` matches and
    /// the block has no transaction pending.
    fn spontaneous_arc(&self, block: &CacheBlock, note: ArcNote) -> Option<&Arc> {
        if block.pending.is_some() {
            return None;
        }
        let arc = select_arc_indexed(
            self.h.cache,
            &self.h.cache_idx,
            block.state,
            Event::Access(Access::Replacement),
            None,
            Some(block),
            None,
        )?;
        (arc.kind != ArcKind::Stall && arc.note == note).then_some(arc)
    }

    /// Self-invalidation successors: per line, or per whole cache when the
    /// SSP declares `si_epoch` (one epoch-decay step per thread, dropping
    /// every self-invalidatable block at once).
    fn si_steps(&self, st: &MState, out: &mut Vec<MState>) -> Result<(), LitmusError> {
        for t in 0..self.n_threads {
            if self.h.ssp.si_epoch {
                let applicable: Vec<u8> = (0..self.n_addrs as u8)
                    .filter(|&a| {
                        self.spontaneous_arc(&st.caches[self.block_idx(t, a)], ArcNote::SelfInv)
                            .is_some()
                    })
                    .collect();
                if applicable.is_empty() {
                    continue;
                }
                let mut succ = st.clone();
                for a in applicable {
                    let arc = self
                        .spontaneous_arc(&succ.caches[self.block_idx(t, a)], ArcNote::SelfInv)
                        .expect("epoch member still applicable");
                    self.cache_apply(&mut succ, t, a, arc, None, 0)?;
                }
                out.push(succ);
            } else {
                for a in 0..self.n_addrs as u8 {
                    let Some(arc) =
                        self.spontaneous_arc(&st.caches[self.block_idx(t, a)], ArcNote::SelfInv)
                    else {
                        continue;
                    };
                    let mut succ = st.clone();
                    self.cache_apply(&mut succ, t, a, arc, None, 0)?;
                    out.push(succ);
                }
            }
        }
        Ok(())
    }

    /// Self-downgrade successors (always per line).
    fn sd_steps(&self, st: &MState, out: &mut Vec<MState>) -> Result<(), LitmusError> {
        for t in 0..self.n_threads {
            for a in 0..self.n_addrs as u8 {
                let Some(arc) =
                    self.spontaneous_arc(&st.caches[self.block_idx(t, a)], ArcNote::SelfDown)
                else {
                    continue;
                };
                let mut succ = st.clone();
                self.cache_apply(&mut succ, t, a, arc, None, 0)?;
                out.push(succ);
            }
        }
        Ok(())
    }

    fn terminal(&self, st: &MState) -> bool {
        (0..self.n_threads)
            .all(|t| !st.in_flight[t] && st.cursor[t] as usize == self.test.threads[t].len())
            && st.chans.iter().all(Vec::is_empty)
    }

    fn successors(&self, st: &MState, succs: &mut Vec<MState>) -> Result<(), LitmusError> {
        succs.clear();
        for t in 0..self.n_threads {
            if let Some(s) = self.try_program_step(st, t)? {
                succs.push(s);
            }
        }
        let mut cands = Vec::new();
        self.delivery_candidates(st, &mut cands);
        for (ci, qi) in cands {
            if let Some(s) = self.try_deliver(st, ci, qi)? {
                succs.push(s);
            }
        }
        self.si_steps(st, succs)?;
        self.sd_steps(st, succs)?;
        Ok(())
    }

    /// Warms the machine up deterministically: each thread loads each
    /// location once, run to quiescence, so every cache starts with a
    /// value-0 copy.
    fn warmup(&self, st: &mut MState) -> Result<(), LitmusError> {
        let mut cands = Vec::new();
        for t in 0..self.n_threads {
            for a in 0..self.n_addrs as u8 {
                let block = &st.caches[self.block_idx(t, a)];
                let arc = select_arc_indexed(
                    self.h.cache,
                    &self.h.cache_idx,
                    block.state,
                    Event::Access(Access::Load),
                    None,
                    Some(block),
                    None,
                )
                .filter(|arc| arc.kind != ArcKind::Stall)
                .ok_or_else(|| LitmusError::Deadlock {
                    detail: format!(
                        "warmup load stalls in {}",
                        self.h.cache.state(block.state).name
                    ),
                })?;
                self.cache_apply(st, t, a, arc, None, 0)?;
                let mut rounds = 0usize;
                while st.chans.iter().any(|q| !q.is_empty()) {
                    rounds += 1;
                    if rounds > 10_000 {
                        return Err(LitmusError::Deadlock {
                            detail: "warmup did not quiesce".into(),
                        });
                    }
                    self.delivery_candidates(st, &mut cands);
                    let mut delivered = false;
                    for &(ci, qi) in &cands {
                        if let Some(next) = self.try_deliver(st, ci, qi)? {
                            *st = next;
                            delivered = true;
                            break;
                        }
                    }
                    if !delivered {
                        return Err(LitmusError::Deadlock {
                            detail: "warmup wedged: every in-flight message stalls".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn outcomes(&self, limits: &Limits) -> Result<BTreeSet<Vec<Val>>, LitmusError> {
        let mut init = self.initial();
        self.warmup(&mut init)?;
        let mut outcomes = BTreeSet::new();
        let mut visited: HashSet<MState> = HashSet::new();
        let mut stack = vec![init];
        let mut succs = Vec::new();
        while let Some(st) = stack.pop() {
            if !visited.insert(st.clone()) {
                continue;
            }
            if visited.len() > limits.max_states {
                return Err(LitmusError::StateLimit { limit: limits.max_states });
            }
            if self.terminal(&st) {
                outcomes.insert(st.regs.clone());
                continue;
            }
            self.successors(&st, &mut succs)?;
            if succs.is_empty() {
                return Err(LitmusError::Deadlock {
                    detail: format!(
                        "non-terminal state with no enabled step in {}",
                        self.test.name
                    ),
                });
            }
            if limits.seed != 0 {
                let k = (limits.seed as usize) % succs.len();
                succs.rotate_left(k);
            }
            for s in succs.drain(..) {
                if !visited.contains(&s) {
                    stack.push(s);
                }
            }
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{sc_outcomes, tso_outcomes};
    use crate::test::{bundled, parse_litmus, MP, SB};
    use protogen_core::{generate, GenConfig};

    fn harness_outcomes(ssp: &Ssp, src: &str) -> BTreeSet<Vec<Val>> {
        let g = generate(ssp, &GenConfig::default()).unwrap();
        let h = Harness::new(ssp, &g);
        h.outcomes(&parse_litmus(src).unwrap(), &Limits::default()).unwrap()
    }

    #[test]
    fn msi_sb_stays_sequentially_consistent() {
        let ssp = protogen_protocols::msi();
        let outs = harness_outcomes(&ssp, SB);
        let sc = sc_outcomes(&parse_litmus(SB).unwrap());
        assert!(outs.is_subset(&sc), "MSI SB produced non-SC outcomes: {outs:?}");
        assert!(!outs.contains(&vec![0, 0]));
    }

    #[test]
    fn tso_cc_sb_shows_the_store_buffering_relaxation() {
        let ssp = protogen_protocols::tso_cc();
        let outs = harness_outcomes(&ssp, SB);
        assert!(outs.contains(&vec![0, 0]), "stale shared hits must allow (0,0): {outs:?}");
        let tso = tso_outcomes(&parse_litmus(SB).unwrap());
        assert!(outs.is_subset(&tso));
    }

    #[test]
    fn si_sd_mp_is_weaker_than_tso() {
        let ssp = protogen_protocols::si_sd();
        let outs = harness_outcomes(&ssp, MP);
        let tso = tso_outcomes(&parse_litmus(MP).unwrap());
        assert!(
            outs.contains(&vec![1, 0]),
            "per-line self-invalidation must break message passing: {outs:?}"
        );
        assert!(!tso.contains(&vec![1, 0]));
    }

    #[test]
    fn exploration_order_does_not_change_outcomes() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::default()).unwrap();
        let h = Harness::new(&ssp, &g);
        let test = parse_litmus(SB).unwrap();
        let base = h.outcomes(&test, &Limits::default()).unwrap();
        for seed in [1, 7, 1 << 40] {
            let alt = h.outcomes(&test, &Limits { seed, ..Limits::default() }).unwrap();
            assert_eq!(base, alt, "seed {seed} changed the outcome set");
        }
    }

    #[test]
    fn state_limit_fails_loudly() {
        let ssp = protogen_protocols::msi();
        let g = generate(&ssp, &GenConfig::default()).unwrap();
        let h = Harness::new(&ssp, &g);
        let test = bundled().remove(3); // IRIW, the largest bundled space
        let err = h.outcomes(&test, &Limits { max_states: 10, seed: 0 }).unwrap_err();
        assert!(matches!(err, LitmusError::StateLimit { limit: 10 }));
    }
}
