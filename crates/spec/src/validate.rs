//! Structural validation of stable state protocols.

use crate::action::{Action, Dst};
use crate::error::SpecError;
use crate::msg::MsgClass;
use crate::ssp::{Access, Effect, EntryNote, MachineKind, MachineSsp, Trigger, WaitTo};
use crate::Ssp;

/// Validates an SSP's structure.
///
/// This checks well-formedness, not protocol intent: ProtoGen requires a
/// *correct* SSP as input and cannot fix protocol bugs (§IV-C). The checks:
///
/// * id ranges (states, messages, wait nodes) are in bounds;
/// * wait chains are non-empty, their nodes reachable, and every await point
///   has at least one arc;
/// * accesses only trigger cache entries; directory entries only react to
///   requests or responses; caches react to forwards and responses;
/// * initial requests are sent to the directory; cache entries never use
///   directory-only destinations or guards.
///
/// # Errors
///
/// Returns the first problem found as a [`SpecError`].
pub fn validate(ssp: &Ssp) -> Result<(), SpecError> {
    // Duplicate message names confuse every later lookup.
    for (i, m) in ssp.messages.iter().enumerate() {
        if ssp.messages[..i].iter().any(|o| o.name == m.name) {
            return Err(SpecError::DuplicateName(m.name.clone()));
        }
    }
    validate_machine(ssp, &ssp.cache)?;
    validate_machine(ssp, &ssp.directory)?;
    // `si epoch` without a single self-invalidating entry is a spec bug:
    // the author asked for epoch-granular decay of nothing.
    if ssp.si_epoch && !ssp.cache.entries.iter().any(|e| e.note == EntryNote::SelfInvalidate) {
        return Err(SpecError::Invalid(
            "si_epoch set but no cache entry is marked self-invalidate".into(),
        ));
    }
    Ok(())
}

fn validate_machine(ssp: &Ssp, m: &MachineSsp) -> Result<(), SpecError> {
    let n_states = m.states.len();
    if n_states == 0 {
        return Err(SpecError::Invalid(format!("{} has no states", m.kind)));
    }
    for (i, s) in m.states.iter().enumerate() {
        if m.states[..i].iter().any(|o| o.name == s.name) {
            return Err(SpecError::DuplicateName(s.name.clone()));
        }
        // A readable stable state without a valid data copy is
        // contradictory: a load hit reads the block, so the declaration
        // promises data the state cannot supply. Left unrejected, the
        // generator dutifully emits hit arcs that fail at run time
        // ("load on invalid data" — found by fuzzing permission flips).
        if m.kind == MachineKind::Cache && s.perm.allows(crate::ssp::Access::Load) && !s.data_valid
        {
            return Err(SpecError::Invalid(format!(
                "cache state `{}` grants {} permission but holds no valid data",
                s.name, s.perm
            )));
        }
    }
    for (idx, e) in m.entries.iter().enumerate() {
        let ctx = |msg: String| SpecError::Invalid(format!("{} entry #{idx}: {msg}", m.kind));
        if e.state.as_usize() >= n_states {
            return Err(ctx(format!("state {} out of range", e.state)));
        }
        match e.trigger {
            Trigger::Access(_) => {
                if m.kind == MachineKind::Directory {
                    return Err(ctx("directory entries cannot trigger on accesses".into()));
                }
            }
            Trigger::Msg(id) => {
                if id.as_usize() >= ssp.messages.len() {
                    return Err(ctx(format!("message {id} out of range")));
                }
                let class = ssp.msg(id).class;
                match (m.kind, class) {
                    (MachineKind::Cache, MsgClass::Request) => {
                        return Err(ctx(format!(
                            "cache cannot receive request `{}`",
                            ssp.msg(id).name
                        )));
                    }
                    (MachineKind::Directory, MsgClass::Forward) => {
                        return Err(ctx(format!(
                            "directory cannot receive forward `{}`",
                            ssp.msg(id).name
                        )));
                    }
                    _ => {}
                }
            }
        }
        if e.note != EntryNote::Demand {
            if m.kind == MachineKind::Directory {
                return Err(ctx(format!("directory entries cannot be {}", e.note)));
            }
            if e.trigger != Trigger::Access(Access::Replacement) {
                return Err(ctx(format!(
                    "{} entries must trigger on replacement (they are spontaneous)",
                    e.note
                )));
            }
            match (e.note, &e.effect) {
                // A self-invalidation drops a copy nobody is told about:
                // it must be silent, or it is really a demand writeback.
                (EntryNote::SelfInvalidate, Effect::Local { actions, .. }) => {
                    if actions.iter().any(|a| matches!(a, Action::Send(_))) {
                        return Err(ctx("self-invalidation must be silent (no sends)".into()));
                    }
                }
                (EntryNote::SelfInvalidate, Effect::Issue { .. }) => {
                    return Err(ctx("self-invalidation cannot start a transaction".into()));
                }
                // A self-downgrade gives up dirty ownership: the directory
                // must learn about it, so it has to be a real transaction.
                (EntryNote::SelfDowngrade, Effect::Local { .. }) => {
                    return Err(ctx("self-downgrade must write back through a transaction".into()));
                }
                (EntryNote::SelfDowngrade, Effect::Issue { .. }) | (EntryNote::Demand, _) => {}
            }
        }
        match &e.effect {
            Effect::Local { actions, next } => {
                if let Some(n) = next {
                    if n.as_usize() >= n_states {
                        return Err(ctx(format!("next state {n} out of range")));
                    }
                }
                validate_actions(ssp, m, actions).map_err(&ctx)?;
            }
            Effect::Issue { request, chain } => {
                validate_actions(ssp, m, request).map_err(&ctx)?;
                if chain.nodes.is_empty() {
                    return Err(ctx("transaction with empty wait chain".into()));
                }
                let mut reachable = vec![false; chain.nodes.len()];
                reachable[0] = true;
                // Chains are tiny; a quadratic fixpoint is clearest.
                for _ in 0..chain.nodes.len() {
                    for (i, node) in chain.nodes.iter().enumerate() {
                        if !reachable[i] {
                            continue;
                        }
                        for arc in &node.arcs {
                            if let WaitTo::Wait(j) = arc.to {
                                if j >= chain.nodes.len() {
                                    return Err(ctx(format!("wait target {j} out of range")));
                                }
                                reachable[j] = true;
                            }
                        }
                    }
                }
                if let Some(i) = reachable.iter().position(|r| !r) {
                    return Err(ctx(format!("wait node {i} unreachable")));
                }
                for (i, node) in chain.nodes.iter().enumerate() {
                    if node.arcs.is_empty() {
                        return Err(ctx(format!("wait node {i} has no arcs")));
                    }
                    for arc in &node.arcs {
                        if arc.msg.as_usize() >= ssp.messages.len() {
                            return Err(ctx(format!("awaited message {} out of range", arc.msg)));
                        }
                        if let WaitTo::Done(s) = arc.to {
                            if s.as_usize() >= n_states {
                                return Err(ctx(format!("done state {s} out of range")));
                            }
                        }
                        validate_actions(ssp, m, &arc.actions).map_err(&ctx)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn validate_actions(ssp: &Ssp, m: &MachineSsp, actions: &[Action]) -> Result<(), String> {
    for a in actions {
        match a {
            Action::Send(s) => {
                if s.msg.as_usize() >= ssp.messages.len() {
                    return Err(format!("sent message {} out of range", s.msg));
                }
                let decl = ssp.msg(s.msg);
                if s.data.is_some() && !decl.carries_data {
                    return Err(format!("`{}` does not carry data", decl.name));
                }
                if s.ack_count.is_some() && !decl.carries_ack_count {
                    return Err(format!("`{}` does not carry an ack count", decl.name));
                }
                match (m.kind, s.dst) {
                    (MachineKind::Cache, Dst::Owner | Dst::SharersExceptReq) => {
                        return Err(format!("cache cannot address {}", s.dst));
                    }
                    (MachineKind::Directory, Dst::Dir) => {
                        return Err("directory cannot send to itself".into());
                    }
                    _ => {}
                }
            }
            Action::SetOwnerToReq
            | Action::ClearOwner
            | Action::AddReqToSharers
            | Action::AddOwnerToSharers
            | Action::RemoveReqFromSharers
            | Action::ClearSharers => {
                if m.kind == MachineKind::Cache {
                    return Err(format!("cache cannot perform directory action `{a}`"));
                }
            }
            Action::SetExpectedAcksFromMsg
            | Action::IncAcksReceived
            | Action::ResetAcks
            | Action::PerformAccess => {
                if m.kind == MachineKind::Directory {
                    return Err(format!("directory cannot perform cache action `{a}`"));
                }
            }
            Action::CopyDataFromMsg | Action::InvalidateData | Action::RecordChainReq => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SspBuilder;
    use crate::ssp::{Access, Perm, SspEntry};
    use crate::{MsgClass, StableId};

    fn toy() -> SspBuilder {
        let mut b = SspBuilder::new("toy");
        let get = b.message("Get", MsgClass::Request);
        let data = b.data_message("Data", MsgClass::Response);
        let i = b.cache_state("I", Perm::None);
        let v = b.cache_state("V", Perm::Read);
        let di = b.dir_state("I");
        let dv = b.dir_state("V");
        b.cache_hit(v, Access::Load);
        let req = b.send_req(get);
        let chain = b.await_data(data, v);
        b.cache_issue(i, Access::Load, req, chain);
        let send = b.send_data_to_req(data);
        b.dir_react(di, get, vec![send], Some(dv));
        b
    }

    #[test]
    fn valid_toy_passes() {
        toy().build().expect("toy protocol should validate");
    }

    #[test]
    fn duplicate_message_name_rejected() {
        let mut b = toy();
        b.message("Get", MsgClass::Request);
        assert!(matches!(b.build(), Err(SpecError::DuplicateName(_))));
    }

    #[test]
    fn directory_access_trigger_rejected() {
        let mut ssp = toy().build().unwrap();
        ssp.directory.entries.push(SspEntry {
            state: StableId(0),
            trigger: Trigger::Access(Access::Load),
            guards: vec![],
            effect: Effect::Local { actions: vec![], next: None },
            note: EntryNote::Demand,
        });
        let err = ssp.validate().unwrap_err();
        assert!(err.to_string().contains("accesses"));
    }

    #[test]
    fn readable_state_without_data_rejected() {
        // Fuzz regression (seed 1, mutant 4: `flip-permission 0` on MSI):
        // granting I read permission while it holds no data used to
        // survive validation and generate controllers whose IS_D hit arcs
        // failed at run time with "load on invalid data". The
        // contradiction must be rejected at build, naming the state.
        let mut ssp = toy().build().unwrap();
        ssp.cache.states[0].perm = Perm::Read; // I: perm R, data_valid false
        let err = ssp.validate().unwrap_err();
        assert!(err.to_string().contains("`I`"), "{err}");
        assert!(err.to_string().contains("no valid data"), "{err}");
    }

    #[test]
    fn out_of_range_state_rejected() {
        let mut ssp = toy().build().unwrap();
        ssp.cache.entries.push(SspEntry {
            state: StableId(99),
            trigger: Trigger::Access(Access::Load),
            guards: vec![],
            effect: Effect::Local { actions: vec![], next: None },
            note: EntryNote::Demand,
        });
        assert!(ssp.validate().is_err());
    }
}
