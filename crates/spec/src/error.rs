//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating protocol specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The specification is structurally invalid.
    Invalid(String),
    /// A name was referenced that is not declared.
    UnknownName(String),
    /// A name was declared twice.
    DuplicateName(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid(msg) => write!(f, "invalid specification: {msg}"),
            SpecError::UnknownName(name) => write!(f, "unknown name `{name}`"),
            SpecError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SpecError::Invalid("wait node 3 unreachable".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid"));
        assert!(s.contains("wait node 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}
