//! Stable state protocol structure.

use crate::action::Action;
use crate::guard::Guard;
use crate::ids::{MsgId, StableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which controller a machine specification describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// A private cache controller.
    Cache,
    /// The directory controller (colocated with the shared LLC).
    Directory,
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineKind::Cache => f.write_str("cache"),
            MachineKind::Directory => f.write_str("directory"),
        }
    }
}

/// A core-issued access (§III-A: load, store, or replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Access {
    /// A read.
    Load,
    /// A write.
    Store,
    /// An eviction.
    Replacement,
}

impl Access {
    /// All access kinds, in the column order of the paper's tables.
    pub const ALL: [Access; 3] = [Access::Load, Access::Store, Access::Replacement];

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            Access::Load => 0,
            Access::Store => 1,
            Access::Replacement => 2,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Load => f.write_str("load"),
            Access::Store => f.write_str("store"),
            Access::Replacement => f.write_str("replacement"),
        }
    }
}

/// Coherence permission granted by a cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Perm {
    /// No access permitted (I and directory states).
    None,
    /// Loads permitted (S, O in MOSI for reads, …).
    Read,
    /// Loads and stores permitted (M, E after upgrade, …).
    ReadWrite,
}

impl Perm {
    /// Whether this permission level satisfies `access`.
    ///
    /// Replacements are permitted at every level: evicting an invalid block
    /// is a no-op the core never issues, and the SSP decides whether a state
    /// reacts to a replacement at all.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Load => self >= Perm::Read,
            Access::Store => self >= Perm::ReadWrite,
            Access::Replacement => true,
        }
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Perm::None => f.write_str("-"),
            Perm::Read => f.write_str("R"),
            Perm::ReadWrite => f.write_str("RW"),
        }
    }
}

/// Declaration of one stable state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StableDecl {
    /// State name, e.g. `"M"`.
    pub name: String,
    /// Access permission the state grants (meaningful for caches only).
    pub perm: Perm,
    /// Whether a block in this state holds a valid data copy.
    pub data_valid: bool,
}

/// The memory model a protocol promises to preserve (§VI-D and the
/// weak-memory protocol families of ROADMAP).
///
/// The model names the *contract*: which checker properties apply (see
/// `protogen-mc`'s property set) and which litmus verdict the protocol must
/// earn. SC protocols keep per-access SWMR; TSO protocols may buffer stores
/// behind stale shared copies but never reorder them; weak protocols only
/// promise eventual coherence at self-invalidation/self-downgrade points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Sequential consistency: physical SWMR plus data-value coherence.
    Sc,
    /// Total store order: a single writer at a time, stale readers allowed.
    Tso,
    /// Weaker than TSO: coherence only at explicit sync/SI/SD points.
    Weak,
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryModel::Sc => f.write_str("sc"),
            MemoryModel::Tso => f.write_str("tso"),
            MemoryModel::Weak => f.write_str("weak"),
        }
    }
}

impl std::str::FromStr for MemoryModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sc" => Ok(MemoryModel::Sc),
            "tso" => Ok(MemoryModel::Tso),
            "weak" => Ok(MemoryModel::Weak),
            other => Err(format!("unknown memory model `{other}` (expected sc|tso|weak)")),
        }
    }
}

/// Provenance annotation on an SSP entry: is this a demand transition or
/// one of the self-* primitives of SI/SD protocol families?
///
/// Self-invalidations and self-downgrades reuse the `Replacement` trigger —
/// they *are* spontaneous evictions/downgrades semantically — but the note
/// survives generation (as an `ArcNote`) so memory-model tooling (the litmus
/// harness) can distinguish "the protocol may drop this copy at any sync
/// point" from an ordinary capacity eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryNote {
    /// An ordinary demand transition (the default for every entry).
    #[default]
    Demand,
    /// A self-invalidation: the cache spontaneously drops a readable copy.
    SelfInvalidate,
    /// A self-downgrade: the cache spontaneously writes back ownership.
    SelfDowngrade,
}

impl fmt::Display for EntryNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryNote::Demand => f.write_str("demand"),
            EntryNote::SelfInvalidate => f.write_str("self-invalidate"),
            EntryNote::SelfDowngrade => f.write_str("self-downgrade"),
        }
    }
}

/// What causes an SSP entry to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trigger {
    /// A core access (cache machines only).
    Access(Access),
    /// An incoming coherence message.
    Msg(MsgId),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Access(a) => write!(f, "{a}"),
            Trigger::Msg(m) => write!(f, "{m}"),
        }
    }
}

/// Target of a wait-chain arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaitTo {
    /// Move to another await point in the same chain.
    Wait(usize),
    /// The transaction completes; enter the given stable state.
    Done(StableId),
}

/// One labelled arc out of an await point: "when *msg* \[guard\]: actions".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitArc {
    /// The awaited message type.
    pub msg: MsgId,
    /// Optional guard (e.g. [`Guard::AckCountIsZero`]).
    pub guards: Vec<Guard>,
    /// Actions performed when the arc fires.
    pub actions: Vec<Action>,
    /// Where the arc leads.
    pub to: WaitTo,
}

/// An await point inside a transaction (one `await { … }` block of the DSL).
///
/// Each await point becomes one transient state during generation (Step 2 of
/// §V-C): the `tag` is the naming hint, so the await point of an I→M
/// transaction tagged `"AD"` becomes the transient state `IM_AD`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitNode {
    /// Naming tag (`"D"`, `"AD"`, `"A"`, …), conventionally the initials of
    /// the awaited message classes.
    pub tag: String,
    /// Arcs out of this await point.
    pub arcs: Vec<WaitArc>,
}

/// The await structure of a transaction. Node 0 is the entry point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitChain {
    /// Await points; index 0 is entered when the request is issued.
    pub nodes: Vec<WaitNode>,
}

impl WaitChain {
    /// The set of stable states this chain can complete into.
    pub fn final_states(&self) -> Vec<StableId> {
        let mut out: Vec<StableId> = self
            .nodes
            .iter()
            .flat_map(|n| n.arcs.iter())
            .filter_map(|a| match a.to {
                WaitTo::Done(s) => Some(s),
                WaitTo::Wait(_) => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The effect of an SSP entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// The trigger is handled locally and (optionally) atomically changes
    /// the stable state: cache hits, silent upgrades, and all single-step
    /// directory reactions.
    Local {
        /// Actions performed.
        actions: Vec<Action>,
        /// New stable state, or `None` to remain in the current state.
        next: Option<StableId>,
    },
    /// The trigger starts a coherence transaction: perform `request`
    /// (typically a send to the directory) and enter the wait chain.
    Issue {
        /// Request actions (sends, counter resets).
        request: Vec<Action>,
        /// The await structure.
        chain: WaitChain,
    },
}

/// One row-cell of the SSP tables: in `state`, on `trigger` (and `guard`),
/// do `effect`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SspEntry {
    /// The stable state the entry applies to.
    pub state: StableId,
    /// What fires the entry.
    pub trigger: Trigger,
    /// Optional guard distinguishing entries for the same trigger.
    pub guards: Vec<Guard>,
    /// The effect.
    pub effect: Effect,
    /// Demand transition or SI/SD primitive (see [`EntryNote`]).
    pub note: EntryNote,
}

/// The SSP of a single machine (cache or directory).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSsp {
    /// Which controller this is.
    pub kind: MachineKind,
    /// Stable states. Index 0 is the initial state.
    pub states: Vec<StableDecl>,
    /// Specification entries.
    pub entries: Vec<SspEntry>,
}

impl MachineSsp {
    /// Creates an empty machine specification.
    pub fn new(kind: MachineKind) -> Self {
        MachineSsp { kind, states: Vec::new(), entries: Vec::new() }
    }

    /// Looks up a stable state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StableId> {
        self.states.iter().position(|s| s.name == name).map(StableId::from_usize)
    }

    /// Returns the declaration of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: StableId) -> &StableDecl {
        &self.states[id.as_usize()]
    }

    /// Iterates over all stable state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StableId> + '_ {
        (0..self.states.len()).map(StableId::from_usize)
    }

    /// All entries for `state` with the given trigger, in declaration order.
    pub fn entries_for(&self, state: StableId, trigger: Trigger) -> Vec<&SspEntry> {
        self.entries.iter().filter(|e| e.state == state && e.trigger == trigger).collect()
    }

    /// Whether any entry exists for `state` and `trigger`.
    pub fn handles(&self, state: StableId, trigger: Trigger) -> bool {
        self.entries.iter().any(|e| e.state == state && e.trigger == trigger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_ordering_allows_accesses() {
        assert!(Perm::ReadWrite.allows(Access::Load));
        assert!(Perm::ReadWrite.allows(Access::Store));
        assert!(Perm::Read.allows(Access::Load));
        assert!(!Perm::Read.allows(Access::Store));
        assert!(!Perm::None.allows(Access::Load));
        assert!(Perm::None.allows(Access::Replacement));
    }

    #[test]
    fn chain_final_states_deduplicated() {
        let chain = WaitChain {
            nodes: vec![WaitNode {
                tag: "D".into(),
                arcs: vec![
                    WaitArc {
                        msg: MsgId(0),
                        guards: vec![Guard::AckCountIsZero],
                        actions: vec![],
                        to: WaitTo::Done(StableId(1)),
                    },
                    WaitArc {
                        msg: MsgId(0),
                        guards: vec![Guard::AckCountNonZero],
                        actions: vec![],
                        to: WaitTo::Done(StableId(1)),
                    },
                ],
            }],
        };
        assert_eq!(chain.final_states(), vec![StableId(1)]);
    }

    #[test]
    fn machine_lookup_by_name() {
        let mut m = MachineSsp::new(MachineKind::Cache);
        m.states.push(StableDecl { name: "I".into(), perm: Perm::None, data_valid: false });
        assert_eq!(m.state_by_name("I"), Some(StableId(0)));
        assert_eq!(m.state_by_name("Z"), None);
    }
}
