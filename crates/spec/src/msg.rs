//! Message type declarations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a message type plays in the protocol.
///
/// The classification mirrors §III-A of the paper: a coherence transaction
/// consists of an initial *request*, zero or more directory-*forwarded*
/// requests, and one or more *responses* (data or acknowledgments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Cache → directory initial request (GetS, GetM, PutM, Upgrade, …).
    Request,
    /// Directory → cache forwarded request (Fwd-GetS, Inv, …). Forwarded
    /// requests are the messages that racing transactions inject into a
    /// cache mid-transaction; the generation algorithm keys on them.
    Forward,
    /// Data responses and acknowledgments (Data, Inv-Ack, Put-Ack, …).
    Response,
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgClass::Request => "request",
            MsgClass::Forward => "forward",
            MsgClass::Response => "response",
        };
        f.write_str(s)
    }
}

/// The virtual network a message travels on.
///
/// Three virtual networks (the standard arrangement for directory protocols)
/// prevent protocol-level message deadlock: responses are never blocked by
/// requests. The ProtoGen paper leaves virtual-channel assignment to the
/// user (§IV-C); the builder assigns the conventional network per class and
/// allows overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VirtualNet {
    /// Carries initial requests.
    Request,
    /// Carries directory-forwarded requests.
    Forward,
    /// Carries data and acknowledgments; never blocked.
    Response,
}

impl VirtualNet {
    /// All virtual networks, in delivery-priority order (responses first).
    pub const ALL: [VirtualNet; 3] =
        [VirtualNet::Response, VirtualNet::Forward, VirtualNet::Request];

    /// Returns a small dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            VirtualNet::Request => 0,
            VirtualNet::Forward => 1,
            VirtualNet::Response => 2,
        }
    }
}

impl fmt::Display for VirtualNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VirtualNet::Request => "vnet-req",
            VirtualNet::Forward => "vnet-fwd",
            VirtualNet::Response => "vnet-resp",
        };
        f.write_str(s)
    }
}

/// Declaration of one message type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgDecl {
    /// Message name, e.g. `"GetS"`, `"Fwd_GetM"`, `"Inv_Ack"`.
    pub name: String,
    /// Message classification.
    pub class: MsgClass,
    /// Virtual network assignment.
    pub vnet: VirtualNet,
    /// Whether the message carries a copy of the cache block.
    pub carries_data: bool,
    /// Whether the message carries an acknowledgment count.
    pub carries_ack_count: bool,
}

impl MsgDecl {
    /// Creates a declaration with the conventional virtual network for its
    /// class and no payload fields.
    pub fn new(name: impl Into<String>, class: MsgClass) -> Self {
        let vnet = match class {
            MsgClass::Request => VirtualNet::Request,
            MsgClass::Forward => VirtualNet::Forward,
            MsgClass::Response => VirtualNet::Response,
        };
        MsgDecl { name: name.into(), class, vnet, carries_data: false, carries_ack_count: false }
    }

    /// Marks the message as carrying block data.
    pub fn with_data(mut self) -> Self {
        self.carries_data = true;
        self
    }

    /// Marks the message as carrying an acknowledgment count.
    pub fn with_ack_count(mut self) -> Self {
        self.carries_ack_count = true;
        self
    }
}

impl fmt::Display for MsgDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_vnet_assignment() {
        assert_eq!(MsgDecl::new("GetS", MsgClass::Request).vnet, VirtualNet::Request);
        assert_eq!(MsgDecl::new("Inv", MsgClass::Forward).vnet, VirtualNet::Forward);
        assert_eq!(MsgDecl::new("Data", MsgClass::Response).vnet, VirtualNet::Response);
    }

    #[test]
    fn payload_builders() {
        let d = MsgDecl::new("Data", MsgClass::Response).with_data().with_ack_count();
        assert!(d.carries_data && d.carries_ack_count);
    }

    #[test]
    fn vnet_indices_are_dense() {
        let mut seen = [false; 3];
        for v in VirtualNet::ALL {
            seen[v.index()] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
