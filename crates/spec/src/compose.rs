//! Hierarchical protocol composition (DESIGN.md §12).
//!
//! A [`Composition`] stacks stable state protocols into a tree: level 0 is
//! the leaf protocol run by private caches, and the cache side of level
//! `j` is hosted by the same physical node that serves as the directory
//! side of level `j-1`. A two-level `MSI-under-MESI` composition, for
//! instance, runs MSI between L1s and their L2, and MESI between the L2s
//! and the root directory — each L2 is simultaneously an MSI directory
//! (downward) and a MESI cache (upward).
//!
//! The composition declares *which* protocols stack and with what fanout;
//! the glue behaviour (when an inner miss forces an outer acquisition,
//! when inner quiescence permits an outer writeback) is derived by
//! `protogen-core`'s composition pass, not hand-specified here.

use crate::error::SpecError;
use crate::ssp::{Access, Perm, Trigger};
use crate::Ssp;
use serde::{Deserialize, Serialize};

/// The largest fanout a level may declare: the directory sharer list is a
/// `u8` bitmask, so one subnet can track at most 8 children.
pub const MAX_FANOUT: usize = 8;

/// One level of a composition: a protocol plus how many children each of
/// its directories serves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Display label for the level (`"l1"`, `"llc"`, …).
    pub label: String,
    /// The stable state protocol this level runs.
    pub ssp: Ssp,
    /// Children per directory of this level (caches per subnet).
    pub fanout: usize,
}

/// A stack of protocol levels, leaf-first: `levels[0]` runs between the
/// leaf caches and the innermost directories, `levels.last()` between the
/// outermost caches and the single root directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Composition {
    /// Composition name, e.g. `"msi_under_mesi"`.
    pub name: String,
    /// Protocol levels, leaf-first.
    pub levels: Vec<LevelSpec>,
}

impl Composition {
    /// Number of protocol levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of machine-level-`j` nodes (machine level `j` hosts the
    /// cache side of protocol level `j`; machine level `depth()` is the
    /// root directory). The node count at machine level `j` is the product
    /// of the fanouts of levels `j..`.
    pub fn node_count(&self, machine_level: usize) -> usize {
        self.levels[machine_level..].iter().map(|l| l.fanout).product()
    }

    /// Total leaf caches in the tree.
    pub fn leaf_count(&self) -> usize {
        self.node_count(0)
    }

    /// Validates the stack: every protocol must be individually valid, and
    /// adjacent levels must have compatible interfaces (see
    /// [`validate_interface`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] naming the offending level.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.levels.is_empty() {
            return Err(SpecError::Invalid("composition has no levels".into()));
        }
        for (j, level) in self.levels.iter().enumerate() {
            let at = |m: &str| SpecError::Invalid(format!("level {j} ({}): {m}", level.label));
            if level.fanout == 0 || level.fanout > MAX_FANOUT {
                return Err(at(&format!("fanout {} out of range 1..={MAX_FANOUT}", level.fanout)));
            }
            level
                .ssp
                .validate()
                .map_err(|e| at(&format!("invalid protocol {}: {e}", level.ssp.name)))?;
            // Levels above the leaf have their cache side driven by the
            // glue: the node hosting an inner directory acquires and
            // releases copies through its *outer* cache machine, so that
            // machine must expose the acquire/release interface.
            if j > 0 {
                validate_interface(&level.ssp).map_err(|m| at(&m))?;
            }
        }
        Ok(())
    }
}

/// Checks that `ssp`'s cache side exposes the interface the glue pass
/// needs from a *parent* node (the directory side of the level below it in
/// the stack hosts this cache machine):
///
/// * a stable state granting [`Perm::ReadWrite`] must exist (the *hold*
///   state a parent occupies while its children own the line), and
/// * the initial state must handle `Store` (so a non-holding parent can
///   acquire on behalf of a blocked inner write request), and
/// * every read/write-capable stable state must handle `Replacement` (so
///   a quiescent parent can always write the line back out).
///
/// Returning `Err` carries a human-readable description of the mismatch.
pub fn validate_interface(ssp: &Ssp) -> Result<(), String> {
    let cache = &ssp.cache;
    if !cache.states.iter().any(|s| s.perm == Perm::ReadWrite) {
        return Err(format!(
            "cache side of {} has no read-write stable state to hold a subtree's copies in",
            ssp.name
        ));
    }
    let initial = crate::ids::StableId(0);
    if !cache.handles(initial, Trigger::Access(Access::Store)) {
        return Err(format!(
            "cache side of {} cannot issue a store from its initial state {}",
            ssp.name,
            cache.state(initial).name
        ));
    }
    for id in cache.state_ids() {
        let decl = cache.state(id);
        if decl.perm != Perm::None && !cache.handles(id, Trigger::Access(Access::Replacement)) {
            return Err(format!(
                "cache side of {} cannot replace out of state {} (perm {})",
                ssp.name, decl.name, decl.perm
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgClass, SspBuilder};

    fn toy() -> Ssp {
        let mut b = SspBuilder::new("toy");
        let get = b.message("Get", MsgClass::Request);
        let data = b.data_message("Data", MsgClass::Response);
        let i = b.cache_state("I", Perm::None);
        let v = b.cache_state("V", Perm::Read);
        let di = b.dir_state("I");
        let dv = b.dir_state("V");
        b.cache_hit(v, Access::Load);
        let req = b.send_req(get);
        let chain = b.await_data(data, v);
        b.cache_issue(i, Access::Load, req, chain);
        let send = b.send_data_to_req(data);
        b.dir_react(di, get, vec![send], Some(dv));
        b.build().unwrap()
    }

    #[test]
    fn node_counts_multiply_fanouts() {
        let c = Composition {
            name: "t".into(),
            levels: vec![
                LevelSpec { label: "l1".into(), ssp: toy(), fanout: 2 },
                LevelSpec { label: "l2".into(), ssp: toy(), fanout: 3 },
            ],
        };
        assert_eq!(c.leaf_count(), 6);
        assert_eq!(c.node_count(1), 3);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn toy_protocol_fails_interface_validation() {
        // The toy protocol has no read-write state and no store handling:
        // fine as a one-level composition, rejected as a stacked level.
        let flat = Composition {
            name: "flat".into(),
            levels: vec![LevelSpec { label: "l1".into(), ssp: toy(), fanout: 2 }],
        };
        flat.validate().unwrap();
        let stacked = Composition {
            name: "stack".into(),
            levels: vec![
                LevelSpec { label: "l1".into(), ssp: toy(), fanout: 2 },
                LevelSpec { label: "l2".into(), ssp: toy(), fanout: 2 },
            ],
        };
        assert!(stacked.validate().is_err());
    }

    #[test]
    fn fanout_bounds_are_enforced() {
        let mut c = Composition {
            name: "t".into(),
            levels: vec![LevelSpec { label: "l1".into(), ssp: toy(), fanout: 9 }],
        };
        assert!(c.validate().is_err());
        c.levels[0].fanout = 0;
        assert!(c.validate().is_err());
    }
}
