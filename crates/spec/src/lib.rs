//! Protocol intermediate representation for the ProtoGen reproduction.
//!
//! This crate defines the two protocol representations the rest of the
//! workspace operates on:
//!
//! * [`Ssp`] — a **stable state protocol**: the atomic, textbook-style
//!   specification of a directory coherence protocol (Tables I and II of the
//!   ProtoGen paper). An SSP describes a cache machine and a directory
//!   machine, each with a handful of stable states, the accesses and
//!   coherence messages that can arrive in each stable state, and the
//!   transactions they trigger.
//! * [`Fsm`] — a **complete concurrent protocol**: the generated finite state
//!   machine with all transient states, produced by `protogen-core`. An
//!   [`Fsm`] is directly executable by `protogen-runtime` (and therefore by
//!   the model checker and the simulator).
//!
//! # Example
//!
//! Build a two-state toy SSP programmatically and validate it:
//!
//! ```
//! use protogen_spec::{SspBuilder, MsgClass, Perm, Access};
//!
//! # fn main() -> Result<(), protogen_spec::SpecError> {
//! let mut b = SspBuilder::new("toy");
//! let get = b.message("Get", MsgClass::Request);
//! let data = b.data_message("Data", MsgClass::Response);
//! let i = b.cache_state("I", Perm::None);
//! let v = b.cache_state("V", Perm::Read);
//! let di = b.dir_state("I");
//! let dv = b.dir_state("V");
//! b.cache_hit(v, Access::Load);
//! let req = b.send_req(get);
//! let chain = b.await_data(data, v);
//! b.cache_issue(i, Access::Load, req, chain);
//! let send = b.send_data_to_req(data);
//! b.dir_react(di, get, vec![send], Some(dv));
//! let ssp = b.build()?;
//! assert_eq!(ssp.cache.states.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod builder;
mod compose;
mod error;
mod fsm;
mod guard;
mod ids;
mod msg;
mod ssp;
mod validate;

pub use action::{AckSrc, Action, DataSrc, Dst, ReqField, SendSpec};
pub use builder::SspBuilder;
pub use compose::{validate_interface, Composition, LevelSpec, MAX_FANOUT};
pub use error::SpecError;
pub use fsm::{
    AccessSummary, Arc, ArcKind, ArcNote, ChainLink, Event, Fsm, FsmState, FsmStateId,
    FsmStateKind, TransientMeta,
};
pub use guard::Guard;
pub use ids::{MsgId, StableId};
pub use msg::{MsgClass, MsgDecl, VirtualNet};
pub use ssp::{
    Access, Effect, EntryNote, MachineKind, MachineSsp, MemoryModel, Perm, SspEntry, StableDecl,
    Trigger, WaitArc, WaitChain, WaitNode, WaitTo,
};
pub use validate::validate;

use serde::{Deserialize, Serialize};

/// A complete stable state protocol: messages plus the cache and directory
/// machine specifications.
///
/// An `Ssp` is the *input* to protocol generation. It assumes an atomic
/// system model: every transaction appears to happen instantaneously, so the
/// specification only mentions stable states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ssp {
    /// Protocol name, e.g. `"MSI"`.
    pub name: String,
    /// All message types used by the protocol.
    pub messages: Vec<MsgDecl>,
    /// The cache controller specification.
    pub cache: MachineSsp,
    /// The directory controller specification.
    pub directory: MachineSsp,
    /// Whether the interconnect guarantees point-to-point ordering.
    pub network_ordered: bool,
    /// The memory model this protocol promises to preserve. Drives the
    /// default checker property set and the expected litmus verdict.
    pub consistency: MemoryModel,
    /// Whether self-invalidations fire as whole-cache *epochs* rather than
    /// per line. TSO-CC's timestamp machinery invalidates every stale
    /// shared line at once when an epoch turns over; modelling the decay
    /// per-line would over-approximate it into a weaker protocol (a line
    /// could be refreshed while an older copy of another line survives,
    /// which the timestamps forbid).
    pub si_epoch: bool,
}

impl Ssp {
    /// Looks up a message id by name.
    ///
    /// Returns `None` when no message with that name exists.
    pub fn msg_by_name(&self, name: &str) -> Option<MsgId> {
        self.messages.iter().position(|m| m.name == name).map(MsgId::from_usize)
    }

    /// Returns the declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this protocol.
    pub fn msg(&self, id: MsgId) -> &MsgDecl {
        &self.messages[id.as_usize()]
    }

    /// Returns the machine specification of the given kind.
    pub fn machine(&self, kind: MachineKind) -> &MachineSsp {
        match kind {
            MachineKind::Cache => &self.cache,
            MachineKind::Directory => &self.directory,
        }
    }

    /// Iterates over all message ids.
    pub fn msg_ids(&self) -> impl Iterator<Item = MsgId> + '_ {
        (0..self.messages.len()).map(MsgId::from_usize)
    }

    /// Validates the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SpecError> {
        validate(self)
    }
}
