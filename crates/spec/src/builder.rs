//! Ergonomic construction of stable state protocols.

use crate::action::{AckSrc, Action, DataSrc, Dst, ReqField, SendSpec};
use crate::error::SpecError;
use crate::guard::Guard;
use crate::ids::{MsgId, StableId};
use crate::msg::{MsgClass, MsgDecl};
use crate::ssp::{
    Access, Effect, EntryNote, MachineKind, MachineSsp, MemoryModel, Perm, SspEntry, StableDecl,
    Trigger, WaitArc, WaitChain, WaitNode, WaitTo,
};
use crate::Ssp;

/// Builder for [`Ssp`] values.
///
/// The builder mirrors the structure of the paper's SSP tables: declare the
/// messages and stable states, then add one entry per table cell. Chain
/// helpers construct the common await structures (single data response,
/// data plus invalidation acknowledgments, …).
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone)]
pub struct SspBuilder {
    name: String,
    messages: Vec<MsgDecl>,
    cache: MachineSsp,
    directory: MachineSsp,
    network_ordered: bool,
    consistency: MemoryModel,
    si_epoch: bool,
}

impl SspBuilder {
    /// Creates a builder for a protocol named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SspBuilder {
            name: name.into(),
            messages: Vec::new(),
            cache: MachineSsp::new(MachineKind::Cache),
            directory: MachineSsp::new(MachineKind::Directory),
            network_ordered: true,
            consistency: MemoryModel::Sc,
            si_epoch: false,
        }
    }

    /// Declares whether the interconnect guarantees point-to-point ordering
    /// (the default is `true`; §VI-C protocols set `false`).
    pub fn network_ordered(&mut self, ordered: bool) -> &mut Self {
        self.network_ordered = ordered;
        self
    }

    /// Declares the memory model the protocol promises (default
    /// [`MemoryModel::Sc`]). Weak-memory protocols relax SWMR/data-value
    /// coherence and must declare the model they *do* preserve so the
    /// checker and litmus harness know what to hold them to.
    pub fn consistency(&mut self, model: MemoryModel) -> &mut Self {
        self.consistency = model;
        self
    }

    /// Declares that self-invalidations fire as whole-cache epochs (all
    /// self-invalidating lines drop together), like TSO-CC's timestamp
    /// rollover. The default is per-line self-invalidation.
    pub fn si_epoch(&mut self, epoch: bool) -> &mut Self {
        self.si_epoch = epoch;
        self
    }

    // ----- declarations -------------------------------------------------

    /// Declares a payload-free message.
    pub fn message(&mut self, name: impl Into<String>, class: MsgClass) -> MsgId {
        self.push_msg(MsgDecl::new(name, class))
    }

    /// Declares a message carrying block data.
    pub fn data_message(&mut self, name: impl Into<String>, class: MsgClass) -> MsgId {
        self.push_msg(MsgDecl::new(name, class).with_data())
    }

    /// Declares a message carrying block data and an acknowledgment count.
    pub fn data_ack_message(&mut self, name: impl Into<String>, class: MsgClass) -> MsgId {
        self.push_msg(MsgDecl::new(name, class).with_data().with_ack_count())
    }

    /// Declares a message carrying an acknowledgment count only.
    pub fn ack_count_message(&mut self, name: impl Into<String>, class: MsgClass) -> MsgId {
        self.push_msg(MsgDecl::new(name, class).with_ack_count())
    }

    fn push_msg(&mut self, decl: MsgDecl) -> MsgId {
        let id = MsgId::from_usize(self.messages.len());
        self.messages.push(decl);
        id
    }

    /// Overrides the virtual network a message travels on. Virtual-channel
    /// assignment is protocol-correctness input (§IV-C of the paper): e.g.
    /// Put-Ack must travel on the forward network so it cannot overtake a
    /// forwarded request to the same cache.
    pub fn assign_vnet(&mut self, msg: MsgId, vnet: crate::VirtualNet) -> &mut Self {
        self.messages[msg.as_usize()].vnet = vnet;
        self
    }

    /// Declares a cache stable state. The first declared state is initial.
    /// `data_valid` defaults to `perm != Perm::None`.
    pub fn cache_state(&mut self, name: impl Into<String>, perm: Perm) -> StableId {
        let id = StableId::from_usize(self.cache.states.len());
        self.cache.states.push(StableDecl {
            name: name.into(),
            perm,
            data_valid: perm != Perm::None,
        });
        id
    }

    /// Declares a cache stable state with an explicit `data_valid` flag
    /// (O in MOSI holds valid data with read-only permission; an E state
    /// might hold valid data the core has not yet written).
    pub fn cache_state_full(
        &mut self,
        name: impl Into<String>,
        perm: Perm,
        data_valid: bool,
    ) -> StableId {
        let id = StableId::from_usize(self.cache.states.len());
        self.cache.states.push(StableDecl { name: name.into(), perm, data_valid });
        id
    }

    /// Declares a directory stable state. The first declared state is
    /// initial.
    pub fn dir_state(&mut self, name: impl Into<String>) -> StableId {
        let id = StableId::from_usize(self.directory.states.len());
        self.directory.states.push(StableDecl {
            name: name.into(),
            perm: Perm::None,
            data_valid: true,
        });
        id
    }

    // ----- entries ------------------------------------------------------

    /// Adds a cache hit: `access` is performed locally in `state`.
    pub fn cache_hit(&mut self, state: StableId, access: Access) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(access),
            guards: vec![],
            effect: Effect::Local { actions: vec![Action::PerformAccess], next: None },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a cache hit that also silently changes state (E→M upgrades).
    pub fn cache_hit_move(&mut self, state: StableId, access: Access, next: StableId) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(access),
            guards: vec![],
            effect: Effect::Local { actions: vec![Action::PerformAccess], next: Some(next) },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a silent eviction: a replacement handled locally with no
    /// message (TSO-CC's self-invalidating shared copies; clean-eviction
    /// optimizations).
    pub fn cache_react_silent_replacement(&mut self, state: StableId, to: StableId) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(Access::Replacement),
            guards: vec![],
            effect: Effect::Local {
                actions: vec![Action::PerformAccess, Action::InvalidateData],
                next: Some(to),
            },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a *self-invalidation*: the cache may spontaneously drop its
    /// readable copy of `state`, silently, at any sync point. Semantically a
    /// silent replacement, but tagged [`EntryNote::SelfInvalidate`] so the
    /// litmus harness treats it as a memory-model step rather than a
    /// capacity eviction (per-line, or whole-cache when [`Self::si_epoch`]
    /// is set).
    pub fn cache_self_invalidate(&mut self, state: StableId, to: StableId) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(Access::Replacement),
            guards: vec![],
            effect: Effect::Local {
                actions: vec![Action::PerformAccess, Action::InvalidateData],
                next: Some(to),
            },
            note: EntryNote::SelfInvalidate,
        });
        self
    }

    /// Adds a *self-downgrade*: the cache may spontaneously give up write
    /// ownership of `state`, performing the `request` actions (typically a
    /// data writeback to the directory) and entering `chain`. Tagged
    /// [`EntryNote::SelfDowngrade`]; the chain usually completes into a
    /// still-readable state (M→S), unlike a demand eviction's M→I.
    pub fn cache_self_downgrade(
        &mut self,
        state: StableId,
        request: Vec<Action>,
        chain: WaitChain,
    ) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(Access::Replacement),
            guards: vec![],
            effect: Effect::Issue { request, chain },
            note: EntryNote::SelfDowngrade,
        });
        self
    }

    /// Adds a cache reaction to an incoming message in a stable state.
    pub fn cache_react(
        &mut self,
        state: StableId,
        msg: MsgId,
        actions: Vec<Action>,
        next: Option<StableId>,
    ) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards: vec![],
            effect: Effect::Local { actions, next },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a cache transaction: in `state`, `access` performs the `request`
    /// actions and enters `chain`.
    pub fn cache_issue(
        &mut self,
        state: StableId,
        access: Access,
        request: Vec<Action>,
        chain: WaitChain,
    ) -> &mut Self {
        self.cache.entries.push(SspEntry {
            state,
            trigger: Trigger::Access(access),
            guards: vec![],
            effect: Effect::Issue { request, chain },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a single-step directory reaction.
    pub fn dir_react(
        &mut self,
        state: StableId,
        msg: MsgId,
        actions: Vec<Action>,
        next: Option<StableId>,
    ) -> &mut Self {
        self.directory.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards: vec![],
            effect: Effect::Local { actions, next },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a guarded single-step directory reaction (e.g. PutS when the
    /// requestor is the last sharer vs. not).
    pub fn dir_react_guarded(
        &mut self,
        state: StableId,
        msg: MsgId,
        guard: Guard,
        actions: Vec<Action>,
        next: Option<StableId>,
    ) -> &mut Self {
        self.directory.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards: vec![guard],
            effect: Effect::Local { actions, next },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a directory reaction guarded by a *conjunction* of guards
    /// (e.g. PutO when the requestor is still the owner AND sharers
    /// remain).
    pub fn dir_react_guards(
        &mut self,
        state: StableId,
        msg: MsgId,
        guards: Vec<Guard>,
        actions: Vec<Action>,
        next: Option<StableId>,
    ) -> &mut Self {
        self.directory.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards,
            effect: Effect::Local { actions, next },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a multi-step directory transaction (e.g. M + GetS: forward to
    /// the owner, await the owner's data, then go to S).
    pub fn dir_issue(
        &mut self,
        state: StableId,
        msg: MsgId,
        request: Vec<Action>,
        chain: WaitChain,
    ) -> &mut Self {
        self.directory.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards: vec![],
            effect: Effect::Issue { request, chain },
            note: EntryNote::Demand,
        });
        self
    }

    /// Adds a guarded multi-step directory transaction.
    pub fn dir_issue_guarded(
        &mut self,
        state: StableId,
        msg: MsgId,
        guard: Guard,
        request: Vec<Action>,
        chain: WaitChain,
    ) -> &mut Self {
        self.directory.entries.push(SspEntry {
            state,
            trigger: Trigger::Msg(msg),
            guards: vec![guard],
            effect: Effect::Issue { request, chain },
            note: EntryNote::Demand,
        });
        self
    }

    // ----- send helpers (pure constructors) -----------------------------

    /// Request to the directory: `send msg to Dir` with a reset of the
    /// acknowledgment counters (Listing 1, line 18).
    pub fn send_req(&self, msg: MsgId) -> Vec<Action> {
        vec![Action::ResetAcks, Action::Send(SendSpec::new(msg, Dst::Dir))]
    }

    /// Request to the directory carrying the block's data (PutM + Data).
    pub fn send_req_data(&self, msg: MsgId) -> Vec<Action> {
        vec![Action::ResetAcks, Action::Send(SendSpec::new(msg, Dst::Dir).data(DataSrc::OwnBlock))]
    }

    /// `send msg (Data) to requestor`.
    pub fn send_data_to_req(&self, msg: MsgId) -> Action {
        Action::Send(
            SendSpec::new(msg, Dst::Req).data(DataSrc::OwnBlock).req_field(ReqField::FromMsg),
        )
    }

    /// Directory: `send msg (Data, ack count = |sharers \ req|) to requestor`.
    pub fn send_data_acks_to_req(&self, msg: MsgId) -> Action {
        Action::Send(
            SendSpec::new(msg, Dst::Req)
                .data(DataSrc::OwnBlock)
                .acks(AckSrc::SharersExceptReqCount)
                .req_field(ReqField::FromMsg),
        )
    }

    /// Directory: `send msg (ack count = |sharers \ req|) to requestor`
    /// (ack-count-only responses, e.g. for Upgrade requests).
    pub fn send_acks_to_req(&self, msg: MsgId) -> Action {
        Action::Send(
            SendSpec::new(msg, Dst::Req)
                .acks(AckSrc::SharersExceptReqCount)
                .req_field(ReqField::FromMsg),
        )
    }

    /// `send msg to requestor` with no payload (Put-Ack, Inv-Ack).
    pub fn send_to_req(&self, msg: MsgId) -> Action {
        Action::Send(SendSpec::new(msg, Dst::Req).req_field(ReqField::FromMsg))
    }

    /// Directory: forward `msg` to the owner, propagating the requestor.
    pub fn fwd_to_owner(&self, msg: MsgId) -> Action {
        Action::Send(SendSpec::new(msg, Dst::Owner).req_field(ReqField::FromMsg))
    }

    /// Directory: send `msg` (Invalidation) to all sharers except the
    /// requestor, propagating the requestor so they can acknowledge it.
    pub fn inv_sharers(&self, msg: MsgId) -> Action {
        Action::Send(SendSpec::new(msg, Dst::SharersExceptReq).req_field(ReqField::FromMsg))
    }

    /// Cache: `send msg (Data) to Dir` (writebacks).
    pub fn send_data_to_dir(&self, msg: MsgId) -> Action {
        Action::Send(SendSpec::new(msg, Dst::Dir).data(DataSrc::OwnBlock))
    }

    // ----- chain helpers ------------------------------------------------

    /// A single await point for one data response: `await { when data:
    /// block = msg.data; perform access; State = done }`.
    pub fn await_data(&self, data: MsgId, done: StableId) -> WaitChain {
        WaitChain {
            nodes: vec![WaitNode {
                tag: "D".into(),
                arcs: vec![WaitArc {
                    msg: data,
                    guards: vec![],
                    actions: vec![Action::CopyDataFromMsg, Action::PerformAccess],
                    to: WaitTo::Done(done),
                }],
            }],
        }
    }

    /// A single await point for one data response with two possible final
    /// states depending on the message received (MESI: Data → S,
    /// DataExclusive → E).
    pub fn await_data2(
        &self,
        data_a: MsgId,
        done_a: StableId,
        data_b: MsgId,
        done_b: StableId,
    ) -> WaitChain {
        WaitChain {
            nodes: vec![WaitNode {
                tag: "D".into(),
                arcs: vec![
                    WaitArc {
                        msg: data_a,
                        guards: vec![],
                        actions: vec![Action::CopyDataFromMsg, Action::PerformAccess],
                        to: WaitTo::Done(done_a),
                    },
                    WaitArc {
                        msg: data_b,
                        guards: vec![],
                        actions: vec![Action::CopyDataFromMsg, Action::PerformAccess],
                        to: WaitTo::Done(done_b),
                    },
                ],
            }],
        }
    }

    /// A single await point for one acknowledgment (Put-Ack after PutS/PutM).
    pub fn await_ack(&self, ack: MsgId, done: StableId) -> WaitChain {
        WaitChain {
            nodes: vec![WaitNode {
                tag: "A".into(),
                arcs: vec![WaitArc {
                    msg: ack,
                    guards: vec![],
                    actions: vec![Action::PerformAccess],
                    to: WaitTo::Done(done),
                }],
            }],
        }
    }

    /// The store-miss await structure of Listing 1 (lines 20–45): wait for a
    /// data response that may carry an acknowledgment count, then for the
    /// outstanding invalidation acknowledgments. Handles acknowledgments
    /// arriving before the data (footnote 2 of the paper).
    pub fn await_data_acks(&self, data: MsgId, inv_ack: MsgId, done: StableId) -> WaitChain {
        WaitChain {
            nodes: vec![
                WaitNode {
                    tag: "AD".into(),
                    arcs: vec![
                        WaitArc {
                            msg: data,
                            guards: vec![Guard::AcksComplete],
                            actions: vec![
                                Action::CopyDataFromMsg,
                                Action::PerformAccess,
                                Action::ResetAcks,
                            ],
                            to: WaitTo::Done(done),
                        },
                        WaitArc {
                            msg: data,
                            guards: vec![Guard::AcksIncomplete],
                            actions: vec![Action::CopyDataFromMsg, Action::SetExpectedAcksFromMsg],
                            to: WaitTo::Wait(1),
                        },
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![],
                            actions: vec![Action::IncAcksReceived],
                            to: WaitTo::Wait(0),
                        },
                    ],
                },
                WaitNode {
                    tag: "A".into(),
                    arcs: vec![
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![Guard::AcksComplete],
                            actions: vec![
                                Action::IncAcksReceived,
                                Action::PerformAccess,
                                Action::ResetAcks,
                            ],
                            to: WaitTo::Done(done),
                        },
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![Guard::AcksIncomplete],
                            actions: vec![Action::IncAcksReceived],
                            to: WaitTo::Wait(1),
                        },
                    ],
                },
            ],
        }
    }

    /// Like [`SspBuilder::await_data_acks`] but the first response carries
    /// only an acknowledgment count, no data (Upgrade-style requests; the
    /// requestor already holds valid data).
    pub fn await_count_acks(&self, count: MsgId, inv_ack: MsgId, done: StableId) -> WaitChain {
        WaitChain {
            nodes: vec![
                WaitNode {
                    tag: "AC".into(),
                    arcs: vec![
                        WaitArc {
                            msg: count,
                            guards: vec![Guard::AcksComplete],
                            actions: vec![Action::PerformAccess, Action::ResetAcks],
                            to: WaitTo::Done(done),
                        },
                        WaitArc {
                            msg: count,
                            guards: vec![Guard::AcksIncomplete],
                            actions: vec![Action::SetExpectedAcksFromMsg],
                            to: WaitTo::Wait(1),
                        },
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![],
                            actions: vec![Action::IncAcksReceived],
                            to: WaitTo::Wait(0),
                        },
                    ],
                },
                WaitNode {
                    tag: "A".into(),
                    arcs: vec![
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![Guard::AcksComplete],
                            actions: vec![
                                Action::IncAcksReceived,
                                Action::PerformAccess,
                                Action::ResetAcks,
                            ],
                            to: WaitTo::Done(done),
                        },
                        WaitArc {
                            msg: inv_ack,
                            guards: vec![Guard::AcksIncomplete],
                            actions: vec![Action::IncAcksReceived],
                            to: WaitTo::Wait(1),
                        },
                    ],
                },
            ],
        }
    }

    /// Directory: a single await point for a writeback from the owner:
    /// `await { when data: mem = msg.data; State = done }`.
    pub fn await_owner_data(&self, data: MsgId, done: StableId) -> WaitChain {
        WaitChain {
            nodes: vec![WaitNode {
                tag: "D".into(),
                arcs: vec![WaitArc {
                    msg: data,
                    guards: vec![],
                    actions: vec![Action::CopyDataFromMsg],
                    to: WaitTo::Done(done),
                }],
            }],
        }
    }

    // ----- finish -------------------------------------------------------

    /// Builds and validates the protocol.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the assembled specification is invalid.
    pub fn build(self) -> Result<Ssp, SpecError> {
        let ssp = Ssp {
            name: self.name,
            messages: self.messages,
            cache: self.cache,
            directory: self.directory,
            network_ordered: self.network_ordered,
            consistency: self.consistency,
            si_epoch: self.si_epoch,
        };
        ssp.validate()?;
        Ok(ssp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = SspBuilder::new("x");
        let m0 = b.message("A", MsgClass::Request);
        let m1 = b.message("B", MsgClass::Response);
        assert_eq!(m0, MsgId(0));
        assert_eq!(m1, MsgId(1));
        let s0 = b.cache_state("I", Perm::None);
        let s1 = b.cache_state("V", Perm::Read);
        assert_eq!(s0, StableId(0));
        assert_eq!(s1, StableId(1));
    }

    #[test]
    fn await_data_acks_handles_early_acks() {
        let mut b = SspBuilder::new("x");
        let data = b.data_ack_message("Data", MsgClass::Response);
        let ack = b.message("Inv_Ack", MsgClass::Response);
        b.cache_state("I", Perm::None);
        let m = b.cache_state("M", Perm::ReadWrite);
        let chain = b.await_data_acks(data, ack, m);
        // The AD node must have an Inv_Ack self-loop (footnote 2).
        let ad = &chain.nodes[0];
        let self_loop = ad.arcs.iter().find(|a| a.msg == ack).expect("Inv_Ack arc in AD node");
        assert_eq!(self_loop.to, WaitTo::Wait(0));
        // And a direct completion for Data when acks are already satisfied.
        assert!(ad.arcs.iter().any(|a| a.msg == data && a.guards == vec![Guard::AcksComplete]));
    }

    #[test]
    fn cache_state_full_overrides_data_valid() {
        let mut b = SspBuilder::new("x");
        let s = b.cache_state_full("O", Perm::Read, true);
        assert!(b.cache.states[s.as_usize()].data_valid);
    }
}
