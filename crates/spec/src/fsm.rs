//! Generated, executable finite state machines.

use crate::action::Action;
use crate::guard::Guard;
use crate::ids::{MsgId, StableId};
use crate::msg::MsgDecl;
use crate::ssp::{Access, MachineKind, Perm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a state in a generated [`Fsm`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FsmStateId(pub u32);

impl FsmStateId {
    /// Creates an id from a vector index.
    pub fn from_usize(i: usize) -> Self {
        FsmStateId(u32::try_from(i).expect("more than u32::MAX states"))
    }

    /// Returns the id as a vector index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FsmStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An event a generated FSM reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Event {
    /// A core access.
    Access(Access),
    /// An incoming coherence message.
    Msg(MsgId),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Access(a) => write!(f, "{a}"),
            Event::Msg(m) => write!(f, "{m}"),
        }
    }
}

/// Whether an arc consumes its event or stalls it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcKind {
    /// The event is consumed and the actions performed.
    Normal,
    /// The event is *not* consumed: the message stays at the head of its
    /// queue (blocking that queue) or the access remains pending.
    Stall,
}

/// Provenance of an arc, recorded for reporting and table rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcNote {
    /// Copied directly from the SSP (stable-state behaviour).
    Ssp,
    /// Created in Step 2: an await point of a transaction (no concurrency).
    Step2,
    /// Case 1 of Step 3: the racing transaction was ordered *earlier* at the
    /// directory; respond immediately and restart the own transaction.
    Case1,
    /// Case 2 of Step 3: the racing transaction was ordered *later*; either
    /// stall or transition with (possibly deferred) responses.
    Case2,
    /// Sending of deferred responses when the own transaction completes.
    Completion,
    /// The synthesized directory rule acknowledging stale Put requests.
    StalePut,
    /// The directory reinterpreting a request that cannot occur in its
    /// current state (§V-D1, Upgrade → GetM).
    Reinterpret,
    /// The single-access-after-invalidation livelock fix (§VI-B).
    LivelockFix,
    /// Defensive handler for forwards made possible only by stale directory
    /// auxiliary state (design note N6).
    Defensive,
    /// A self-invalidation primitive ([`crate::EntryNote::SelfInvalidate`]):
    /// the cache may spontaneously drop this copy at a sync point.
    SelfInv,
    /// A self-downgrade primitive ([`crate::EntryNote::SelfDowngrade`]):
    /// the cache may spontaneously write back ownership.
    SelfDown,
}

impl fmt::Display for ArcNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArcNote::Ssp => "ssp",
            ArcNote::Step2 => "step2",
            ArcNote::Case1 => "case1",
            ArcNote::Case2 => "case2",
            ArcNote::Completion => "completion",
            ArcNote::StalePut => "stale-put",
            ArcNote::Reinterpret => "reinterpret",
            ArcNote::LivelockFix => "livelock-fix",
            ArcNote::Defensive => "defensive",
            ArcNote::SelfInv => "self-inv",
            ArcNote::SelfDown => "self-down",
        };
        f.write_str(s)
    }
}

/// A transition of a generated FSM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arc {
    /// Source state.
    pub from: FsmStateId,
    /// Triggering event.
    pub event: Event,
    /// Optional guard.
    pub guards: Vec<Guard>,
    /// Actions performed when the arc fires (empty for stalls).
    pub actions: Vec<Action>,
    /// Destination state (equal to `from` for stalls and self-loops).
    pub to: FsmStateId,
    /// Normal or stall.
    pub kind: ArcKind,
    /// Provenance.
    pub note: ArcNote,
}

/// One processed-forward record in a transient state's deferral chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainLink {
    /// The forwarded request that was processed.
    pub forward: MsgId,
    /// The stable state the forward logically moved the block to.
    pub logical_to: StableId,
    /// Whether a deferred response (to be sent at completion) is owed for
    /// this link; if so, the link owns one requestor slot of transient
    /// auxiliary state.
    pub has_deferred_response: bool,
}

/// Metadata of a transient state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientMeta {
    /// Initial stable state of the pending own transaction (after any
    /// Case 1 restart, this is the restarted state).
    pub own_from: StableId,
    /// Final stable state the pending own transaction completes into
    /// (before applying the chain).
    pub own_to: StableId,
    /// Await-point tag (`"AD"`, `"A"`, `"D"`, …).
    pub wait_tag: String,
    /// Forwards processed while the own transaction was in flight, oldest
    /// first. The chain's last `logical_to` is the state entered once the
    /// own transaction completes and all deferred responses are sent.
    pub chain: Vec<ChainLink>,
}

impl TransientMeta {
    /// The stable state the block finally lands in after the own transaction
    /// completes and every chain link is applied.
    pub fn final_state(&self) -> StableId {
        self.chain.last().map(|l| l.logical_to).unwrap_or(self.own_to)
    }

    /// Number of deferred-response requestor slots this state needs.
    pub fn deferred_slots(&self) -> usize {
        self.chain.iter().filter(|l| l.has_deferred_response).count()
    }
}

/// Classification of a state of a generated FSM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsmStateKind {
    /// One of the SSP's stable states.
    Stable(StableId),
    /// A generated transient state.
    Transient(TransientMeta),
}

/// How a state treats a given access, summarized for table rendering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessSummary {
    /// The access is performed locally ("hit").
    Hit,
    /// The access stalls until the state changes.
    Stall,
    /// The access issues a coherence transaction leading to `to`.
    Issue(FsmStateId),
    /// The SSP defines no behaviour (e.g. replacement of an invalid block).
    Undefined,
}

/// A state of a generated FSM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsmState {
    /// Human-readable name (`"M"`, `"IM_AD"`, `"IM_A_S"`, …).
    pub name: String,
    /// Stable or transient, with metadata.
    pub kind: FsmStateKind,
    /// Which State Sets the state belongs to (§V-B): the stable states the
    /// directory may currently believe this cache to be in.
    pub state_sets: Vec<StableId>,
    /// Access permission granted while in this state (Step 4).
    pub perm: Perm,
    /// For stable states: whether a block in this state holds a valid data
    /// copy (from the SSP). Transient states track data validity
    /// dynamically, so this is `false` for them.
    pub data_valid: bool,
    /// Names of states merged into this one during minimization (reported as
    /// `IM_A_S=SM_A_S`, matching Table VI of the paper).
    pub merged_names: Vec<String>,
}

impl FsmState {
    /// Whether the state is one of the SSP's stable states.
    pub fn is_stable(&self) -> bool {
        matches!(self.kind, FsmStateKind::Stable(_))
    }

    /// The transient metadata, if any.
    pub fn transient(&self) -> Option<&TransientMeta> {
        match &self.kind {
            FsmStateKind::Transient(m) => Some(m),
            FsmStateKind::Stable(_) => None,
        }
    }

    /// Display name including merged aliases (`"IM_A_S=SM_A_S"`).
    pub fn full_name(&self) -> String {
        if self.merged_names.is_empty() {
            self.name.clone()
        } else {
            let mut s = self.name.clone();
            for m in &self.merged_names {
                s.push('=');
                s.push_str(m);
            }
            s
        }
    }
}

/// A complete generated controller: all states (stable and transient) and
/// all transitions, directly executable by `protogen-runtime`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fsm {
    /// Protocol name this FSM was generated from.
    pub protocol: String,
    /// Which controller this is.
    pub machine: MachineKind,
    /// Message table (copied from the preprocessed SSP so the FSM is
    /// self-contained).
    pub messages: Vec<MsgDecl>,
    /// States; index 0 is the initial state.
    pub states: Vec<FsmState>,
    /// Transitions, grouped by source state (sorted by `from`).
    pub arcs: Vec<Arc>,
}

impl Fsm {
    /// Returns the state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: FsmStateId) -> &FsmState {
        &self.states[id.as_usize()]
    }

    /// Looks up a state id by (primary) name.
    pub fn state_by_name(&self, name: &str) -> Option<FsmStateId> {
        self.states
            .iter()
            .position(|s| s.name == name || s.merged_names.iter().any(|m| m == name))
            .map(FsmStateId::from_usize)
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = FsmStateId> + '_ {
        (0..self.states.len()).map(FsmStateId::from_usize)
    }

    /// All arcs leaving `state`.
    pub fn arcs_from(&self, state: FsmStateId) -> impl Iterator<Item = &Arc> + '_ {
        self.arcs.iter().filter(move |a| a.from == state)
    }

    /// All arcs leaving `state` for `event`.
    pub fn arcs_for(&self, state: FsmStateId, event: Event) -> Vec<&Arc> {
        self.arcs.iter().filter(|a| a.from == state && a.event == event).collect()
    }

    /// The message declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn msg(&self, id: MsgId) -> &MsgDecl {
        &self.messages[id.as_usize()]
    }

    /// Looks up a message id by name.
    pub fn msg_by_name(&self, name: &str) -> Option<MsgId> {
        self.messages.iter().position(|m| m.name == name).map(MsgId::from_usize)
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions, counted the way the paper counts them for
    /// §VI-B ("46-60 transitions"): distinct non-stall (state, event, guard)
    /// entries.
    pub fn transition_count(&self) -> usize {
        self.arcs.iter().filter(|a| a.kind == ArcKind::Normal).count()
    }

    /// Number of stall entries.
    pub fn stall_count(&self) -> usize {
        self.arcs.iter().filter(|a| a.kind == ArcKind::Stall).count()
    }

    /// Summarizes how `state` treats `access` (for table rendering).
    pub fn access_summary(&self, state: FsmStateId, access: Access) -> AccessSummary {
        let arcs = self.arcs_for(state, Event::Access(access));
        if arcs.is_empty() {
            return AccessSummary::Undefined;
        }
        let a = arcs[0];
        if a.kind == ArcKind::Stall {
            AccessSummary::Stall
        } else if a.to == state && a.actions.iter().all(|x| matches!(x, Action::PerformAccess)) {
            AccessSummary::Hit
        } else {
            AccessSummary::Issue(a.to)
        }
    }

    /// Returns the ids of all transient states.
    pub fn transient_states(&self) -> Vec<FsmStateId> {
        self.state_ids().filter(|&s| !self.state(s.to_owned()).is_stable()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fsm() -> Fsm {
        Fsm {
            protocol: "toy".into(),
            machine: MachineKind::Cache,
            messages: vec![MsgDecl::new("Data", crate::MsgClass::Response).with_data()],
            states: vec![
                FsmState {
                    name: "I".into(),
                    kind: FsmStateKind::Stable(StableId(0)),
                    state_sets: vec![StableId(0)],
                    perm: Perm::None,
                    data_valid: false,
                    merged_names: vec![],
                },
                FsmState {
                    name: "IV_D".into(),
                    kind: FsmStateKind::Transient(TransientMeta {
                        own_from: StableId(0),
                        own_to: StableId(1),
                        wait_tag: "D".into(),
                        chain: vec![],
                    }),
                    state_sets: vec![StableId(0), StableId(1)],
                    perm: Perm::None,
                    data_valid: false,
                    merged_names: vec!["XY_D".into()],
                },
            ],
            arcs: vec![
                Arc {
                    from: FsmStateId(0),
                    event: Event::Access(Access::Load),
                    guards: vec![],
                    actions: vec![],
                    to: FsmStateId(1),
                    kind: ArcKind::Normal,
                    note: ArcNote::Step2,
                },
                Arc {
                    from: FsmStateId(1),
                    event: Event::Access(Access::Store),
                    guards: vec![],
                    actions: vec![],
                    to: FsmStateId(1),
                    kind: ArcKind::Stall,
                    note: ArcNote::Step2,
                },
            ],
        }
    }

    #[test]
    fn counts_exclude_stalls() {
        let f = tiny_fsm();
        assert_eq!(f.state_count(), 2);
        assert_eq!(f.transition_count(), 1);
        assert_eq!(f.stall_count(), 1);
    }

    #[test]
    fn access_summaries() {
        let f = tiny_fsm();
        assert_eq!(
            f.access_summary(FsmStateId(0), Access::Load),
            AccessSummary::Issue(FsmStateId(1))
        );
        assert_eq!(f.access_summary(FsmStateId(1), Access::Store), AccessSummary::Stall);
        assert_eq!(f.access_summary(FsmStateId(0), Access::Replacement), AccessSummary::Undefined);
    }

    #[test]
    fn name_lookup_includes_merged() {
        let f = tiny_fsm();
        assert_eq!(f.state_by_name("XY_D"), Some(FsmStateId(1)));
        assert_eq!(f.state(FsmStateId(1)).full_name(), "IV_D=XY_D");
    }

    #[test]
    fn transient_meta_final_state() {
        let m = TransientMeta {
            own_from: StableId(0),
            own_to: StableId(2),
            wait_tag: "AD".into(),
            chain: vec![ChainLink {
                forward: MsgId(0),
                logical_to: StableId(1),
                has_deferred_response: true,
            }],
        };
        assert_eq!(m.final_state(), StableId(1));
        assert_eq!(m.deferred_slots(), 1);
    }
}
