//! Index newtypes used throughout the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a stable state within one machine specification.
///
/// Stable state ids index into [`crate::MachineSsp::states`]. Each machine
/// (cache, directory) has its own id space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StableId(pub u16);

impl StableId {
    /// Creates a `StableId` from a vector index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in 16 bits.
    pub fn from_usize(i: usize) -> Self {
        StableId(u16::try_from(i).expect("more than 65535 stable states"))
    }

    /// Returns the id as a vector index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a message type within one protocol.
///
/// Message ids index into [`crate::Ssp::messages`]; the id space is shared by
/// both machines.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MsgId(pub u16);

impl MsgId {
    /// Creates a `MsgId` from a vector index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in 16 bits.
    pub fn from_usize(i: usize) -> Self {
        MsgId(u16::try_from(i).expect("more than 65535 message types"))
    }

    /// Returns the id as a vector index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(StableId::from_usize(3).as_usize(), 3);
        assert_eq!(MsgId::from_usize(7).as_usize(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(StableId(1).to_string(), "s1");
        assert_eq!(MsgId(2).to_string(), "m2");
    }
}
