//! Transition guards.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate restricting when a transition may fire.
///
/// Guards are evaluated against the incoming message and the machine's
/// auxiliary state (acknowledgment counters for caches; owner and sharer list
/// for directories). The vocabulary is deliberately small: it is exactly what
/// the paper's SSPs need, and every guard is executable by both the model
/// checker and the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Guard {
    /// The incoming message's acknowledgment count is zero.
    AckCountIsZero,
    /// The incoming message's acknowledgment count is non-zero.
    AckCountNonZero,
    /// Consuming this message makes the received acknowledgments equal the
    /// expected count (the "Last Inv-Ack" column of the primer tables). Also
    /// true when a message carrying the expected count finds that count
    /// already satisfied by early acknowledgments (footnote 2 of the paper).
    AcksComplete,
    /// Consuming this message still leaves acknowledgments outstanding.
    AcksIncomplete,
    /// The requestor recorded in the message is the directory's owner.
    ReqIsOwner,
    /// The requestor recorded in the message is not the directory's owner.
    ReqIsNotOwner,
    /// The requestor is a member of the directory's sharer list.
    ReqInSharers,
    /// The requestor is not a member of the directory's sharer list.
    ReqNotInSharers,
    /// The requestor is the *only* member of the sharer list.
    ReqIsLastSharer,
    /// The sharer list contains members other than the requestor.
    ReqIsNotLastSharer,
    /// The sharer list is empty.
    SharersEmpty,
    /// The sharer list is non-empty.
    SharersNonEmpty,
    /// The sharer list is empty once the requestor is excluded (so a request
    /// needs no invalidations).
    NoSharersExceptReq,
    /// The sharer list contains at least one cache other than the requestor.
    SomeSharersExceptReq,
}

impl Guard {
    /// Returns the logical negation of this guard, used when synthesizing
    /// "else" fallbacks (e.g. the stale-Put rule).
    pub fn negate(self) -> Guard {
        use Guard::*;
        match self {
            AckCountIsZero => AckCountNonZero,
            AckCountNonZero => AckCountIsZero,
            AcksComplete => AcksIncomplete,
            AcksIncomplete => AcksComplete,
            ReqIsOwner => ReqIsNotOwner,
            ReqIsNotOwner => ReqIsOwner,
            ReqInSharers => ReqNotInSharers,
            ReqNotInSharers => ReqInSharers,
            ReqIsLastSharer => ReqIsNotLastSharer,
            ReqIsNotLastSharer => ReqIsLastSharer,
            SharersEmpty => SharersNonEmpty,
            SharersNonEmpty => SharersEmpty,
            NoSharersExceptReq => SomeSharersExceptReq,
            SomeSharersExceptReq => NoSharersExceptReq,
        }
    }

    /// Whether the guard inspects directory auxiliary state (owner/sharers).
    pub fn is_directory_guard(self) -> bool {
        use Guard::*;
        matches!(
            self,
            ReqIsOwner
                | ReqIsNotOwner
                | ReqInSharers
                | ReqNotInSharers
                | ReqIsLastSharer
                | ReqIsNotLastSharer
                | SharersEmpty
                | SharersNonEmpty
                | NoSharersExceptReq
                | SomeSharersExceptReq
        )
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Guard::AckCountIsZero => "ack=0",
            Guard::AckCountNonZero => "ack>0",
            Guard::AcksComplete => "last-ack",
            Guard::AcksIncomplete => "acks-pending",
            Guard::ReqIsOwner => "req=owner",
            Guard::ReqIsNotOwner => "req!=owner",
            Guard::ReqInSharers => "req in sharers",
            Guard::ReqNotInSharers => "req not in sharers",
            Guard::ReqIsLastSharer => "req is last sharer",
            Guard::ReqIsNotLastSharer => "req not last sharer",
            Guard::SharersEmpty => "no sharers",
            Guard::SharersNonEmpty => "sharers present",
            Guard::NoSharersExceptReq => "no other sharers",
            Guard::SomeSharersExceptReq => "other sharers",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        use Guard::*;
        for g in [
            AckCountIsZero,
            AckCountNonZero,
            AcksComplete,
            AcksIncomplete,
            ReqIsOwner,
            ReqIsNotOwner,
            ReqInSharers,
            ReqNotInSharers,
            ReqIsLastSharer,
            ReqIsNotLastSharer,
            SharersEmpty,
            SharersNonEmpty,
            NoSharersExceptReq,
            SomeSharersExceptReq,
        ] {
            assert_eq!(g.negate().negate(), g, "{g}");
        }
    }

    #[test]
    fn directory_guards_classified() {
        assert!(Guard::ReqIsOwner.is_directory_guard());
        assert!(!Guard::AckCountIsZero.is_directory_guard());
    }
}
