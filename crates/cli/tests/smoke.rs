//! End-to-end smoke tests driving the `protogen` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn protogen(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_protogen")).args(args).output().expect("protogen binary runs")
}

fn msi_pgen_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../dsl/protocols/msi.pgen")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = protogen(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
    for cmd in ["table", "verify", "dot", "murphi", "simulate", "stats", "compile"] {
        assert!(err.contains(cmd), "usage line missing `{cmd}`: {err}");
    }
}

#[test]
fn unknown_protocol_is_reported() {
    let out = protogen(&["verify", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown protocol"));
}

#[test]
fn verify_msi_passes_at_two_caches() {
    let out = protogen(&["verify", "msi", "--caches", "2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASSED"), "{stdout}");
}

#[test]
fn verify_reports_identical_counts_for_any_thread_count() {
    let single = protogen(&["verify", "msi", "--caches", "2", "--threads", "1"]);
    let quad = protogen(&["verify", "msi", "--caches", "2", "--threads", "4"]);
    assert!(single.status.success() && quad.status.success());
    let s = String::from_utf8_lossy(&single.stdout);
    let q = String::from_utf8_lossy(&quad.stdout);
    assert!(s.contains("on 1 thread"), "{s}");
    assert!(q.contains("on 4 threads"), "{q}");
    // Everything up to the timing field must agree: "<name>: PASSED — N
    // states, M transitions".
    let prefix = |out: &str| out.split(" transitions").next().unwrap_or_default().to_string();
    assert_eq!(prefix(&s), prefix(&q), "single:\n{s}\nquad:\n{q}");
}

#[test]
fn table_renders_generated_controller() {
    let out = protogen(&["table", "msi"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("IM_AD"), "{stdout}");
    // And the directory variant.
    let out = protogen(&["table", "msi", "--machine", "dir", "--markdown"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("| "));
}

#[test]
fn compile_bundled_msi_spec_verifies() {
    let path = msi_pgen_path();
    let out = protogen(&["compile", path.to_str().unwrap(), "--caches", "2"]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MSI"), "{stdout}");
    assert!(stdout.contains("PASSED"), "{stdout}");
}

#[test]
fn compile_rejects_missing_file() {
    let out = protogen(&["compile", "/nonexistent/file.pgen"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn stats_covers_every_protocol_in_both_configs() {
    let out = protogen(&["stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["MSI", "MESI", "MOSI", "MSI-Upgrade", "MSI-unordered", "TSO-CC"] {
        assert!(stdout.contains(name), "{name} missing from stats:\n{stdout}");
    }
    assert!(stdout.contains("stalling") && stdout.contains("non-stalling"));
    assert!(!stdout.contains("error"), "{stdout}");
}
