//! End-to-end smoke tests driving the `protogen` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn protogen(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_protogen")).args(args).output().expect("protogen binary runs")
}

fn msi_pgen_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../dsl/protocols/msi.pgen")
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = protogen(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
    for cmd in [
        "table", "verify", "dot", "murphi", "sim", "serve", "sweep", "fuzz", "simulate", "stats",
        "compile",
    ] {
        assert!(err.contains(cmd), "usage line missing `{cmd}`: {err}");
    }
}

#[test]
fn unknown_protocol_is_reported() {
    let out = protogen(&["verify", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown protocol"));
}

#[test]
fn verify_msi_passes_at_two_caches() {
    let out = protogen(&["verify", "msi", "--caches", "2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASSED"), "{stdout}");
}

#[test]
fn verify_reports_identical_counts_for_any_thread_count() {
    let single = protogen(&["verify", "msi", "--caches", "2", "--threads", "1"]);
    let quad = protogen(&["verify", "msi", "--caches", "2", "--threads", "4"]);
    assert!(single.status.success() && quad.status.success());
    let s = String::from_utf8_lossy(&single.stdout);
    let q = String::from_utf8_lossy(&quad.stdout);
    assert!(s.contains("on 1 thread"), "{s}");
    assert!(q.contains("on 4 threads"), "{q}");
    // Everything up to the timing field must agree: "<name>: PASSED — N
    // states, M transitions".
    let prefix = |out: &str| out.split(" transitions").next().unwrap_or_default().to_string();
    assert_eq!(prefix(&s), prefix(&q), "single:\n{s}\nquad:\n{q}");
}

#[test]
fn verify_rejects_zero_max_states() {
    // A zero budget used to stop before the initial state and print a
    // "PASSED"-shaped line for an exploration that proved nothing.
    let out = protogen(&["verify", "msi", "--caches", "2", "--max-states", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --max-states"), "{err}");
    assert!(err.contains("verifies nothing"), "{err}");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("PASSED"));

    let out = protogen(&["verify", "msi", "--caches", "2", "--max-states", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --max-states"));
}

#[cfg(unix)]
#[test]
fn verify_under_memory_budget_spills_and_completes() {
    // A deliberately tiny budget forces the spill tier; the run must
    // still complete the whole space with identical counts and say so
    // ("spilled + completed" is not an early stop).
    let budgeted = protogen(&[
        "verify",
        "msi",
        "--stalling",
        "--caches",
        "3",
        "--store",
        "delta",
        "--mem-budget",
        "1K",
        "--spill-chunk",
        "4K",
    ]);
    let unbudgeted = protogen(&["verify", "msi", "--stalling", "--caches", "3"]);
    assert!(budgeted.status.success(), "{}", String::from_utf8_lossy(&budgeted.stderr));
    assert!(unbudgeted.status.success());
    let b = String::from_utf8_lossy(&budgeted.stdout);
    let u = String::from_utf8_lossy(&unbudgeted.stdout);
    assert!(b.contains("PASSED"), "{b}");
    assert!(b.contains("spilled"), "budgeted run never spilled:\n{b}");
    assert!(b.contains("exploration completed"), "{b}");
    assert!(!b.contains("stopped early"), "{b}");
    let prefix = |out: &str| out.split(" transitions").next().unwrap_or_default().to_string();
    assert_eq!(prefix(&b), prefix(&u), "budgeted:\n{b}\nunbudgeted:\n{u}");

    let out = protogen(&["verify", "msi", "--mem-budget", "lots"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --mem-budget"));
}

#[test]
fn verify_fp_only_reports_collision_bound_and_matches_counts() {
    let fp = protogen(&["verify", "msi", "--caches", "2", "--store", "fp-only"]);
    let full = protogen(&["verify", "msi", "--caches", "2"]);
    assert!(fp.status.success(), "{}", String::from_utf8_lossy(&fp.stderr));
    let f = String::from_utf8_lossy(&fp.stdout);
    let u = String::from_utf8_lossy(&full.stdout);
    assert!(f.contains("PASSED"), "{f}");
    assert!(f.contains("fingerprint-only store"), "{f}");
    assert!(f.contains("collision"), "{f}");
    let prefix = |out: &str| out.split(" transitions").next().unwrap_or_default().to_string();
    assert_eq!(prefix(&f), prefix(&u));

    let out = protogen(&["verify", "msi", "--store", "compressed"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown store mode"));
}

#[test]
fn table_renders_generated_controller() {
    let out = protogen(&["table", "msi"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("IM_AD"), "{stdout}");
    // And the directory variant.
    let out = protogen(&["table", "msi", "--machine", "dir", "--markdown"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("| "));
}

#[test]
fn compile_bundled_msi_spec_verifies() {
    let path = msi_pgen_path();
    let out = protogen(&["compile", path.to_str().unwrap(), "--caches", "2"]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MSI"), "{stdout}");
    assert!(stdout.contains("PASSED"), "{stdout}");
}

#[test]
fn compile_rejects_missing_file() {
    let out = protogen(&["compile", "/nonexistent/file.pgen"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn sim_json_is_deterministic_for_a_fixed_seed() {
    let args = ["sim", "msi", "--caches", "2", "--seed", "7", "--accesses", "40", "--json"];
    let a = protogen(&args);
    let b = protogen(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "same seed must yield byte-identical JSON");
    let text = String::from_utf8_lossy(&a.stdout);
    for key in ["\"protocol\": \"MSI\"", "\"p95_latency\"", "\"dir_occupancy\""] {
        assert!(text.contains(key), "missing {key}: {text}");
    }
}

#[test]
fn sim_accepts_workload_network_and_trace_flags() {
    let out = protogen(&["sim", "mesi", "--workload", "producer-consumer", "--caches", "3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("producer-consumer"));

    // An ordered-network protocol on an unordered interconnect is clamped
    // to FIFO delivery with a note, not an error.
    let out = protogen(&["sim", "msi", "--network", "unordered", "--latency", "uniform:4:16"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("ordered networks"));

    let out = protogen(&["sim", "msi", "--workload", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    let dir = std::env::temp_dir().join("protogen-smoke-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.trc");
    std::fs::write(&trace, "# two cores ping-pong\n0 st 0\n1 ld 0\n0 st 0\n1 ld 0\n").unwrap();
    let out = protogen(&["sim", "msi", "--caches", "2", "--trace", trace.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 accesses"));
}

#[test]
fn serve_runs_inside_the_envelope_and_reports_json() {
    let out = protogen(&[
        "serve",
        "msi",
        "--caches",
        "2",
        "--dir-shards",
        "2",
        "--ops",
        "20000",
        "--seed",
        "7",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The exact line the CI smoke job greps for.
    assert!(text.contains("\"escapes\": 0"), "{text}");
    for key in ["\"protocol\": \"MSI\"", "\"ops\": 20000", "\"ops_per_sec\"", "\"coverage_pairs\""]
    {
        assert!(text.contains(key), "missing {key}: {text}");
    }
    // The envelope check runs before the service and reports on stderr —
    // stdout stays pure JSON.
    assert!(String::from_utf8_lossy(&out.stderr).contains("envelope"));
    assert!(text.trim_start().starts_with('{'), "{text}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = protogen(&["serve", "msi", "--ops", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --ops"));

    let out = protogen(&["serve", "msi", "--workload", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    // Validation failures from the service config itself are usage errors
    // too (mailbox below the floor).
    let out = protogen(&["serve", "msi", "--mailbox-cap", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mailbox_cap"));

    let out = protogen(&["serve", "msi", "--faults", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --faults"));

    let out = protogen(&["serve", "msi", "--crash-at-op", "10"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --faults"));
}

#[test]
fn serve_with_faults_stays_inside_the_envelope() {
    let out = protogen(&[
        "serve",
        "msi",
        "--caches",
        "2",
        "--dir-shards",
        "2",
        "--ops",
        "10000",
        "--seed",
        "7",
        "--faults",
        "all",
        "--fault-seed",
        "11",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The exact lines the CI serve-faults job greps for.
    assert!(text.contains("\"escapes\": 0"), "{text}");
    assert!(text.contains("\"stop_reason\": \"quiesced\""), "{text}");
    assert!(text.contains("\"crashes_completed\": 1"), "{text}");
    assert!(text.contains("\"lines_lost\": 0"), "{text}");
}

#[test]
fn serve_unfinished_fault_plan_exits_4() {
    // A crash point past the schedule end never fires: the workload
    // completes but the experiment is inconclusive.
    let out = protogen(&[
        "serve",
        "msi",
        "--caches",
        "2",
        "--ops",
        "2000",
        "--faults",
        "crash",
        "--crash-at-op",
        "999999999",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"stop_reason\": \"fault\""), "{text}");
    assert!(text.contains("\"crashes_completed\": 0"), "{text}");
}

#[test]
fn verify_checkpoints_and_resumes_to_identical_counts() {
    let dir = std::env::temp_dir().join(format!("protogen-smoke-ck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ck = dir.to_str().unwrap();

    let full = protogen(&["verify", "msi", "--caches", "2", "--threads", "2"]);
    assert!(full.status.success());
    let counts = |out: &Output| {
        let s = String::from_utf8_lossy(&out.stdout).to_string();
        s.split(" — ").nth(1).unwrap_or_default().split(", ").take(2).collect::<Vec<_>>().join(", ")
    };

    // Interrupt via the state budget (to `verify` this is indistinguishable
    // from a kill: only the committed checkpoints survive), then resume.
    let partial = protogen(&[
        "verify",
        "msi",
        "--caches",
        "2",
        "--threads",
        "2",
        "--checkpoint-dir",
        ck,
        "--checkpoint-every",
        "1",
        "--max-states",
        "300",
    ]);
    assert!(String::from_utf8_lossy(&partial.stdout).contains("stopped early"));

    let resumed = protogen(&[
        "verify",
        "msi",
        "--caches",
        "2",
        "--threads",
        "2",
        "--checkpoint-dir",
        ck,
        "--resume",
    ]);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(counts(&resumed), counts(&full), "resume must match the uninterrupted run");
    assert!(counts(&full).contains("states"), "count extraction worked: {}", counts(&full));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_checkpoint_flag_misuse_is_rejected() {
    let out = protogen(&["verify", "msi", "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --checkpoint-dir"));

    let out = protogen(&["verify", "--compose", "l1=msi:2,llc=msi", "--checkpoint-dir", "/tmp/x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not supported with --compose"));

    // Resuming from a directory with no committed checkpoint is a hard
    // error, never a silent fresh start.
    let empty = std::env::temp_dir().join(format!("protogen-smoke-nock-{}", std::process::id()));
    std::fs::create_dir_all(&empty).unwrap();
    let out = protogen(&["verify", "msi", "--checkpoint-dir", empty.to_str().unwrap(), "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot resume"));
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn sweep_list_prints_grid_without_running() {
    let out = protogen(&["sweep", "--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("64 cells"), "{stdout}");
    assert!(stdout.contains("msi.stall.uniform-50.c2.ordered"), "{stdout}");
    assert!(stdout.contains("mesi.non-stall.false-sharing.c4.unordered"), "{stdout}");
}

#[test]
fn sweep_out_writes_one_json_per_cell() {
    let dir = std::env::temp_dir().join("protogen-smoke-sweep");
    let _ = std::fs::remove_dir_all(&dir);
    let out = protogen(&[
        "sweep",
        "--protocols",
        "msi",
        "--caches",
        "2",
        "--accesses",
        "20",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // 1 protocol × 2 configs × 4 workloads × 1 cache count × 2 networks.
    let mut cells: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    cells.sort();
    assert_eq!(cells.len(), 17, "16 cells + sweep.json: {cells:?}");
    assert!(cells.contains(&"sweep.json".to_string()));
    assert!(cells.contains(&"msi.non-stall.uniform-50.c2.ordered.json".to_string()));
    let cell_text =
        std::fs::read_to_string(dir.join("msi.non-stall.uniform-50.c2.ordered.json")).unwrap();
    assert!(cell_text.contains("\"stats\""), "{cell_text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_covers_every_protocol_in_both_configs() {
    let out = protogen(&["stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["MSI", "MESI", "MOSI", "MSI-Upgrade", "MSI-unordered", "TSO-CC"] {
        assert!(stdout.contains(name), "{name} missing from stats:\n{stdout}");
    }
    assert!(stdout.contains("stalling") && stdout.contains("non-stalling"));
    assert!(!stdout.contains("error"), "{stdout}");
}

#[test]
fn fuzz_smoke_catches_controls_and_is_thread_invariant() {
    let run = |threads: &str| {
        protogen(&[
            "fuzz",
            "--seed",
            "5",
            "--mutants",
            "8",
            "--threads",
            threads,
            "--protocols",
            "msi",
            "--json",
        ])
    };
    let (one, four) = (run("1"), run("4"));
    assert!(one.status.success(), "{}", String::from_utf8_lossy(&one.stderr));
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&four.stdout),
        "fuzz report differs across thread counts"
    );
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("\"controls_caught\": true"), "{text}");
    assert!(text.contains("\"unexpected\": []"), "{text}");
    for control in [
        "tso-cc-relaxation",
        "msi-s-gains-write-permission",
        "msi-dir-drops-s-getm",
        "msi-store-completes-into-wrong-state",
        "msi-inv-ack-never-sent",
    ] {
        assert!(text.contains(control), "control `{control}` missing:\n{text}");
    }
}

#[test]
fn fuzz_replay_runs_a_reproducer_script() {
    let dir = std::env::temp_dir().join(format!("protogen-fuzz-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("flip-s.mut");
    // The seeded negative control: S gains write permission → SWMR.
    std::fs::write(&script, "protocol msi\nconfig non-stalling\nmutate flip-permission 1\n")
        .unwrap();
    let out = protogen(&["fuzz", "--replay", script.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rejected-by-checker"), "{stdout}");
    assert!(stdout.contains("SWMR"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fuzz_rejects_bad_flags_and_unknown_protocols() {
    let out = protogen(&["fuzz", "--mutants", "three"]);
    assert_eq!(out.status.code(), Some(2));
    let out = protogen(&["fuzz", "--protocols", "nonesuch", "--mutants", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown protocol"));
}
